//! Recursive-descent parser for Virgil III core.
//!
//! The parser is mostly LL(1) with two non-LL features:
//!
//! * **Speculative type-argument parsing.** In expression context, `a<b` is
//!   ambiguous between a comparison and an explicit type application
//!   `a<b>(...)`. Like C#, on `<` after a name or member the parser attempts a
//!   type-argument list and commits only when the closing `>` is followed by a
//!   token that cannot continue a comparison (`( ) ] } . , ; : ? == !=` or
//!   end of input); otherwise it backtracks.
//! * **`>>` splitting.** Nested generics such as `List<List<int>>` end in a
//!   `>>` token, which the parser splits into two `>`s on demand. Splits are
//!   journaled so backtracking undoes them.

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::lexer::{
    self, decode_byte_lit, decode_int_lit, decode_neg_int_lit, decode_string_lit,
};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Maximum nesting depth of expressions, types, and statements. This is a
/// semantic bound, not a stack-safety bound: the parser hops to a fresh
/// segment thread every [`STACK_SEGMENT_DEPTH`] levels (see
/// [`Parser::in_fresh_segment`]), so no host thread overflows no matter how
/// deep the input nests. The limit exists so every later recursive consumer
/// of the AST (semantic analysis, printing, dropping the `Box` chains) sees
/// bounded nesting, and it bounds the number of live segment threads to
/// `MAX_NESTING_DEPTH / STACK_SEGMENT_DEPTH`. One source-level nesting level
/// may charge the counter up to twice (assignment and ternary layers both
/// guard), so the practical paren depth is at least half this.
pub const MAX_NESTING_DEPTH: u32 = 512;

/// Depth interval at which the parser moves the remaining recursion onto a
/// fresh thread with a known-large stack. Sized so one segment's worth of
/// parser frames (~25 KiB per nesting level in a debug build) fits easily in
/// even a small (1 MiB) host thread stack.
const STACK_SEGMENT_DEPTH: u32 = 24;

/// Stack size for each parser segment thread. Reserved lazily by the OS, so
/// untouched pages cost nothing.
const STACK_SEGMENT_BYTES: usize = 16 << 20;

fn new_parser<'a, 'd>(source: &'a str, diags: &'d mut Diagnostics) -> Parser<'a, 'd> {
    let tokens = lexer::lex(source, diags);
    Parser {
        src: source,
        tokens,
        pos: 0,
        diags,
        next_id: 0,
        splits: Vec::new(),
        depth: 0,
    }
}

/// Parses a whole program. Errors are reported into `diags`; the returned
/// program contains the declarations that parsed successfully, with
/// [`ExprKind::Error`] placeholders where expressions failed to parse.
pub fn parse_program(source: &str, diags: &mut Diagnostics) -> Program {
    new_parser(source, diags).program()
}

/// Parses a single expression (used by tests and tools).
pub fn parse_expr(source: &str, diags: &mut Diagnostics) -> Option<Expr> {
    let mut p = new_parser(source, diags);
    let e = p.expr()?;
    if p.peek() != TokenKind::Eof {
        p.error_here("expected end of input after expression");
        return None;
    }
    Some(e)
}

/// Parses a single type expression (used by tests and tools).
pub fn parse_type(source: &str, diags: &mut Diagnostics) -> Option<TypeExpr> {
    let mut p = new_parser(source, diags);
    let t = p.type_expr()?;
    if p.peek() != TokenKind::Eof {
        p.error_here("expected end of input after type");
        return None;
    }
    Some(t)
}

struct Parser<'a, 'd> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
    diags: &'d mut Diagnostics,
    next_id: NodeId,
    /// Journal of `>>`→`>` splits: (token index, original token).
    splits: Vec<(usize, Token)>,
    /// Current nesting depth, bounded by [`MAX_NESTING_DEPTH`].
    depth: u32,
}

#[derive(Clone, Copy)]
struct Snapshot {
    pos: usize,
    splits_len: usize,
    next_id: NodeId,
    diags_len: usize,
}

impl<'a> Parser<'a, '_> {
    // ---- cursor ------------------------------------------------------------

    fn cur(&self) -> Token {
        self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek(&self) -> TokenKind {
        self.cur().kind
    }

    fn peek_ahead(&self, n: usize) -> TokenKind {
        self.tokens
            .get(self.pos + n)
            .map(|t| t.kind)
            .unwrap_or(TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.cur();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, k: TokenKind) -> bool {
        self.peek() == k
    }

    fn eat(&mut self, k: TokenKind) -> bool {
        if self.at(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: TokenKind) -> Option<Token> {
        if self.at(k) {
            Some(self.bump())
        } else {
            let cur = self.cur();
            self.diags.error(
                cur.span,
                format!("expected {k}, found {}", cur.kind),
            );
            None
        }
    }

    /// Consumes a `>`; splits a `>>` into two `>`s if necessary.
    fn expect_gt(&mut self) -> Option<()> {
        match self.peek() {
            TokenKind::Gt => {
                self.bump();
                Some(())
            }
            TokenKind::Ge => {
                // `>=` can end a type-arg list followed by `=`: split.
                let t = self.cur();
                self.splits.push((self.pos, t));
                self.tokens[self.pos] = Token {
                    kind: TokenKind::Assign,
                    span: Span::new(t.span.start + 1, t.span.end),
                };
                Some(())
            }
            TokenKind::Shr => {
                let t = self.cur();
                self.splits.push((self.pos, t));
                self.tokens[self.pos] = Token {
                    kind: TokenKind::Gt,
                    span: Span::new(t.span.start + 1, t.span.end),
                };
                Some(())
            }
            _ => {
                let cur = self.cur();
                self.diags
                    .error(cur.span, format!("expected '>', found {}", cur.kind));
                None
            }
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            pos: self.pos,
            splits_len: self.splits.len(),
            next_id: self.next_id,
            diags_len: self.diags.len(),
        }
    }

    fn restore(&mut self, s: Snapshot) {
        // Unwind the `>>` split journal defensively: a pop can only come up
        // empty if a snapshot from a stale parse leaked in, and a malformed
        // `>>` in type position must degrade to a diagnostic, not a panic.
        while self.splits.len() > s.splits_len {
            match self.splits.pop() {
                Some((i, t)) if i < self.tokens.len() => self.tokens[i] = t,
                Some(_) | None => {
                    self.error_here("malformed '>>' in type position");
                    break;
                }
            }
        }
        self.pos = s.pos;
        self.next_id = s.next_id;
        // Diagnostics are append-only; speculative failures must not leak
        // errors.
        self.diags.truncate(s.diags_len);
    }

    /// Bumps the nesting depth; reports "too deeply nested" and returns
    /// `None` at the limit, which unwinds (via `?`) to the nearest recovery
    /// point.
    fn enter(&mut self) -> Option<()> {
        if self.depth >= MAX_NESTING_DEPTH {
            let span = self.cur().span;
            self.diags.error(span, "expression too deeply nested");
            self.diags.note_last(
                None,
                format!("the parser limits nesting to {MAX_NESTING_DEPTH} levels"),
            );
            return None;
        }
        self.depth += 1;
        Some(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Runs `f` under the nesting-depth guard. Every [`STACK_SEGMENT_DEPTH`]
    /// levels the remaining recursion is moved onto a fresh thread with a
    /// 16 MiB stack, so deeply nested input can never overflow the host
    /// thread's stack — the depth limit is enforced for semantic reasons
    /// only (see [`MAX_NESTING_DEPTH`]).
    fn guarded<T: Send>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Option<T> + Send,
    ) -> Option<T> {
        self.enter()?;
        let r = if self.depth.is_multiple_of(STACK_SEGMENT_DEPTH) {
            self.in_fresh_segment(f)
        } else {
            f(self)
        };
        self.leave();
        r
    }

    /// Continues parsing on a new thread with a known-large stack. Scoped, so
    /// the borrow of `self` flows through; panics propagate unchanged. If the
    /// OS refuses a thread, the input is treated as too deeply nested rather
    /// than risking an overflow inline.
    fn in_fresh_segment<T: Send>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Option<T> + Send,
    ) -> Option<T> {
        let this = &mut *self;
        let outcome = std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("vgl-parse-segment".into())
                .stack_size(STACK_SEGMENT_BYTES)
                .spawn_scoped(scope, move || f(this))
                .map(|handle| match handle.join() {
                    Ok(v) => v,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .ok()
        });
        outcome.unwrap_or_else(|| {
            let span = self.cur().span;
            self.diags.error(span, "expression too deeply nested");
            self.diags
                .note_last(None, "could not reserve stack space for the nested expression");
            None
        })
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn error_here(&mut self, msg: impl Into<String>) {
        let span = self.cur().span;
        self.diags.error(span, msg);
    }

    fn ident(&mut self) -> Option<Ident> {
        let t = self.expect(TokenKind::Ident)?;
        Some(Ident::new(t.text(self.src), t.span))
    }

    // ---- program & declarations -------------------------------------------

    fn program(&mut self) -> Program {
        let mut decls = Vec::new();
        while !self.at(TokenKind::Eof) {
            let before = self.pos;
            match self.decl() {
                Some(d) => decls.push(d),
                None => {
                    // Recover: skip to a likely declaration boundary.
                    if self.pos == before {
                        self.bump();
                    }
                    while !matches!(
                        self.peek(),
                        TokenKind::KwClass
                            | TokenKind::KwDef
                            | TokenKind::KwVar
                            | TokenKind::KwPrivate
                            | TokenKind::Eof
                    ) {
                        self.bump();
                    }
                }
            }
        }
        Program { decls, node_count: self.next_id }
    }

    fn decl(&mut self) -> Option<Decl> {
        match self.peek() {
            TokenKind::KwClass => self.class_decl().map(Decl::Class),
            TokenKind::KwDef | TokenKind::KwVar | TokenKind::KwPrivate => {
                self.def_or_var_decl()
            }
            _ => {
                self.error_here("expected a declaration ('class', 'def', or 'var')");
                None
            }
        }
    }

    /// Parses either a method or a variable/field declaration starting at
    /// `private? (def|var)`.
    fn def_or_var_decl(&mut self) -> Option<Decl> {
        let is_private = self.eat(TokenKind::KwPrivate);
        let mutable = match self.peek() {
            TokenKind::KwVar => {
                self.bump();
                true
            }
            TokenKind::KwDef => {
                self.bump();
                false
            }
            _ => {
                self.error_here("expected 'def' or 'var'");
                return None;
            }
        };
        let name = self.ident()?;
        // `def name <tparams>? (` is a method; anything else is a variable.
        if !mutable && (self.at(TokenKind::LParen) || self.at(TokenKind::Lt)) {
            let m = self.method_tail(is_private, name)?;
            return Some(Decl::Method(m));
        }
        if is_private {
            self.error_here("'private' is only valid on methods");
        }
        let f = self.field_tail(mutable, name)?;
        Some(Decl::Var(f))
    }

    fn class_decl(&mut self) -> Option<ClassDecl> {
        let start = self.expect(TokenKind::KwClass)?.span;
        let name = self.ident()?;
        let type_params = if self.at(TokenKind::Lt) {
            self.type_param_list()?
        } else {
            Vec::new()
        };
        let mut header_params = Vec::new();
        if self.eat(TokenKind::LParen) {
            if !self.at(TokenKind::RParen) {
                loop {
                    header_params.push(self.param()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let parent = if self.eat(TokenKind::KwExtends) {
            let pname = self.ident()?;
            let type_args = if self.at(TokenKind::Lt) {
                self.type_arg_list()?
            } else {
                Vec::new()
            };
            let span = pname.span;
            Some(ParentRef { name: pname, type_args, span })
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut members = Vec::new();
        while !self.at(TokenKind::RBrace) && !self.at(TokenKind::Eof) {
            let before = self.pos;
            match self.member() {
                Some(m) => members.push(m),
                None => {
                    if self.pos == before {
                        self.bump();
                    }
                    while !matches!(
                        self.peek(),
                        TokenKind::KwDef
                            | TokenKind::KwVar
                            | TokenKind::KwNew
                            | TokenKind::KwPrivate
                            | TokenKind::RBrace
                            | TokenKind::Eof
                    ) {
                        self.bump();
                    }
                }
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Some(ClassDecl {
            name,
            type_params,
            header_params,
            parent,
            members,
            span: start.to(end),
        })
    }

    fn member(&mut self) -> Option<Member> {
        match self.peek() {
            TokenKind::KwNew => self.ctor_decl().map(Member::Ctor),
            TokenKind::KwPrivate | TokenKind::KwDef | TokenKind::KwVar => {
                let is_private = self.eat(TokenKind::KwPrivate);
                let mutable = match self.peek() {
                    TokenKind::KwVar => {
                        self.bump();
                        true
                    }
                    TokenKind::KwDef => {
                        self.bump();
                        false
                    }
                    _ => {
                        self.error_here("expected 'def' or 'var' after 'private'");
                        return None;
                    }
                };
                let name = self.ident()?;
                if !mutable && (self.at(TokenKind::LParen) || self.at(TokenKind::Lt)) {
                    return self.method_tail(is_private, name).map(Member::Method);
                }
                if is_private {
                    self.error_here("'private' is only valid on methods");
                }
                self.field_tail(mutable, name).map(Member::Field)
            }
            _ => {
                self.error_here("expected a class member ('def', 'var', or 'new')");
                None
            }
        }
    }

    fn field_tail(&mut self, mutable: bool, name: Ident) -> Option<FieldDecl> {
        let ty = if self.eat(TokenKind::Colon) {
            Some(self.type_expr()?)
        } else {
            None
        };
        let init = if self.eat(TokenKind::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        let end = self.expect(TokenKind::Semi)?.span;
        let span = name.span.to(end);
        Some(FieldDecl { mutable, name, ty, init, id: self.fresh_id(), span })
    }

    fn method_tail(&mut self, is_private: bool, name: Ident) -> Option<MethodDecl> {
        let type_params = if self.at(TokenKind::Lt) {
            self.type_param_list()?
        } else {
            Vec::new()
        };
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if self.eat(TokenKind::Arrow) {
            Some(self.type_expr()?)
        } else {
            None
        };
        let (body, end) = if self.at(TokenKind::LBrace) {
            let b = self.block()?;
            let sp = b.span;
            (Some(b), sp)
        } else {
            let sp = self.expect(TokenKind::Semi)?.span;
            (None, sp)
        };
        let span = name.span.to(end);
        Some(MethodDecl { is_private, name, type_params, params, ret, body, span })
    }

    fn ctor_decl(&mut self) -> Option<CtorDecl> {
        let start = self.expect(TokenKind::KwNew)?.span;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                let name = self.ident()?;
                let ty = if self.eat(TokenKind::Colon) {
                    Some(self.type_expr()?)
                } else {
                    None
                };
                params.push(CtorParam { name, ty, id: self.fresh_id() });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let super_args = if self.eat(TokenKind::KwSuper) {
            self.expect(TokenKind::LParen)?;
            let mut args = Vec::new();
            if !self.at(TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
            Some(args)
        } else {
            None
        };
        let body = self.block()?;
        let span = start.to(body.span);
        Some(CtorDecl { params, super_args, body, span })
    }

    fn param(&mut self) -> Option<Param> {
        let name = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.type_expr()?;
        Some(Param { name, ty, id: self.fresh_id() })
    }

    fn type_param_list(&mut self) -> Option<Vec<Ident>> {
        self.expect(TokenKind::Lt)?;
        let mut out = Vec::new();
        loop {
            out.push(self.ident()?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect_gt()?;
        Some(out)
    }

    fn type_arg_list(&mut self) -> Option<Vec<TypeExpr>> {
        self.expect(TokenKind::Lt)?;
        let mut out = Vec::new();
        loop {
            out.push(self.type_expr()?);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        self.expect_gt()?;
        Some(out)
    }

    // ---- types -------------------------------------------------------------

    fn type_expr(&mut self) -> Option<TypeExpr> {
        self.guarded(|p| p.type_expr_inner())
    }

    fn type_expr_inner(&mut self) -> Option<TypeExpr> {
        let lhs = self.type_atom()?;
        if self.eat(TokenKind::Arrow) {
            let rhs = self.type_expr()?; // right-associative
            let span = lhs.span.to(rhs.span);
            return Some(TypeExpr {
                kind: TypeExprKind::Function(Box::new(lhs), Box::new(rhs)),
                span,
            });
        }
        Some(lhs)
    }

    fn type_atom(&mut self) -> Option<TypeExpr> {
        match self.peek() {
            TokenKind::LParen => {
                let start = self.bump().span;
                let mut elems = Vec::new();
                if !self.at(TokenKind::RParen) {
                    loop {
                        elems.push(self.type_expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(TokenKind::RParen)?.span;
                let span = start.to(end);
                if elems.len() == 1 {
                    // Degenerate rule: (T) is exactly T.
                    let mut t = elems.pop().expect("one element");
                    t.span = span;
                    Some(t)
                } else {
                    Some(TypeExpr { kind: TypeExprKind::Tuple(elems), span })
                }
            }
            TokenKind::Ident => {
                let name = self.ident()?;
                let args = if self.at(TokenKind::Lt) {
                    self.type_arg_list()?
                } else {
                    Vec::new()
                };
                let span = name.span;
                Some(TypeExpr { kind: TypeExprKind::Named { name, args }, span })
            }
            _ => {
                self.error_here("expected a type");
                None
            }
        }
    }

    // ---- statements ---------------------------------------------------------

    fn block(&mut self) -> Option<Block> {
        let start = self.expect(TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while !self.at(TokenKind::RBrace) && !self.at(TokenKind::Eof) {
            let before = self.pos;
            match self.stmt() {
                Some(s) => stmts.push(s),
                None => {
                    if self.pos == before {
                        self.bump();
                    }
                    // Recover to next statement boundary.
                    while !matches!(
                        self.peek(),
                        TokenKind::Semi | TokenKind::RBrace | TokenKind::Eof
                    ) {
                        self.bump();
                    }
                    self.eat(TokenKind::Semi);
                }
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        Some(Block { stmts, span: start.to(end) })
    }

    fn stmt(&mut self) -> Option<Stmt> {
        self.guarded(|p| p.stmt_inner())
    }

    fn stmt_inner(&mut self) -> Option<Stmt> {
        let start = self.cur().span;
        let kind = match self.peek() {
            TokenKind::LBrace => StmtKind::Block(self.block()?),
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(TokenKind::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                StmtKind::If(cond, then, els)
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                StmtKind::While(cond, body)
            }
            TokenKind::KwFor => return self.for_stmt(),
            TokenKind::KwVar | TokenKind::KwDef => {
                let mutable = self.bump().kind == TokenKind::KwVar;
                let binders = self.var_binders()?;
                self.expect(TokenKind::Semi)?;
                StmtKind::Local { mutable, binders }
            }
            TokenKind::KwReturn => {
                self.bump();
                let e = if self.at(TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                StmtKind::Return(e)
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                StmtKind::Break
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                StmtKind::Continue
            }
            TokenKind::Semi => {
                self.bump();
                StmtKind::Empty
            }
            _ => {
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                StmtKind::Expr(e)
            }
        };
        let span = start.to(self.tokens[self.pos.saturating_sub(1)].span);
        Some(Stmt { kind, span, id: self.fresh_id() })
    }

    fn var_binders(&mut self) -> Option<Vec<VarBinder>> {
        let mut binders = Vec::new();
        loop {
            let name = self.ident()?;
            let ty = if self.eat(TokenKind::Colon) {
                Some(self.type_expr()?)
            } else {
                None
            };
            let init = if self.eat(TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            binders.push(VarBinder { name, ty, init, id: self.fresh_id() });
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        Some(binders)
    }

    fn for_stmt(&mut self) -> Option<Stmt> {
        let start = self.expect(TokenKind::KwFor)?.span;
        self.expect(TokenKind::LParen)?;
        let mut decl = None;
        let mut init = None;
        if !self.at(TokenKind::Semi) {
            if self.at(TokenKind::KwVar) || self.at(TokenKind::KwDef) {
                self.bump();
                decl = Some(self.var_binders()?);
            } else if self.at(TokenKind::Ident) && self.peek_ahead(1) == TokenKind::Assign {
                // The paper's idiom `for (l = list; ...)` *declares* l.
                decl = Some(self.var_binders()?);
            } else {
                init = Some(self.expr()?);
            }
        }
        self.expect(TokenKind::Semi)?;
        let cond = if self.at(TokenKind::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::Semi)?;
        let update = if self.at(TokenKind::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(TokenKind::RParen)?;
        let body = Box::new(self.stmt()?);
        let span = start.to(body.span);
        Some(Stmt {
            kind: StmtKind::For { decl, init, cond, update, body },
            span,
            id: self.fresh_id(),
        })
    }

    // ---- expressions ---------------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Option<Expr> {
        self.guarded(|p| p.assign_expr_inner())
    }

    fn assign_expr_inner(&mut self) -> Option<Expr> {
        let lhs = self.ternary_expr()?;
        if self.at(TokenKind::Assign) {
            self.bump();
            let value = self.assign_expr()?;
            let span = lhs.span.to(value.span);
            return Some(Expr {
                kind: ExprKind::Assign { target: Box::new(lhs), value: Box::new(value) },
                span,
                id: self.fresh_id(),
            });
        }
        Some(lhs)
    }

    fn ternary_expr(&mut self) -> Option<Expr> {
        self.guarded(|p| p.ternary_expr_inner())
    }

    fn ternary_expr_inner(&mut self) -> Option<Expr> {
        let cond = self.or_expr()?;
        if self.at(TokenKind::Question) {
            self.bump();
            let then = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let els = self.ternary_expr()?;
            let span = cond.span.to(els.span);
            return Some(Expr {
                kind: ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                span,
                id: self.fresh_id(),
            });
        }
        Some(cond)
    }

    fn or_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at(TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Or(Box::new(lhs), Box::new(rhs)),
                span,
                id: self.fresh_id(),
            };
        }
        Some(lhs)
    }

    fn and_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.bitor_expr()?;
        while self.at(TokenKind::AndAnd) {
            self.bump();
            let rhs = self.bitor_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::And(Box::new(lhs), Box::new(rhs)),
                span,
                id: self.fresh_id(),
            };
        }
        Some(lhs)
    }

    fn bitor_expr(&mut self) -> Option<Expr> {
        self.binary_level(0)
    }

    /// Binary operator levels, loosest first.
    const LEVELS: &'static [&'static [(TokenKind, BinOp)]] = &[
        &[(TokenKind::Pipe, BinOp::BitOr)],
        &[(TokenKind::Caret, BinOp::BitXor)],
        &[(TokenKind::Amp, BinOp::BitAnd)],
        &[(TokenKind::Eq, BinOp::Eq), (TokenKind::Ne, BinOp::Ne)],
        &[
            (TokenKind::Lt, BinOp::Lt),
            (TokenKind::Le, BinOp::Le),
            (TokenKind::Gt, BinOp::Gt),
            (TokenKind::Ge, BinOp::Ge),
        ],
        &[(TokenKind::Shl, BinOp::Shl), (TokenKind::Shr, BinOp::Shr)],
        &[(TokenKind::Plus, BinOp::Add), (TokenKind::Minus, BinOp::Sub)],
        &[
            (TokenKind::Star, BinOp::Mul),
            (TokenKind::Slash, BinOp::Div),
            (TokenKind::Percent, BinOp::Mod),
        ],
    ];

    fn binary_level(&mut self, level: usize) -> Option<Expr> {
        if level >= Self::LEVELS.len() {
            return self.unary_expr();
        }
        let mut lhs = self.binary_level(level + 1)?;
        'outer: loop {
            for &(tk, op) in Self::LEVELS[level] {
                if self.at(tk) {
                    self.bump();
                    let rhs = self.binary_level(level + 1)?;
                    let span = lhs.span.to(rhs.span);
                    lhs = Expr {
                        kind: ExprKind::Binary {
                            op,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                        span,
                        id: self.fresh_id(),
                    };
                    continue 'outer;
                }
            }
            return Some(lhs);
        }
    }

    fn unary_expr(&mut self) -> Option<Expr> {
        // Collect prefix operators iteratively so `----…x` costs no native
        // stack in the parser, then apply them innermost-first.
        let mut prefixes: Vec<Token> = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Minus => {
                    // `-9223372036854775808` (`i64::MIN`) only fits in an i64
                    // as a whole: its positive half overflows, so fold the
                    // sign into the literal before decoding.
                    if self.peek_ahead(1) == TokenKind::IntLit {
                        let lit = self.tokens[self.pos + 1];
                        let text = lit.text(self.src);
                        if decode_int_lit(text).is_none() {
                            if let Some(v) = decode_neg_int_lit(text) {
                                let minus = self.bump();
                                self.bump();
                                let span = minus.span.to(lit.span);
                                let e = Expr {
                                    kind: ExprKind::IntLit(v),
                                    span,
                                    id: self.fresh_id(),
                                };
                                let e = self.postfix_tail(e)?;
                                return Some(self.apply_prefixes(prefixes, e));
                            }
                        }
                    }
                    prefixes.push(self.bump());
                }
                TokenKind::Bang => {
                    prefixes.push(self.bump());
                }
                _ => break,
            }
        }
        // A prefix run is nesting like any other: cap it so the resulting
        // `Neg`/`Not` chain stays within what downstream recursion tolerates.
        if prefixes.len() as u32 > MAX_NESTING_DEPTH {
            let span = prefixes[0].span;
            self.diags.error(span, "expression too deeply nested");
            self.diags.note_last(
                None,
                format!("the parser limits nesting to {MAX_NESTING_DEPTH} levels"),
            );
            return None;
        }
        let e = self.postfix_expr()?;
        Some(self.apply_prefixes(prefixes, e))
    }

    fn apply_prefixes(&mut self, prefixes: Vec<Token>, mut e: Expr) -> Expr {
        for t in prefixes.into_iter().rev() {
            let span = t.span.to(e.span);
            let kind = match t.kind {
                TokenKind::Minus => ExprKind::Neg(Box::new(e)),
                _ => ExprKind::Not(Box::new(e)),
            };
            e = Expr { kind, span, id: self.fresh_id() };
        }
        e
    }

    fn postfix_expr(&mut self) -> Option<Expr> {
        let e = self.primary_expr()?;
        self.postfix_tail(e)
    }

    /// Parses call/index/member/type-arg suffixes onto an already-parsed
    /// expression.
    fn postfix_tail(&mut self, mut e: Expr) -> Option<Expr> {
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    let span = e.span.to(end);
                    e = Expr {
                        kind: ExprKind::Call { func: Box::new(e), args },
                        span,
                        id: self.fresh_id(),
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    let end = self.expect(TokenKind::RBracket)?.span;
                    let span = e.span.to(end);
                    e = Expr {
                        kind: ExprKind::Index { recv: Box::new(e), index: Box::new(idx) },
                        span,
                        id: self.fresh_id(),
                    };
                }
                TokenKind::Dot => {
                    self.bump();
                    e = self.member_tail(e)?;
                }
                TokenKind::Lt => {
                    // Possible explicit type application on the expression so
                    // far, e.g. `r<(int, int)>` from listing (p7).
                    match self.try_type_args_suffix() {
                        Some(targs) => {
                            e = self.apply_type_args(e, targs)?;
                        }
                        None => return Some(e),
                    }
                }
                _ => return Some(e),
            }
        }
    }

    /// Attaches explicit type arguments to a name or member expression.
    fn apply_type_args(&mut self, e: Expr, targs: Vec<TypeExpr>) -> Option<Expr> {
        let span = e.span;
        match e.kind {
            ExprKind::Name { name, type_args } if type_args.is_empty() => Some(Expr {
                kind: ExprKind::Name { name, type_args: targs },
                span,
                id: e.id,
            }),
            ExprKind::Member { recv, member, type_args } if type_args.is_empty() => {
                Some(Expr {
                    kind: ExprKind::Member { recv, member, type_args: targs },
                    span,
                    id: e.id,
                })
            }
            _ => {
                self.diags.error(span, "type arguments are only valid on names and members");
                None
            }
        }
    }

    /// After `.`: parse a member name (identifier, `new`, tuple index, or
    /// operator member), plus optional explicit type arguments.
    fn member_tail(&mut self, recv: Expr) -> Option<Expr> {
        use TokenKind::*;
        let t = self.cur();
        // Tuple index: `e.0`.
        if t.kind == IntLit {
            self.bump();
            let text = t.text(self.src);
            let index: u32 = match text.parse() {
                Ok(i) => i,
                Err(_) => {
                    self.diags.error(t.span, "invalid tuple index");
                    0
                }
            };
            let span = recv.span.to(t.span);
            return Some(Expr {
                kind: ExprKind::TupleIndex { recv: Box::new(recv), index },
                span,
                id: self.fresh_id(),
            });
        }
        let member = match t.kind {
            Ident => {
                let id = self.ident()?;
                MemberName::Ident(id)
            }
            KwNew => {
                self.bump();
                MemberName::New(t.span)
            }
            Eq => {
                self.bump();
                MemberName::Op(OpMember::Eq, t.span)
            }
            Ne => {
                self.bump();
                MemberName::Op(OpMember::Ne, t.span)
            }
            Bang => {
                self.bump();
                MemberName::Op(OpMember::Cast, t.span)
            }
            Question => {
                self.bump();
                MemberName::Op(OpMember::Query, t.span)
            }
            Plus => {
                self.bump();
                MemberName::Op(OpMember::Add, t.span)
            }
            Minus => {
                self.bump();
                MemberName::Op(OpMember::Sub, t.span)
            }
            Star => {
                self.bump();
                MemberName::Op(OpMember::Mul, t.span)
            }
            Slash => {
                self.bump();
                MemberName::Op(OpMember::Div, t.span)
            }
            Percent => {
                self.bump();
                MemberName::Op(OpMember::Mod, t.span)
            }
            Lt => {
                self.bump();
                MemberName::Op(OpMember::Lt, t.span)
            }
            Le => {
                self.bump();
                MemberName::Op(OpMember::Le, t.span)
            }
            Gt => {
                self.bump();
                MemberName::Op(OpMember::Gt, t.span)
            }
            Ge => {
                self.bump();
                MemberName::Op(OpMember::Ge, t.span)
            }
            Amp => {
                self.bump();
                MemberName::Op(OpMember::BitAnd, t.span)
            }
            Pipe => {
                self.bump();
                MemberName::Op(OpMember::BitOr, t.span)
            }
            Caret => {
                self.bump();
                MemberName::Op(OpMember::BitXor, t.span)
            }
            Shl => {
                self.bump();
                MemberName::Op(OpMember::Shl, t.span)
            }
            Shr => {
                self.bump();
                MemberName::Op(OpMember::Shr, t.span)
            }
            _ => {
                self.error_here("expected a member name after '.'");
                return None;
            }
        };
        // Optional explicit type arguments: `A.!<B>`, `a.m<int>`.
        let type_args = if self.at(TokenKind::Lt) {
            self.try_type_args_suffix().unwrap_or_default()
        } else {
            Vec::new()
        };
        let span = recv.span.to(member.span());
        Some(Expr {
            kind: ExprKind::Member { recv: Box::new(recv), member, type_args },
            span,
            id: self.fresh_id(),
        })
    }

    /// Tokens that may legitimately follow an explicit type-argument list in
    /// expression context. Mirrors the C# disambiguation rule.
    fn type_args_follower(k: TokenKind) -> bool {
        use TokenKind::*;
        matches!(
            k,
            LParen | RParen | RBracket | RBrace | Dot | Comma | Semi | Colon | Question
                | Eq | Ne | Eof
        )
    }

    /// Attempts to parse `<T, ...>` as a type-argument list; backtracks and
    /// returns `None` if it does not parse or is not followed by a
    /// disambiguating token.
    fn try_type_args_suffix(&mut self) -> Option<Vec<TypeExpr>> {
        debug_assert!(self.at(TokenKind::Lt));
        let snap = self.snapshot();
        let result = (|| {
            let args = self.type_arg_list()?;
            if Self::type_args_follower(self.peek()) {
                Some(args)
            } else {
                None
            }
        })();
        if result.is_none() {
            self.restore(snap);
        }
        result
    }

    fn primary_expr(&mut self) -> Option<Expr> {
        let t = self.cur();
        match t.kind {
            TokenKind::IntLit => {
                self.bump();
                let text = t.text(self.src);
                let v = match decode_int_lit(text) {
                    Some(v) => v,
                    None => {
                        self.diags.error(
                            t.span,
                            format!("integer literal '{text}' out of range"),
                        );
                        self.diags.note_last(
                            None,
                            format!("integer literals must fit in an i64 ({} to {})", i64::MIN, i64::MAX),
                        );
                        0
                    }
                };
                Some(Expr { kind: ExprKind::IntLit(v), span: t.span, id: self.fresh_id() })
            }
            TokenKind::ByteLit => {
                self.bump();
                let v = decode_byte_lit(t.text(self.src)).unwrap_or(0);
                Some(Expr { kind: ExprKind::ByteLit(v), span: t.span, id: self.fresh_id() })
            }
            TokenKind::StringLit => {
                self.bump();
                let v = decode_string_lit(t.text(self.src)).unwrap_or_default();
                Some(Expr {
                    kind: ExprKind::StringLit(v),
                    span: t.span,
                    id: self.fresh_id(),
                })
            }
            TokenKind::KwTrue | TokenKind::KwFalse => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::BoolLit(t.kind == TokenKind::KwTrue),
                    span: t.span,
                    id: self.fresh_id(),
                })
            }
            TokenKind::KwNull => {
                self.bump();
                Some(Expr { kind: ExprKind::NullLit, span: t.span, id: self.fresh_id() })
            }
            TokenKind::LParen => {
                let start = self.bump().span;
                let mut elems = Vec::new();
                if !self.at(TokenKind::RParen) {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(TokenKind::RParen)?.span;
                let span = start.to(end);
                if elems.len() == 1 {
                    // (e) is exactly e; keep the wider span.
                    let mut e = elems.pop().expect("one element");
                    e.span = span;
                    Some(e)
                } else {
                    Some(Expr {
                        kind: ExprKind::Tuple(elems),
                        span,
                        id: self.fresh_id(),
                    })
                }
            }
            TokenKind::LBracket => {
                let start = self.bump().span;
                let mut elems = Vec::new();
                if !self.at(TokenKind::RBracket) {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(TokenKind::RBracket)?.span;
                let span = start.to(end);
                Some(Expr { kind: ExprKind::ArrayLit(elems), span, id: self.fresh_id() })
            }
            TokenKind::Ident => {
                let name = self.ident()?;
                let span = name.span;
                Some(Expr {
                    kind: ExprKind::Name { name, type_args: Vec::new() },
                    span,
                    id: self.fresh_id(),
                })
            }
            TokenKind::Error => {
                // The lexer already reported this token; consume it and leave
                // an error placeholder so parsing continues.
                self.bump();
                Some(Expr { kind: ExprKind::Error, span: t.span, id: self.fresh_id() })
            }
            _ => {
                self.error_here(format!("expected an expression, found {}", t.kind));
                // Consume the offending token unless it can close or continue
                // an enclosing construct — leaving anchors in place lets the
                // surrounding recovery loops resynchronize on them.
                if !Self::expr_recovery_anchor(t.kind) {
                    self.bump();
                }
                Some(Expr { kind: ExprKind::Error, span: t.span, id: self.fresh_id() })
            }
        }
    }

    /// Tokens a failed `primary_expr` must not consume: closers and keywords
    /// that enclosing constructs or recovery loops synchronize on.
    fn expr_recovery_anchor(k: TokenKind) -> bool {
        use TokenKind::*;
        matches!(
            k,
            RParen | RBracket | RBrace | Semi | Comma | Colon | Eof | KwClass | KwDef
                | KwVar | KwPrivate | KwNew | KwElse | KwReturn | KwIf | KwWhile | KwFor
                | KwBreak | KwContinue
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr_ok(src: &str) -> Expr {
        let mut d = Diagnostics::new();
        let e = parse_expr(src, &mut d);
        assert!(!d.has_errors(), "errors for {src:?}: {:?}", d.into_vec());
        e.expect("expression")
    }

    fn type_ok(src: &str) -> TypeExpr {
        let mut d = Diagnostics::new();
        let t = parse_type(src, &mut d);
        assert!(!d.has_errors(), "errors for {src:?}: {:?}", d.into_vec());
        t.expect("type")
    }

    fn program_ok(src: &str) -> Program {
        let mut d = Diagnostics::new();
        let p = parse_program(src, &mut d);
        assert!(!d.has_errors(), "errors for {src:?}: {:?}", d.into_vec());
        p
    }

    #[test]
    fn parse_simple_types() {
        assert!(matches!(type_ok("int").kind, TypeExprKind::Named { .. }));
        assert!(matches!(type_ok("(int, int)").kind, TypeExprKind::Tuple(ref v) if v.len() == 2));
        assert!(matches!(type_ok("()").kind, TypeExprKind::Tuple(ref v) if v.is_empty()));
    }

    #[test]
    fn paren_type_collapses() {
        // (T) is exactly T.
        assert!(
            matches!(type_ok("(int)").kind, TypeExprKind::Named { ref name, .. } if name.name == "int")
        );
    }

    #[test]
    fn function_types_right_associative() {
        let t = type_ok("int -> int -> int");
        match t.kind {
            TypeExprKind::Function(_, r) => {
                assert!(matches!(r.kind, TypeExprKind::Function(..)));
            }
            _ => panic!("expected function type"),
        }
    }

    #[test]
    fn tuple_function_types() {
        let t = type_ok("(int, int) -> bool");
        match t.kind {
            TypeExprKind::Function(p, _) => {
                assert!(matches!(p.kind, TypeExprKind::Tuple(ref v) if v.len() == 2));
            }
            _ => panic!("expected function type"),
        }
    }

    #[test]
    fn nested_generics_split_shr() {
        let t = type_ok("List<List<int>>");
        match t.kind {
            TypeExprKind::Named { name, args } => {
                assert_eq!(name.name, "List");
                assert_eq!(args.len(), 1);
            }
            _ => panic!("expected named type"),
        }
    }

    #[test]
    fn deeply_nested_generics() {
        type_ok("List<List<List<List<int>>>>");
        type_ok("Array<(int, List<bool>)>");
    }

    #[test]
    fn parse_literals() {
        assert!(matches!(expr_ok("42").kind, ExprKind::IntLit(42)));
        assert!(matches!(expr_ok("'a'").kind, ExprKind::ByteLit(b'a')));
        assert!(matches!(expr_ok("true").kind, ExprKind::BoolLit(true)));
        assert!(matches!(expr_ok("null").kind, ExprKind::NullLit));
        assert!(matches!(expr_ok("\"hi\"").kind, ExprKind::StringLit(ref v) if v == b"hi"));
    }

    #[test]
    fn tuple_exprs_and_collapse() {
        assert!(matches!(expr_ok("(1, 2)").kind, ExprKind::Tuple(ref v) if v.len() == 2));
        assert!(matches!(expr_ok("()").kind, ExprKind::Tuple(ref v) if v.is_empty()));
        assert!(matches!(expr_ok("(1)").kind, ExprKind::IntLit(1)));
    }

    #[test]
    fn tuple_index_chain() {
        // Listing (c5): z.1.0
        let e = expr_ok("z.1.0");
        match e.kind {
            ExprKind::TupleIndex { recv, index: 0 } => {
                assert!(matches!(recv.kind, ExprKind::TupleIndex { index: 1, .. }));
            }
            _ => panic!("expected nested tuple index"),
        }
    }

    #[test]
    fn method_call_parses_as_application() {
        let e = expr_ok("a.m(5)");
        match e.kind {
            ExprKind::Call { func, args } => {
                assert_eq!(args.len(), 1);
                assert!(matches!(func.kind, ExprKind::Member { .. }));
            }
            _ => panic!("expected call"),
        }
    }

    #[test]
    fn operator_members() {
        // Listings (b8-b11).
        for src in ["byte.==", "A.!=", "int.+", "int.-", "int.<<"] {
            let e = expr_ok(src);
            assert!(
                matches!(e.kind, ExprKind::Member { member: MemberName::Op(..), .. }),
                "{src} should be an operator member"
            );
        }
    }

    #[test]
    fn cast_and_query_with_type_args() {
        // Listings (b14-b15): A.!<B>, A.?<B>.
        let e = expr_ok("A.!<B>");
        match e.kind {
            ExprKind::Member { member: MemberName::Op(OpMember::Cast, _), type_args, .. } => {
                assert_eq!(type_args.len(), 1);
            }
            other => panic!("expected cast member, got {other:?}"),
        }
        let e = expr_ok("A.?<B>");
        assert!(matches!(
            e.kind,
            ExprKind::Member { member: MemberName::Op(OpMember::Query, _), .. }
        ));
    }

    #[test]
    fn new_as_function() {
        // Listing (b7): A.new
        let e = expr_ok("A.new");
        assert!(matches!(e.kind, ExprKind::Member { member: MemberName::New(_), .. }));
    }

    #[test]
    fn generic_type_member_call() {
        // Listing (d13): List<bool>.?(a)
        let e = expr_ok("List<bool>.?(a)");
        match e.kind {
            ExprKind::Call { func, .. } => match func.kind {
                ExprKind::Member { recv, member: MemberName::Op(OpMember::Query, _), .. } => {
                    assert!(matches!(
                        recv.kind,
                        ExprKind::Name { ref type_args, .. } if type_args.len() == 1
                    ));
                }
                other => panic!("expected query member, got {other:?}"),
            },
            _ => panic!("expected call"),
        }
    }

    #[test]
    fn explicit_method_type_args() {
        // Listing (d12): apply<int>(a, print)
        let e = expr_ok("apply<int>(a, print)");
        match e.kind {
            ExprKind::Call { func, args } => {
                assert_eq!(args.len(), 2);
                assert!(matches!(
                    func.kind,
                    ExprKind::Name { ref type_args, .. } if type_args.len() == 1
                ));
            }
            _ => panic!("expected call"),
        }
    }

    #[test]
    fn comparison_not_mistaken_for_type_args() {
        let e = expr_ok("a < b");
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Lt, .. }));
        let e = expr_ok("a < b && c > d");
        assert!(matches!(e.kind, ExprKind::And(..)));
    }

    #[test]
    fn type_args_with_tuple_type() {
        // Listing (p7): r<(int, int)>
        let e = expr_ok("r<(int, int)>");
        assert!(matches!(
            e.kind,
            ExprKind::Name { ref type_args, .. } if type_args.len() == 1
        ));
    }

    #[test]
    fn ternary_from_listing_p3() {
        let e = expr_ok("z ? f : g");
        assert!(matches!(e.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = expr_ok("1 + 2 * 3");
        match e.kind {
            ExprKind::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
            }
            _ => panic!("expected add at top"),
        }
    }

    #[test]
    fn shortcircuit_parses() {
        assert!(matches!(expr_ok("a && b || c").kind, ExprKind::Or(..)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = expr_ok("a = b = c");
        match e.kind {
            ExprKind::Assign { value, .. } => {
                assert!(matches!(value.kind, ExprKind::Assign { .. }));
            }
            _ => panic!("expected assignment"),
        }
    }

    #[test]
    fn array_literal_and_index() {
        assert!(matches!(expr_ok("[1, 2, 3]").kind, ExprKind::ArrayLit(ref v) if v.len() == 3));
        assert!(matches!(expr_ok("a[i]").kind, ExprKind::Index { .. }));
    }

    #[test]
    fn parse_class_from_listing_a() {
        let p = program_ok(
            "class A {\n\
               var f: int;\n\
               def g: int;\n\
               new(f, g) { }\n\
               def m(a: byte) -> int { return 0; }\n\
             }\n\
             class B extends A {\n\
               def m(a: byte) -> int { return 1; }\n\
             }",
        );
        assert_eq!(p.decls.len(), 2);
        match &p.decls[0] {
            Decl::Class(c) => {
                assert_eq!(c.name.name, "A");
                assert_eq!(c.members.len(), 4);
            }
            _ => panic!("expected class"),
        }
        match &p.decls[1] {
            Decl::Class(c) => assert!(c.parent.is_some()),
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn parse_generic_class_from_listing_d() {
        let p = program_ok(
            "class List<T> {\n\
               var head: T;\n\
               var tail: List<T>;\n\
               new(head, tail) { }\n\
             }\n\
             def apply<A>(list: List<A>, f: A -> void) {\n\
               for (l = list; l != null; l = l.tail) f(l.head);\n\
             }",
        );
        assert_eq!(p.decls.len(), 2);
        match &p.decls[0] {
            Decl::Class(c) => assert_eq!(c.type_params.len(), 1),
            _ => panic!("expected class"),
        }
        match &p.decls[1] {
            Decl::Method(m) => {
                assert_eq!(m.type_params.len(), 1);
                assert_eq!(m.params.len(), 2);
            }
            _ => panic!("expected method"),
        }
    }

    #[test]
    fn parse_header_params_class_from_listing_f() {
        let p = program_ok(
            "class DatastoreInterface(\n\
               create: () -> Record,\n\
               load: Key -> Record,\n\
               store: Record -> ()) {\n\
             }",
        );
        match &p.decls[0] {
            Decl::Class(c) => assert_eq!(c.header_params.len(), 3),
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn parse_abstract_method_from_listing_n() {
        let p = program_ok("class Instr { def emit(buf: Buffer); }");
        match &p.decls[0] {
            Decl::Class(c) => match &c.members[0] {
                Member::Method(m) => assert!(m.body.is_none()),
                _ => panic!("expected method"),
            },
            _ => panic!("expected class"),
        }
    }

    #[test]
    fn parse_time_example_from_listing_e() {
        program_ok(
            "def time<A, B>(func: A -> B, a: A) -> (B, int) {\n\
               var start = clockticks();\n\
               return (func(a), clockticks() - start);\n\
             }",
        );
    }

    #[test]
    fn parse_super_ctor() {
        program_ok(
            "class A { def x: int; new(x) { } }\n\
             class B extends A { new(y: int) super(y) { } }",
        );
    }

    #[test]
    fn for_loop_with_implicit_decl() {
        let p = program_ok("def f() { for (i = 0; i < 10; i = i + 1) g(i); }");
        assert_eq!(p.decls.len(), 1);
    }

    #[test]
    fn error_recovery_keeps_later_decls() {
        let mut d = Diagnostics::new();
        let p = parse_program("class A { def ; } def ok() { }", &mut d);
        assert!(d.has_errors());
        assert!(p
            .decls
            .iter()
            .any(|x| matches!(x, Decl::Method(m) if m.name.name == "ok")));
    }

    #[test]
    fn var_with_multiple_binders() {
        // Listing (q1'): var b0 = "hello", b1 = 15;
        let p = program_ok("def f() { var b0 = \"hello\", b1 = 15; }");
        match &p.decls[0] {
            Decl::Method(m) => {
                let body = m.body.as_ref().expect("body");
                match &body.stmts[0].kind {
                    StmtKind::Local { binders, .. } => assert_eq!(binders.len(), 2),
                    _ => panic!("expected local"),
                }
            }
            _ => panic!("expected method"),
        }
    }

    #[test]
    fn ids_are_unique() {
        let p = program_ok("def f(x: int) -> int { return x + 1; }");
        // All ids must be below node_count and the program parse allocated some.
        assert!(p.node_count > 0);
    }

    // ---- error recovery & robustness ---------------------------------------

    #[test]
    fn min_i64_literal_lexes_via_negation() {
        let e = expr_ok("-9223372036854775808");
        assert!(matches!(e.kind, ExprKind::IntLit(i64::MIN)), "{e:?}");
        // Double negation still folds the innermost pair.
        let e = expr_ok("--9223372036854775808");
        match e.kind {
            ExprKind::Neg(inner) => assert!(matches!(inner.kind, ExprKind::IntLit(i64::MIN))),
            other => panic!("expected neg, got {other:?}"),
        }
        // Subtraction is not negation: `2-…` keeps the binary operator.
        let mut d = Diagnostics::new();
        let _ = parse_expr("2-9223372036854775808", &mut d);
        assert!(d.has_errors(), "positive half alone is out of range");
    }

    #[test]
    fn out_of_range_literal_reports_value() {
        let mut d = Diagnostics::new();
        let e = parse_expr("9223372036854775808", &mut d);
        assert!(e.is_some());
        assert!(d
            .iter()
            .any(|x| x.message.contains("9223372036854775808") && x.message.contains("out of range")));
    }

    #[test]
    fn deep_nesting_reports_instead_of_overflowing() {
        for src in [
            "(".repeat(10_000),
            "(".repeat(10_000) + "1" + &")".repeat(10_000),
            "!".repeat(10_000) + "x",
            "[".repeat(10_000),
        ] {
            let mut d = Diagnostics::new();
            let _ = parse_expr(&src, &mut d);
            assert!(d.has_errors(), "expected a diagnostic for {} …", &src[..8]);
            assert!(
                d.iter().any(|x| x.message.contains("too deeply nested")),
                "wanted nesting diagnostic, got {:?}",
                d.iter().take(3).collect::<Vec<_>>()
            );
        }
        // Statements and types nest through the same guard.
        let stmts = "{".repeat(10_000);
        let mut d = Diagnostics::new();
        let _ = parse_program(&format!("def f() {stmts}"), &mut d);
        assert!(d.has_errors());
        let types = "(".repeat(10_000) + "int";
        let mut d = Diagnostics::new();
        let _ = parse_type(&types, &mut d);
        assert!(d.has_errors());
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        // 200 levels sits well past any single thread's debug-build stack
        // budget: this only passes because recursion is segmented across
        // fresh threads.
        let src = "(".repeat(200) + "1" + &")".repeat(200);
        expr_ok(&src);
        let ty = "(".repeat(200) + "int" + &")".repeat(200);
        type_ok(&ty);
    }

    #[test]
    fn stray_shr_is_diagnosed_not_panicking() {
        for src in [">>", "a >> ;", "x = >>;", "List<int>> y", "f(a >>)"] {
            let mut d = Diagnostics::new();
            let _ = parse_program(&format!("def f() {{ {src} }}"), &mut d);
            assert!(d.has_errors(), "expected errors for {src:?}");
        }
    }

    #[test]
    fn missing_expr_leaves_error_node() {
        let mut d = Diagnostics::new();
        let p = parse_program("def f() { var x = ; }", &mut d);
        assert_eq!(d.error_count(), 1, "{:?}", d.iter().collect::<Vec<_>>());
        // The declaration survives with an Error placeholder as initializer.
        match &p.decls[0] {
            Decl::Method(m) => {
                let body = m.body.as_ref().expect("body");
                match &body.stmts[0].kind {
                    StmtKind::Local { binders, .. } => {
                        let init = binders[0].init.as_ref().expect("init");
                        assert!(matches!(init.kind, ExprKind::Error));
                    }
                    other => panic!("expected local, got {other:?}"),
                }
            }
            _ => panic!("expected method"),
        }
    }

    #[test]
    fn multiple_independent_errors_all_reported() {
        let src = "def f() {\n\
                     var a = ;\n\
                     var b = 1 +;\n\
                     var c = [1, , 2];\n\
                   }";
        let mut d = Diagnostics::new();
        let _ = parse_program(src, &mut d);
        assert!(d.error_count() >= 3, "{:?}", d.iter().collect::<Vec<_>>());
    }

    #[test]
    fn missing_call_arg_recovers_within_call() {
        let mut d = Diagnostics::new();
        let p = parse_program("def f() { g(, 2); }", &mut d);
        assert_eq!(d.error_count(), 1);
        // The call still has two argument slots.
        match &p.decls[0] {
            Decl::Method(m) => {
                let body = m.body.as_ref().expect("body");
                match &body.stmts[0].kind {
                    StmtKind::Expr(e) => match &e.kind {
                        ExprKind::Call { args, .. } => assert_eq!(args.len(), 2),
                        other => panic!("expected call, got {other:?}"),
                    },
                    other => panic!("expected expr stmt, got {other:?}"),
                }
            }
            _ => panic!("expected method"),
        }
    }

    #[test]
    fn garbage_never_loops_forever() {
        // Purely adversarial token soup; success is termination + errors.
        for src in [
            "} } ) ] ; , : >> << ?",
            "class { { { def var",
            "def f() { if (x { y } }",
            "var = = = ;",
            "\u{0}\u{1}\u{2}",
        ] {
            let mut d = Diagnostics::new();
            let _ = parse_program(src, &mut d);
            assert!(d.has_errors(), "expected errors for {src:?}");
        }
    }
}
