//! # vgl-syntax
//!
//! Front end of **virgil-rs**, a Rust reproduction of the language described in
//! *Harmonizing Classes, Functions, Tuples, and Type Parameters in Virgil III*
//! (Titzer, PLDI 2013): source model, lexer, parser, AST, and pretty-printer.
//!
//! ```
//! use vgl_syntax::{parse_program, Diagnostics};
//!
//! let mut diags = Diagnostics::new();
//! let program = parse_program("def main() -> int { return 42; }", &mut diags);
//! assert!(!diags.has_errors());
//! assert_eq!(program.decls.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;

pub use ast::Program;
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use parser::{parse_expr, parse_program, parse_type};
pub use printer::{print_expr, print_program, print_type};
pub use span::{LineCol, LineMap, Span};
