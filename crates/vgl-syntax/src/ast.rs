//! Abstract syntax tree for Virgil III core.
//!
//! The AST is produced by the parser ([`crate::parser::parse_program`]) and is
//! deliberately *unresolved*: names (of variables, classes, primitives, type
//! parameters) are plain identifiers whose meaning is decided by semantic
//! analysis. Every expression and statement carries a [`NodeId`] that later
//! phases use to attach types without mutating the tree.

use crate::span::Span;
use std::fmt;

/// A unique (per-program) id for an expression, statement, or binder.
pub type NodeId = u32;

/// An identifier with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ident {
    /// The identifier text.
    pub name: String,
    /// Where it appears.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier.
    pub fn new(name: impl Into<String>, span: Span) -> Ident {
        Ident { name: name.into(), span }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A whole compilation unit: the list of top-level declarations.
///
/// Top-level `def`/`var` declarations form the implicit *component* of the
/// program; `def main(...)` is the entry point.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
    /// One past the largest [`NodeId`] used in this program.
    pub node_count: NodeId,
}

/// A top-level declaration.
#[derive(Clone, Debug)]
pub enum Decl {
    /// A class declaration.
    Class(ClassDecl),
    /// A top-level (component) method.
    Method(MethodDecl),
    /// A top-level (component) variable.
    Var(FieldDecl),
}

/// A class declaration, e.g. `class List<T> { ... }`.
#[derive(Clone, Debug)]
pub struct ClassDecl {
    /// The class name.
    pub name: Ident,
    /// Declared type parameters, in order.
    pub type_params: Vec<Ident>,
    /// Header constructor parameters: `class C(x: int, f: int -> int) { }`
    /// declares immutable fields `x` and `f` initialized by an implicit
    /// constructor (the compact form used throughout Section 3 of the paper).
    pub header_params: Vec<Param>,
    /// The `extends` clause, if any. Virgil has single inheritance and **no
    /// universal supertype**: a class without a parent roots a new hierarchy.
    pub parent: Option<ParentRef>,
    /// Field, method, and constructor members.
    pub members: Vec<Member>,
    /// Span of the whole declaration.
    pub span: Span,
}

/// The `extends Parent<T>(args)` clause of a class.
#[derive(Clone, Debug)]
pub struct ParentRef {
    /// Name of the parent class.
    pub name: Ident,
    /// Explicit type arguments to the parent.
    pub type_args: Vec<TypeExpr>,
    /// Span of the clause.
    pub span: Span,
}

/// A class member.
#[derive(Clone, Debug)]
pub enum Member {
    /// A field.
    Field(FieldDecl),
    /// A method.
    Method(MethodDecl),
    /// A constructor `new(...) { ... }`.
    Ctor(CtorDecl),
}

/// A field (or top-level variable) declaration.
#[derive(Clone, Debug)]
pub struct FieldDecl {
    /// `true` for `var` (mutable), `false` for `def` (immutable).
    pub mutable: bool,
    /// Field name.
    pub name: Ident,
    /// Declared type; may be omitted when an initializer or constructor
    /// parameter determines it.
    pub ty: Option<TypeExpr>,
    /// Initializer expression, if present.
    pub init: Option<Expr>,
    /// Binder id for type recording.
    pub id: NodeId,
    /// Span of the declaration.
    pub span: Span,
}

/// A method declaration. A body of `None` means the method is *abstract*
/// (declared `def m(...);` as in listing (n2) of the paper) and must be
/// overridden in subclasses.
#[derive(Clone, Debug)]
pub struct MethodDecl {
    /// `private` methods are non-virtual and hidden.
    pub is_private: bool,
    /// Method name; unique within a class (Virgil forbids overloading).
    pub name: Ident,
    /// Declared type parameters, in order.
    pub type_params: Vec<Ident>,
    /// Value parameters.
    pub params: Vec<Param>,
    /// Declared return type; `None` means `void`.
    pub ret: Option<TypeExpr>,
    /// The body, or `None` for an abstract method.
    pub body: Option<Block>,
    /// Span of the declaration.
    pub span: Span,
}

/// An explicit constructor declaration `new(a, b: int) super(a) { ... }`.
#[derive(Clone, Debug)]
pub struct CtorDecl {
    /// Constructor parameters. A parameter *without* a type annotation (as in
    /// listing (a4) `new(f, g) { ... }`) is a *field-init parameter*: it takes
    /// the type of the same-named field and assigns it automatically.
    pub params: Vec<CtorParam>,
    /// Arguments to the superclass constructor, if `super(...)` is present.
    pub super_args: Option<Vec<Expr>>,
    /// Constructor body.
    pub body: Block,
    /// Span of the declaration.
    pub span: Span,
}

/// One constructor parameter.
#[derive(Clone, Debug)]
pub struct CtorParam {
    /// Parameter name.
    pub name: Ident,
    /// Declared type, or `None` for a field-init parameter.
    pub ty: Option<TypeExpr>,
    /// Binder id.
    pub id: NodeId,
}

/// A typed value parameter of a method.
#[derive(Clone, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: Ident,
    /// Declared type.
    pub ty: TypeExpr,
    /// Binder id.
    pub id: NodeId,
}

/// A syntactic type expression (unresolved).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeExpr {
    /// The shape of the type.
    pub kind: TypeExprKind,
    /// Where it appears.
    pub span: Span,
}

/// The shape of a [`TypeExpr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeExprKind {
    /// A named type: a primitive (`int`), `Array<T>`, `string`, a class, or a
    /// type parameter, possibly with type arguments.
    Named {
        /// The head name.
        name: Ident,
        /// Type arguments, possibly empty.
        args: Vec<TypeExpr>,
    },
    /// A tuple type `(T0, ..., Tn)`. By the degenerate rules, `()` denotes
    /// `void` and `(T)` denotes `T`; the parser already collapses the latter.
    Tuple(Vec<TypeExpr>),
    /// A function type `P -> R` (right-associative).
    Function(Box<TypeExpr>, Box<TypeExpr>),
}

/// A block of statements.
#[derive(Clone, Debug)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Span including the braces.
    pub span: Span,
}

/// A statement.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// The statement shape.
    pub kind: StmtKind,
    /// Where it appears.
    pub span: Span,
    /// Unique node id.
    pub id: NodeId,
}

/// One `name (: T)? (= init)?` binder within a local declaration.
#[derive(Clone, Debug)]
pub struct VarBinder {
    /// The variable name.
    pub name: Ident,
    /// Declared type, if any.
    pub ty: Option<TypeExpr>,
    /// Initializer, if any.
    pub init: Option<Expr>,
    /// Binder id.
    pub id: NodeId,
}

/// The shape of a [`Stmt`].
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// A nested block `{ ... }`.
    Block(Block),
    /// `if (cond) then else?`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (cond) body`.
    While(Expr, Box<Stmt>),
    /// `for (init; cond; update) body`. The paper's idiom
    /// `for (l = list; l != null; l = l.tail)` *declares* `l`.
    For {
        /// Loop-scoped declarations, if the init declares variables.
        decl: Option<Vec<VarBinder>>,
        /// A plain init expression (when no declaration).
        init: Option<Expr>,
        /// Loop condition; `None` means `true`.
        cond: Option<Expr>,
        /// Update expression run after each iteration.
        update: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `var`/`def` local declaration with one or more binders.
    Local {
        /// `true` for `var`, `false` for `def`.
        mutable: bool,
        /// The binders.
        binders: Vec<VarBinder>,
    },
    /// `return e?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// An expression statement.
    Expr(Expr),
    /// An empty statement `;`.
    Empty,
}

/// An expression.
#[derive(Clone, Debug)]
pub struct Expr {
    /// The expression shape.
    pub kind: ExprKind,
    /// Where it appears.
    pub span: Span,
    /// Unique node id; semantic analysis attaches the type here.
    pub id: NodeId,
}

/// A member selected after `.`: an identifier, `new`, or one of the operator
/// members every type provides (`T.==`, `T.!=`, `T.!`, `T.?`) plus the
/// arithmetic operator members of primitives (`int.+`, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemberName {
    /// A named member: field or method.
    Ident(Ident),
    /// The constructor member `new`.
    New(Span),
    /// An operator member.
    Op(OpMember, Span),
}

impl MemberName {
    /// The span of the member name.
    pub fn span(&self) -> Span {
        match self {
            MemberName::Ident(i) => i.span,
            MemberName::New(s) | MemberName::Op(_, s) => *s,
        }
    }
}

impl fmt::Display for MemberName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberName::Ident(i) => f.write_str(&i.name),
            MemberName::New(_) => f.write_str("new"),
            MemberName::Op(op, _) => f.write_str(op.symbol()),
        }
    }
}

/// Operator members available via `Type.op` syntax.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpMember {
    /// `T.==` — equality as a function `(T, T) -> bool`.
    Eq,
    /// `T.!=` — inequality as a function `(T, T) -> bool`.
    Ne,
    /// `T.!` — type cast, `F -> T`.
    Cast,
    /// `T.?` — type query, `F -> bool`.
    Query,
    /// `int.+` etc.
    Add,
    /// `int.-`
    Sub,
    /// `int.*`
    Mul,
    /// `int./`
    Div,
    /// `int.%`
    Mod,
    /// `int.<`
    Lt,
    /// `int.<=`
    Le,
    /// `int.>`
    Gt,
    /// `int.>=`
    Ge,
    /// `int.&`
    BitAnd,
    /// `int.|`
    BitOr,
    /// `int.^`
    BitXor,
    /// `int.<<`
    Shl,
    /// `int.>>`
    Shr,
}

impl OpMember {
    /// The source symbol of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            OpMember::Eq => "==",
            OpMember::Ne => "!=",
            OpMember::Cast => "!",
            OpMember::Query => "?",
            OpMember::Add => "+",
            OpMember::Sub => "-",
            OpMember::Mul => "*",
            OpMember::Div => "/",
            OpMember::Mod => "%",
            OpMember::Lt => "<",
            OpMember::Le => "<=",
            OpMember::Gt => ">",
            OpMember::Ge => ">=",
            OpMember::BitAnd => "&",
            OpMember::BitOr => "|",
            OpMember::BitXor => "^",
            OpMember::Shl => "<<",
            OpMember::Shr => ">>",
        }
    }
}

/// Binary operators (the short-circuit forms `&&`/`||` are separate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl BinOp {
    /// The source symbol of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// The shape of an [`Expr`].
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// An integer literal.
    IntLit(i64),
    /// A byte literal `'a'`.
    ByteLit(u8),
    /// `true` / `false`.
    BoolLit(bool),
    /// A string literal (denotes `Array<byte>`).
    StringLit(Vec<u8>),
    /// `null`.
    NullLit,
    /// A tuple literal `(a, b)`. `()` is the single `void` value; `(e)` is
    /// collapsed to `e` by the parser.
    Tuple(Vec<Expr>),
    /// An array literal `[a, b, c]`.
    ArrayLit(Vec<Expr>),
    /// A (possibly type-applied) name: `x`, `List<int>`, `apply<int>`.
    Name {
        /// The head identifier.
        name: Ident,
        /// Explicit type arguments, possibly empty.
        type_args: Vec<TypeExpr>,
    },
    /// Member selection `recv.member` or `recv.member<T...>`.
    Member {
        /// The receiver expression (may denote a type).
        recv: Box<Expr>,
        /// The selected member.
        member: MemberName,
        /// Explicit type arguments on the member.
        type_args: Vec<TypeExpr>,
    },
    /// Tuple element access `e.0`.
    TupleIndex {
        /// The tuple expression.
        recv: Box<Expr>,
        /// The 0-based element index.
        index: u32,
    },
    /// Application `f(args...)`. An application of a method denotes a call; an
    /// application of any function-typed expression invokes it.
    Call {
        /// The callee.
        func: Box<Expr>,
        /// Arguments as written (the tuple/argument duality is resolved in
        /// semantic analysis).
        args: Vec<Expr>,
    },
    /// Array indexing `a[i]`.
    Index {
        /// The array expression.
        recv: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// Logical negation `!e` (on `bool`).
    Not(Box<Expr>),
    /// Arithmetic negation `-e`.
    Neg(Box<Expr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Short-circuit `&&`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    Or(Box<Expr>, Box<Expr>),
    /// Ternary conditional `c ? a : b` (used in listing (p3)).
    Ternary {
        /// The condition.
        cond: Box<Expr>,
        /// Value if true.
        then: Box<Expr>,
        /// Value if false.
        els: Box<Expr>,
    },
    /// Assignment `target = value`; target is a name, field, index, or tuple
    /// index expression.
    Assign {
        /// The place being assigned.
        target: Box<Expr>,
        /// The new value.
        value: Box<Expr>,
    },
    /// A placeholder produced by parser error recovery. A diagnostic has
    /// already been reported for it; semantic analysis gives it the poisoned
    /// error type and otherwise ignores it.
    Error,
}

impl Expr {
    /// True if this expression is syntactically a valid assignment target.
    pub fn is_place(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Name { .. } | ExprKind::Member { .. } | ExprKind::Index { .. }
        )
    }
}
