//! Differential pipeline tests: for every corpus program, the interpreter
//! must produce identical results and output on the source module and on the
//! fully compiled (monomorphized + normalized + optimized) module — including
//! identical exceptions. This is the end-to-end guarantee that the §4 passes
//! are semantics-preserving.

use vgl_interp::{Interp, InterpError};
use vgl_passes::compile_pipeline;
use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};

fn compile(src: &str) -> vgl_ir::Module {
    let mut d = Diagnostics::new();
    let ast = parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse: {:?}", d.into_vec());
    let mut d = Diagnostics::new();
    match analyze(&ast, &mut d) {
        Some(m) => m,
        None => panic!("sema: {:#?}", d.into_vec()),
    }
}

fn run(m: &vgl_ir::Module) -> (Result<String, String>, String) {
    let mut i = Interp::new(m);
    i.set_fuel(100_000_000);
    let r = match i.run() {
        Ok(v) => Ok(format!("{v}")),
        Err(InterpError::Exception(e)) => Err(e.to_string()),
        Err(other) => Err(other.to_string()),
    };
    (r, i.output())
}

/// Runs `src` through both paths and asserts identical observables.
fn differential(src: &str) -> (vgl_ir::Module, vgl_passes::PipelineStats) {
    let module = compile(src);
    let (before, out_before) = run(&module);
    let (compiled, stats) = compile_pipeline(&module);
    let (after, out_after) = run(&compiled);
    assert_eq!(before, after, "result differs after pipeline for:\n{src}");
    assert_eq!(out_before, out_after, "output differs after pipeline for:\n{src}");
    (compiled, stats)
}

#[test]
fn simple_arithmetic() {
    differential("def main() -> int { return 6 * 7; }");
}

#[test]
fn loops_and_recursion() {
    differential(
        "def fib(n: int) -> int { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\n\
         def main() -> int {\n\
           var s = 0;\n\
           for (i = 0; i < 10; i = i + 1) s = s + fib(i);\n\
           return s;\n\
         }",
    );
}

#[test]
fn tuple_returns_become_multivalue() {
    let (compiled, stats) = differential(
        "def divmod(a: int, b: int) -> (int, int) { return (a / b, a % b); }\n\
         def main() -> int {\n\
           var r = divmod(17, 5);\n\
           return r.0 * 10 + r.1;\n\
         }",
    );
    assert!(stats.norm.multi_return_methods >= 1);
    // The compiled module is tuple-free (modulo boundaries).
    assert!(vgl_ir::check_normalized(&compiled).is_empty());
}

#[test]
fn listing_q_normalization_examples() {
    differential(
        "def m(a: (string, int)) { System.puts(a.0); System.puti(a.1); }\n\
         def f(v: void) { System.puts(\"f\"); }\n\
         def main() {\n\
           var b = (\"hello\", 15);\n\
           m(b);\n\
           m(\"goodbye\", b.1);\n\
           m(\"cheers\", (11, 22).0);\n\
           var t: void;\n\
           f(t);\n\
         }",
    );
}

#[test]
fn generic_list_pipeline() {
    let (_, stats) = differential(
        "class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         def apply<A>(list: List<A>, f: A -> void) {\n\
           for (l = list; l != null; l = l.tail) f(l.head);\n\
         }\n\
         def pi(i: int) { System.puti(i); }\n\
         def pp(p: (int, int)) { System.puti(p.0 + p.1); }\n\
         def main() {\n\
           apply(List.new(1, List.new(2, null)), pi);\n\
           apply(List.new((3, 4), null), pp);\n\
         }",
    );
    // Two instantiations of List and apply.
    assert!(stats.mono.class_instances >= 2);
}

#[test]
fn print1_specialization_folds_queries() {
    let (compiled, stats) = differential(
        "def print1<T>(a: T) {\n\
           if (int.?(a)) System.puti(int.!(a));\n\
           if (bool.?(a)) System.putb(bool.!(a));\n\
           if (byte.?(a)) System.putc(byte.!(a));\n\
         }\n\
         def main() {\n\
           print1(7);\n\
           print1(false);\n\
           print1('x');\n\
         }",
    );
    // §3.3: the chain of queries is decided statically in each
    // specialization and folded away.
    assert!(stats.opt.queries_folded >= 6, "queries folded: {}", stats.opt.queries_folded);
    assert!(stats.opt.branches_folded >= 6, "branches folded: {}", stats.opt.branches_folded);
    // No Query operations survive in the compiled module.
    let mut queries = 0;
    for m in &compiled.methods {
        if let Some(b) = &m.body {
            vgl_ir::visit::for_each_expr(b, &mut |e| {
                if matches!(e.kind, vgl_ir::ExprKind::Apply(vgl_ir::Oper::Query { .. }, _)) {
                    queries += 1;
                }
            });
        }
    }
    assert_eq!(queries, 0, "type queries survive specialization");
}

#[test]
fn polymorphic_matcher_pipeline() {
    differential(
        "class Any { }\n\
         class Box<T> extends Any {\n\
           def val: T;\n\
           new(val) { }\n\
           def unbox() -> T { return val; }\n\
         }\n\
         class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         class Matcher {\n\
           var matches: List<Any>;\n\
           def add<T>(f: T -> void) {\n\
             matches = List<Any>.new(Box<T -> void>.new(f), matches);\n\
           }\n\
           def dispatch<T>(v: T) {\n\
             for (l = matches; l != null; l = l.tail) {\n\
               var f = l.head;\n\
               if (Box<T -> void>.?(f)) {\n\
                 Box<T -> void>.!(f).unbox()(v);\n\
                 return;\n\
               }\n\
             }\n\
             System.puts(\"?\");\n\
           }\n\
         }\n\
         def printInt(a: int) { System.puti(a); }\n\
         def printBool(a: bool) { System.putb(a); }\n\
         def printPair(a: (int, int)) { System.puti(a.0 * 100 + a.1); }\n\
         def main() {\n\
           var m = Matcher.new();\n\
           m.add(printInt);\n\
           m.add(printBool);\n\
           m.add(printPair);\n\
           m.dispatch(1);\n\
           m.dispatch(true);\n\
           m.dispatch((2, 3));\n\
           m.dispatch(\"s\");\n\
         }",
    );
}

#[test]
fn variant_instr_pipeline() {
    differential(
        "class Buffer { }\n\
         class Instr { def emit(buf: Buffer); }\n\
         class InstrOf<T> extends Instr {\n\
           var emitFunc: (Buffer, T) -> void;\n\
           var val: T;\n\
           new(emitFunc, val) { }\n\
           def emit(buf: Buffer) { emitFunc(buf, val); }\n\
         }\n\
         class Reg { def n: int; new(n) { } }\n\
         def add(b: Buffer, ops: (Reg, Reg)) { System.puti(ops.0.n + ops.1.n); }\n\
         def addi(b: Buffer, ops: (Reg, int)) { System.puti(ops.0.n + ops.1); }\n\
         def neg(b: Buffer, ops: Reg) { System.puti(-ops.n); }\n\
         def main() {\n\
           var r0 = Reg.new(3), r1 = Reg.new(4);\n\
           var buf = Buffer.new();\n\
           var is = [InstrOf.new(add, (r0, r1)), InstrOf.new(addi, (r0, 11)), InstrOf.new(neg, r1)];\n\
           var gs: Array<Instr> = [is[0], is[1], is[2]];\n\
           for (i = 0; i < gs.length; i = i + 1) gs[i].emit(buf);\n\
           if (InstrOf<Reg>.?(gs[2])) System.puts(\"reg\");\n\
         }",
    );
}

#[test]
fn tuple_heavy_code_has_zero_tuple_boxing_after_pipeline() {
    let src = "def swap(p: (int, int)) -> (int, int) { return (p.1, p.0); }\n\
               def main() -> int {\n\
                 var t = (1, 2);\n\
                 for (i = 0; i < 100; i = i + 1) t = swap(t);\n\
                 return t.0 + t.1;\n\
               }";
    let (compiled, _) = differential(src);
    // Run the *compiled* module: the interpreter still counts tuple allocs,
    // but the only ones left are the multi-return boundary boxes, which the
    // VM (unlike the interpreter) lowers to registers. Verify the body of
    // the loop performs no Tuple construction outside Return.
    let mut bad = 0;
    for m in &compiled.methods {
        if let Some(b) = &m.body {
            for s in &b.stmts {
                count_non_boundary_tuples(s, &mut bad);
            }
        }
    }
    assert_eq!(bad, 0, "non-boundary tuple constructions remain");
}

fn count_non_boundary_tuples(s: &vgl_ir::Stmt, bad: &mut usize) {
    use vgl_ir::Stmt;
    match s {
        Stmt::Return(Some(e)) => {
            // Tuple directly under Return is the multi-value boundary.
            if let vgl_ir::ExprKind::Tuple(es) = &e.kind {
                for x in es {
                    count_tuples_expr(x, bad);
                }
            } else {
                count_tuples_expr(e, bad);
            }
        }
        Stmt::Expr(e) | Stmt::Local(_, Some(e)) => count_tuples_expr(e, bad),
        Stmt::If(c, t, f) => {
            count_tuples_expr(c, bad);
            for x in t {
                count_non_boundary_tuples(x, bad);
            }
            for x in f {
                count_non_boundary_tuples(x, bad);
            }
        }
        Stmt::While(c, b) => {
            count_tuples_expr(c, bad);
            for x in b {
                count_non_boundary_tuples(x, bad);
            }
        }
        Stmt::Block(b) => {
            for x in b {
                count_non_boundary_tuples(x, bad);
            }
        }
        _ => {}
    }
}

fn count_tuples_expr(e: &vgl_ir::Expr, bad: &mut usize) {
    if matches!(e.kind, vgl_ir::ExprKind::Tuple(_)) {
        *bad += 1;
    }
    for c in vgl_ir::visit::children(e) {
        count_tuples_expr(c, bad);
    }
}

#[test]
fn exceptions_preserved_by_pipeline() {
    differential("def main() { var x = 1 / 0; }");
    differential("class A { var f: int; }\ndef main() { var a: A; System.puti(a.f); }");
    differential("def main() { var a = Array<int>.new(3); a[5] = 1; }");
    differential(
        "class A { }\nclass B extends A { }\n\
         def main() { var a = A.new(); var b = B.!(a); }",
    );
}

#[test]
fn virtual_dispatch_preserved() {
    let (compiled, stats) = differential(
        "class A { def v() -> int { return 1; } }\n\
         class B extends A { def v() -> int { return 2; } }\n\
         class C extends B { def v() -> int { return 3; } }\n\
         def main() -> int {\n\
           var xs: Array<A> = [A.new(), B.new(), C.new()];\n\
           var s = 0;\n\
           for (i = 0; i < xs.length; i = i + 1) s = s * 10 + xs[i].v();\n\
           return s;\n\
         }",
    );
    let _ = (compiled, stats);
}

#[test]
fn devirtualization_of_single_implementation() {
    let (_, stats) = differential(
        "class A { def v() -> int { return 41; } }\n\
         def main() -> int { var a = A.new(); return a.v() + 1; }",
    );
    assert!(stats.opt.devirtualized >= 1);
}

#[test]
fn generic_virtual_methods_pipeline() {
    differential(
        "class Base {\n\
           def visit<T>(x: T) -> int { return 1; }\n\
         }\n\
         class Derived extends Base {\n\
           def visit<T>(x: T) -> int { return 2; }\n\
         }\n\
         def main() -> int {\n\
           var b: Base = Derived.new();\n\
           var x = b.visit(5);\n\
           var y = b.visit(true);\n\
           var z = Base.new().visit((1, 2));\n\
           return x * 100 + y * 10 + z;\n\
         }",
    );
}

#[test]
fn arrays_of_tuples_soa() {
    differential(
        "def main() -> int {\n\
           var a = Array<(int, bool)>.new(4);\n\
           for (i = 0; i < 4; i = i + 1) a[i] = (i * i, i % 2 == 0);\n\
           var s = 0;\n\
           for (i = 0; i < a.length; i = i + 1) {\n\
             var e = a[i];\n\
             if (e.1) s = s + e.0;\n\
           }\n\
           return s;\n\
         }",
    );
}

#[test]
fn array_of_void_keeps_bounds_checks() {
    differential(
        "def main() {\n\
           var a = Array<void>.new(3);\n\
           a[2] = ();\n\
           var v = a[1];\n\
           System.puti(a.length);\n\
         }",
    );
    // Out of bounds must still trap.
    differential(
        "def main() {\n\
           var a = Array<void>.new(3);\n\
           var v = a[3];\n\
         }",
    );
}

#[test]
fn nested_tuples_flatten_fully() {
    differential(
        "def f(x: ((int, int), (bool, byte))) -> int {\n\
           return x.0.0 + x.0.1 + (x.1.0 ? 100 : 0) + int.!(x.1.1);\n\
         }\n\
         def main() -> int { return f(((1, 2), (true, '\\0'))); }",
    );
}

#[test]
fn tuple_equality_after_normalization() {
    differential(
        "def main() -> int {\n\
           var a = ((1, 2), true);\n\
           var b = ((1, 2), true);\n\
           var c = ((9, 2), true);\n\
           var n = 0;\n\
           if (a == b) n = n + 1;\n\
           if (a != c) n = n + 10;\n\
           return n;\n\
         }",
    );
}

#[test]
fn first_class_tuple_equality_wrapper() {
    let (_, stats) = differential(
        "def eqof<T>() -> ((T, T) -> bool) { return T.==; }\n\
         def check(eq: ((int, int), (int, int)) -> bool) -> bool {\n\
           return eq((1, 2), (1, 2)) && !eq((1, 2), (3, 4));\n\
         }\n\
         def main() -> bool {\n\
           var f = eqof<(int, int)>();\n\
           return check(f);\n\
         }",
    );
    // The first-class tuple equality became a synthesized scalar wrapper.
    assert!(stats.norm.wrappers_synthesized >= 1);
}

#[test]
fn fields_of_tuple_type_flatten() {
    let (compiled, _) = differential(
        "class P { var pos: (int, int); var name: string; new(pos, name) { } }\n\
         def main() -> int {\n\
           var p = P.new((3, 4), \"x\");\n\
           p.pos = (p.pos.1, p.pos.0);\n\
           return p.pos.0 * 10 + p.pos.1;\n\
         }",
    );
    let p = compiled.class_by_name("P").expect("P survives");
    // pos flattened to two scalar fields + name = 3 slots.
    assert_eq!(compiled.class(p).fields.len(), 3);
}

#[test]
fn interface_adapter_pipeline() {
    differential(
        "class Record { def tag: int; new(tag) { } }\n\
         class DatastoreInterface(\n\
           create: () -> Record,\n\
           load: int -> Record) {\n\
         }\n\
         class DatastoreImpl {\n\
           def create() -> Record { return Record.new(7); }\n\
           def load(k: int) -> Record { return Record.new(k); }\n\
           def adapt() -> DatastoreInterface {\n\
             return DatastoreInterface.new(create, load);\n\
           }\n\
         }\n\
         def main() {\n\
           var ds = DatastoreImpl.new().adapt();\n\
           System.puti(ds.create().tag);\n\
           System.puti(ds.load(42).tag);\n\
         }",
    );
}

#[test]
fn adt_hashmap_pipeline() {
    differential(
        "class HashMap<K, V> {\n\
           def hash: K -> int;\n\
           def equals: (K, K) -> bool;\n\
           var keys: Array<K>;\n\
           var vals: Array<V>;\n\
           var used: Array<bool>;\n\
           new(hash, equals) {\n\
             keys = Array<K>.new(16);\n\
             vals = Array<V>.new(16);\n\
             used = Array<bool>.new(16);\n\
           }\n\
           def set(key: K, val: V) {\n\
             var i = (hash(key) & 15);\n\
             while (used[i]) {\n\
               if (equals(keys[i], key)) { vals[i] = val; return; }\n\
               i = (i + 1) & 15;\n\
             }\n\
             keys[i] = key; vals[i] = val; used[i] = true;\n\
           }\n\
           def get(key: K) -> V {\n\
             var i = (hash(key) & 15);\n\
             while (used[i]) {\n\
               if (equals(keys[i], key)) return vals[i];\n\
               i = (i + 1) & 15;\n\
             }\n\
             var d: V; return d;\n\
           }\n\
         }\n\
         def idhash(x: int) -> int { return x; }\n\
         def pairhash(p: (int, int)) -> int { return p.0 * 31 + p.1; }\n\
         def paireq(a: (int, int), b: (int, int)) -> bool { return a == b; }\n\
         def main() {\n\
           var m = HashMap<int, int>.new(idhash, int.==);\n\
           m.set(1, 10);\n\
           m.set(17, 20);\n\
           System.puti(m.get(1));\n\
           System.puti(m.get(17));\n\
           var pm = HashMap<(int, int), int>.new(pairhash, paireq);\n\
           pm.set((1, 2), 99);\n\
           System.puti(pm.get((1, 2)));\n\
         }",
    );
}

#[test]
fn globals_with_tuple_types() {
    differential(
        "var origin = (1, 2);\n\
         var label = \"pt\";\n\
         def main() -> int {\n\
           var t = origin;\n\
           origin = (t.1, t.0);\n\
           return origin.0 * 10 + origin.1 + label.length;\n\
         }",
    );
}

#[test]
fn dead_code_eliminated_by_reachability() {
    let (compiled, _) = differential(
        "class Unused { def huge() -> int { return 1; } }\n\
         def unused_helper() -> int { return 2; }\n\
         def main() -> int { return 3; }",
    );
    assert!(compiled.class_by_name("Unused").is_none(), "dead class survived");
    assert!(compiled.method_by_name("unused_helper").is_none(), "dead method survived");
}

#[test]
fn expansion_grows_with_instantiations() {
    // E4 shape: more distinct instantiations → more code after mono.
    let make = |k: usize| {
        let mut src = String::from(
            "class Box<T> { def val: T; new(val) { } def get() -> T { return val; } }\n\
             def use<T>(x: T) -> T { return Box<T>.new(x).get(); }\n\
             def main() {\n",
        );
        for i in 0..k {
            // Distinct tuple widths give distinct type arguments.
            let args = (0..=i).map(|j| (i + j).to_string()).collect::<Vec<_>>().join(", ");
            src.push_str(&format!("  use(({args}));\n"));
        }
        src.push_str("}\n");
        src
    };
    let m2 = compile(&make(2));
    let m6 = compile(&make(6));
    let (_, s2) = compile_pipeline(&m2);
    let (_, s6) = compile_pipeline(&m6);
    assert!(
        s6.size_after_mono.expr_nodes > s2.size_after_mono.expr_nodes,
        "expansion should grow: {} vs {}",
        s6.size_after_mono.expr_nodes,
        s2.size_after_mono.expr_nodes
    );
    assert!(s6.mono.method_instances > s2.mono.method_instances);
}
