//! Focused pass-level tests: each optimization/normalization facility is
//! checked through its statistics and through validator behaviour.

use vgl_passes::{compile_pipeline, monomorphize, normalize, optimize};
use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};

fn front(src: &str) -> vgl_ir::Module {
    let mut d = Diagnostics::new();
    let ast = parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse: {:?}", d.into_vec());
    match analyze(&ast, &mut d) {
        Some(m) => m,
        None => panic!("sema: {:#?}", d.into_vec()),
    }
}

#[test]
fn const_folding_collapses_arithmetic() {
    let m = front("def main() -> int { return 2 * 3 + 4 * 5; }");
    let (_, stats) = compile_pipeline(&m);
    assert!(stats.opt.consts_folded >= 3, "{:?}", stats.opt);
}

#[test]
fn constant_division_by_zero_becomes_trap() {
    let m = front("def main() -> int { return 1 / 0; }");
    let (compiled, stats) = compile_pipeline(&m);
    assert!(stats.opt.consts_folded >= 1);
    let mut has_trap = false;
    for meth in &compiled.methods {
        if let Some(b) = &meth.body {
            vgl_ir::visit::for_each_expr(b, &mut |e| {
                if matches!(e.kind, vgl_ir::ExprKind::Trap(_)) {
                    has_trap = true;
                }
            });
        }
    }
    assert!(has_trap, "expected a trap for constant 1/0");
}

#[test]
fn inliner_collapses_leaf_helpers() {
    let m = front(
        "def sq(x: int) -> int { return x * x; }\n\
         def main() -> int { return sq(3) + sq(4); }",
    );
    let (compiled, stats) = compile_pipeline(&m);
    assert!(stats.opt.inlined >= 2, "{:?}", stats.opt);
    // After inlining + folding, main should contain no direct calls to sq.
    let main = compiled.main.expect("main");
    let mut calls = 0;
    vgl_ir::visit::for_each_expr(compiled.method(main).body.as_ref().expect("body"), &mut |e| {
        if matches!(e.kind, vgl_ir::ExprKind::CallStatic { .. }) {
            calls += 1;
        }
    });
    assert_eq!(calls, 0, "sq calls survive inlining");
    // And constant folding should reduce it to the literal 25.
    assert!(stats.opt.consts_folded >= 2);
}

#[test]
fn inliner_skips_recursive_and_large_bodies() {
    let m = front(
        "def f(n: int) -> int { return n == 0 ? 0 : f(n - 1); }\n\
         def main() -> int { return f(3); }",
    );
    let (_, stats) = compile_pipeline(&m);
    assert_eq!(stats.opt.inlined, 0, "recursive method must not inline");
}

#[test]
fn devirtualization_requires_unique_target() {
    // Two live overrides: no devirtualization of the polymorphic call.
    let m = front(
        "class A { def v() -> int { return 1; } }\n\
         class B extends A { def v() -> int { return 2; } }\n\
         def main() -> int {\n\
           var xs: Array<A> = [A.new(), B.new()];\n\
           return xs[0].v() + xs[1].v();\n\
         }",
    );
    let (_, stats) = compile_pipeline(&m);
    assert_eq!(stats.opt.devirtualized, 0);
}

#[test]
fn normalization_stats_reflect_flattening() {
    let m = front(
        "class P { var pos: (int, int); new(pos) { } }\n\
         def mk(a: int, b: int) -> (int, int) { return (a, b); }\n\
         def main() -> int { var p = P.new(mk(1, 2)); return p.pos.0; }",
    );
    let (mut mono, _) = monomorphize(&m);
    let norm = normalize(&mut mono);
    assert!(norm.fields_expanded >= 1, "{norm:?}");
    assert!(norm.params_expanded >= 1, "{norm:?}");
    assert!(norm.multi_return_methods >= 1, "{norm:?}");
    assert!(norm.tuple_exprs_removed >= 1, "{norm:?}");
    assert!(vgl_ir::check_normalized(&mono).is_empty());
}

#[test]
fn validators_catch_planted_violations() {
    let m = front("def main() -> int { return 1; }");
    let (mut compiled, _) = compile_pipeline(&m);
    assert!(vgl_ir::check_normalized(&compiled).is_empty());
    // Plant a tuple-typed expression in main.
    let int = compiled.store.int;
    let pair = compiled.store.tuple(vec![int, int]);
    let main = compiled.main.expect("main");
    let planted = vgl_ir::Expr::new(
        vgl_ir::ExprKind::Tuple(vec![
            vgl_ir::Expr::new(vgl_ir::ExprKind::Int(1), int),
            vgl_ir::Expr::new(vgl_ir::ExprKind::Int(2), int),
        ]),
        pair,
    );
    compiled.methods[main.index()]
        .body
        .as_mut()
        .expect("body")
        .stmts
        .insert(0, vgl_ir::Stmt::Expr(planted));
    assert!(!vgl_ir::check_normalized(&compiled).is_empty());
}

#[test]
fn check_monomorphic_catches_leftover_vars() {
    let m = front(
        "def id<T>(x: T) -> T { return x; }\n\
         def main() -> int { return id(1); }",
    );
    // The *source* module is polymorphic.
    assert!(!vgl_ir::check_monomorphic(&m).is_empty());
    let (compiled, _) = compile_pipeline(&m);
    assert!(vgl_ir::check_monomorphic(&compiled).is_empty());
}

#[test]
fn optimizer_is_idempotent() {
    let m = front(
        "def sq(x: int) -> int { return x * x; }\n\
         def q<T>(x: T) -> bool { return int.?(x); }\n\
         def main() -> int { return q(sq(3)) ? 1 : 0; }",
    );
    let (mut mono, _) = monomorphize(&m);
    normalize(&mut mono);
    let first = optimize(&mut mono);
    let second = optimize(&mut mono);
    assert!(first.queries_folded >= 1);
    // A second run finds nothing new.
    assert_eq!(second.queries_folded, 0);
    assert_eq!(second.branches_folded, 0);
    assert_eq!(second.inlined, 0);
}

#[test]
fn dead_statements_are_removed() {
    // Pure statements are dropped (by normalization's pure-piece discard or
    // the optimizer's dead-statement pass — either way they must be gone).
    let m = front(
        "def main() -> int {\n\
           var x = 5;\n\
           x;           // pure statement\n\
           1 + 2;       // pure statement\n\
           return x;\n\
         }",
    );
    let (compiled, _) = compile_pipeline(&m);
    let main = compiled.main.expect("main");
    let body = compiled.method(main).body.as_ref().expect("body");
    // Only the var decl and the return survive.
    assert!(body.stmts.len() <= 2, "dead statements survive: {:#?}", body.stmts);
}

#[test]
fn while_false_is_removed() {
    let m = front(
        "def main() -> int {\n\
           while (false) { System.puti(1); }\n\
           return 7;\n\
         }",
    );
    let (compiled, _) = compile_pipeline(&m);
    let main = compiled.main.expect("main");
    let body = compiled.method(main).body.as_ref().expect("body");
    let mut whiles = 0;
    fn count_whiles(s: &vgl_ir::Stmt, n: &mut usize) {
        match s {
            vgl_ir::Stmt::While(..) => *n += 1,
            vgl_ir::Stmt::Block(b) => b.iter().for_each(|x| count_whiles(x, n)),
            vgl_ir::Stmt::If(_, t, e) => {
                t.iter().for_each(|x| count_whiles(x, n));
                e.iter().for_each(|x| count_whiles(x, n));
            }
            _ => {}
        }
    }
    body.stmts.iter().for_each(|s| count_whiles(s, &mut whiles));
    assert_eq!(whiles, 0);
}

#[test]
fn mono_dedupes_identical_instantiations() {
    let m = front(
        "def id<T>(x: T) -> T { return x; }\n\
         def main() -> int { return id(1) + id(2) + id(3); }",
    );
    let (_, stats) = monomorphize(&m);
    // One instance of id<int> despite three call sites (+ main).
    assert_eq!(stats.method_instances, 2, "{stats:?}");
}

#[test]
fn mono_separates_distinct_instantiations() {
    let m = front(
        "def id<T>(x: T) -> T { return x; }\n\
         def main() -> int { id(true); id('c'); return id(1); }",
    );
    let (_, stats) = monomorphize(&m);
    assert_eq!(stats.method_instances, 4, "{stats:?}"); // main + 3 ids
}
