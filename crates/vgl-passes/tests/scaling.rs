//! The tentpole's empirical claim: on a machine with real cores, the
//! cost-chunked parallel back end beats the serial one on an
//! embarrassingly-parallel workload.
//!
//! The workload is a 256-instance cache-hostile fan-out — every instance
//! mentions its own class type, so the per-instance cache deduplicates
//! nothing and parallelism is the only lever. We time the configured back
//! half (streamed mono → normalize → optimize → joined lower+fuse) at
//! jobs = 1 and jobs = 8, min-of-3 trials after a warmup round, and require
//! jobs = 8 to be at least 1.5× faster.
//!
//! Gating: a speedup assertion is meaningless on a starved machine, and
//! tier-1 CI may run on one core. The test therefore auto-skips when
//! `std::thread::available_parallelism()` reports fewer than 4 cores.
//! Override with `VGL_SCALING=force` (run regardless — CI lanes with known
//! core counts use this) or `VGL_SCALING=skip` (never run).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

const INSTANCES: usize = 256;
const TRIALS: usize = 3;
const REQUIRED_SPEEDUP: f64 = 1.5;

/// Whether this machine can host a meaningful scaling measurement.
fn should_run() -> bool {
    match std::env::var("VGL_SCALING").as_deref() {
        Ok("force") => return true,
        Ok("skip") => return false,
        _ => {}
    }
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1) >= 4
}

/// A `k`-instance cache-hostile fan-out: `work<T>` takes a value of its type
/// parameter, so all `k` post-mono instances are distinct and the instance
/// cache cannot collapse them.
fn fanout_distinct(k: usize) -> String {
    let mut src = String::new();
    for i in 0..k {
        let _ = writeln!(src, "class C{i} {{ var tag: int; new(tag) {{ }} }}");
    }
    src.push_str(
        "def work<T>(x: T, n: int) -> int {\n\
         \tvar s = 0;\n\
         \tvar t = (0, 1, 2, 3);\n\
         \tfor (i = 0; i < n; i = i + 1) {\n\
         \t\tt = (t.3 + 1, t.0 + 2, t.1 + 3, t.2 + i);\n\
         \t\ts = s + t.0 * 3 + t.1 * 5 + t.2 * 7 + t.3;\n\
         \t\tif (s > 1000000) s = s - 999983;\n\
         \t\tvar a = i + 1; var b = a * 2; var c = b - a; var d = c * c;\n\
         \t\ts = s + d % 97 + (a + b) % 89 + (c + d) % 83;\n\
         \t}\n\
         \treturn s;\n\
         }\n\
         def main() -> int {\n\
         \tvar total = 0;\n",
    );
    for i in 0..k {
        let _ = writeln!(src, "\ttotal = total + work(C{i}.new({i}), 8);");
    }
    src.push_str("\treturn total % 1000;\n}\n");
    src
}

fn analyze(src: &str) -> vgl_ir::Module {
    let mut diags = vgl_syntax::Diagnostics::new();
    let ast = vgl_syntax::parse_program(src, &mut diags);
    assert!(!diags.has_errors(), "frontend rejected scaling workload");
    vgl_sema::analyze(&ast, &mut diags).expect("sema accepts scaling workload")
}

/// One timed run of the configured back half; returns the wall-clock time
/// and the output observables (for the byte-identity cross-check).
fn back_half(module: &vgl_ir::Module, jobs: usize) -> (Duration, String) {
    let cfg = vgl_passes::BackendConfig { jobs, cache: true, chunking: true };
    let mut report = vgl_passes::BackendReport::default();
    let start = Instant::now();
    let (mut m, _) = vgl_passes::monomorphize_cfg(module, &cfg, &mut report);
    vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
    vgl_passes::optimize_cfg(&mut m, &cfg, &mut report);
    let (prog, _, _) = vgl_vm::lower_fuse(&m, &cfg);
    let elapsed = start.elapsed();
    (elapsed, vgl_vm::disasm(&prog))
}

/// Min-of-`TRIALS` after one discarded warmup round (first run pays thread
/// spawn, allocator growth, and cold caches for both configurations alike).
fn min_time(module: &vgl_ir::Module, jobs: usize) -> (Duration, String) {
    let (_, disasm) = back_half(module, jobs);
    let mut best = Duration::MAX;
    for _ in 0..TRIALS {
        let (t, d) = back_half(module, jobs);
        assert_eq!(disasm, d, "scaling trial at jobs={jobs} was not deterministic");
        best = best.min(t);
    }
    (best, disasm)
}

/// jobs = 8 must beat jobs = 1 by ≥ 1.5× on the 256-instance fan-out, and
/// produce byte-identical bytecode while doing it.
#[test]
fn parallel_backend_beats_serial_on_fanout() {
    if !should_run() {
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        eprintln!(
            "scaling: skipped ({cores} core(s) available, need >= 4; \
             set VGL_SCALING=force to run anyway)"
        );
        return;
    }
    let src = fanout_distinct(INSTANCES);
    let module = analyze(&src);

    let (serial, serial_disasm) = min_time(&module, 1);
    let (parallel, parallel_disasm) = min_time(&module, 8);
    assert_eq!(
        serial_disasm, parallel_disasm,
        "jobs=8 bytecode differs from jobs=1 on the scaling workload"
    );

    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    eprintln!(
        "scaling: {INSTANCES}-instance fan-out, serial {:?}, jobs=8 {:?}, speedup {speedup:.2}x",
        serial, parallel
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "jobs=8 back end only {speedup:.2}x over serial (need >= {REQUIRED_SPEEDUP}x); \
         serial {serial:?}, parallel {parallel:?}"
    );
}

/// The skip gate itself is honest: when forced, the workload still compiles
/// and both configurations agree — this part runs everywhere, so the
/// scaling harness never rots on single-core machines.
#[test]
fn scaling_workload_compiles_identically() {
    let src = fanout_distinct(32);
    let module = analyze(&src);
    let (_, d1) = back_half(&module, 1);
    let (_, d8) = back_half(&module, 8);
    assert_eq!(d1, d8, "scaling workload bytecode differs between jobs=1 and jobs=8");
}
