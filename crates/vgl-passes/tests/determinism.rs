//! The parallel back end's determinism contract, locked down.
//!
//! `Options.jobs`, the per-instance pass cache, and cost-chunked scheduling
//! may only change *how fast* the back half of the pipeline
//! (mono → normalize → optimize → lower → fuse) runs — never *what* it
//! produces. These tests compile every example program and a few hundred
//! seed-pinned fuzz programs across the full configuration matrix
//!
//!   jobs ∈ {1, 2, 8, 16} × cache ∈ {on, off} × chunking ∈ {on, off}
//!
//! and assert the outputs are byte-identical: same post-optimize module
//! fingerprint, same bytecode disassembly. The joined lower+fuse path gets
//! the same treatment against the split one, the streamed monomorphizer
//! against the serial re-scan, and profiled execution against itself across
//! job counts and repeated runs.
//!
//! Override the fuzz-case count with `VGL_DET_CASES` (default 300).

use vgl_fuzz::{emit, gen_program, GenConfig};

/// Every configuration axis the scheduler exposes. The baseline is the
/// serial, fully-featured corner; every other corner must agree with it.
const JOBS_MATRIX: [usize; 4] = [1, 2, 8, 16];

fn analyze(src: &str) -> vgl_ir::Module {
    let mut diags = vgl_syntax::Diagnostics::new();
    let ast = vgl_syntax::parse_program(src, &mut diags);
    assert!(!diags.has_errors(), "frontend rejected test program:\n{src}");
    vgl_sema::analyze(&ast, &mut diags).expect("sema accepts test program")
}

/// Compiles `src` through the whole back half at the given configuration and
/// returns the two observables the determinism contract is stated over: the
/// fused bytecode disassembly and the post-optimize module content hash.
///
/// With the cache enabled this runs the *streamed* monomorphizer
/// ([`vgl_passes::monomorphize_cfg`]), so the matrix exercises the bounded
/// channel + sharded-index path, not just the serial re-scan.
fn compile_with(src: &str, jobs: usize, cache: bool, chunking: bool) -> (String, u64) {
    let module = analyze(src);
    let cfg = vgl_passes::BackendConfig { jobs, cache, chunking };
    let mut report = vgl_passes::BackendReport::default();
    let (mut m, _) = vgl_passes::monomorphize_cfg(&module, &cfg, &mut report);
    vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
    vgl_passes::optimize_cfg(&mut m, &cfg, &mut report);
    let fingerprint = vgl_passes::module_fingerprint(&m);
    let mut prog = vgl_vm::lower(&m);
    vgl_vm::fuse_cfg(&mut prog, &cfg);
    (vgl_vm::disasm(&prog), fingerprint)
}

/// Same pipeline, but lowering and fusion joined into the streaming
/// [`vgl_vm::lower_fuse`] driver instead of the split lower-then-fuse pair.
fn compile_joined(src: &str, jobs: usize, cache: bool, chunking: bool) -> (String, u64) {
    let module = analyze(src);
    let cfg = vgl_passes::BackendConfig { jobs, cache, chunking };
    let mut report = vgl_passes::BackendReport::default();
    let (mut m, _) = vgl_passes::monomorphize_cfg(&module, &cfg, &mut report);
    vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
    vgl_passes::optimize_cfg(&mut m, &cfg, &mut report);
    let fingerprint = vgl_passes::module_fingerprint(&m);
    let (prog, _, _) = vgl_vm::lower_fuse(&m, &cfg);
    (vgl_vm::disasm(&prog), fingerprint)
}

fn example_sources() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/v");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("examples/v exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("v") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, std::fs::read_to_string(&path).expect("readable example")));
        }
    }
    out.sort();
    assert!(!out.is_empty(), "no example programs found in {dir}");
    out
}

fn det_cases() -> u64 {
    std::env::var("VGL_DET_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(300)
}

/// A 16-instance cache-hostile fan-out: every instance survives dedup, so
/// chunk planning, streamed hashing, and the joined driver all see real work.
fn fanout_source() -> String {
    let mut src = String::new();
    for i in 0..16 {
        src.push_str(&format!("class C{i} {{ var tag: int; new(tag) {{ }} }}\n"));
    }
    src.push_str(
        "def work<T>(x: T, n: int) -> int {\n\
         \tvar s = 0;\n\
         \tfor (i = 0; i < n; i = i + 1) { s = s + i * i + n; }\n\
         \treturn s;\n\
         }\n\
         def main() -> int {\n\
         \tvar t = 0;\n",
    );
    for i in 0..16 {
        src.push_str(&format!("\tt = t + work(C{i}.new({i}), 4);\n"));
    }
    src.push_str("\treturn t;\n}\n");
    src
}

/// Every checked-in example compiles to byte-identical bytecode across the
/// full jobs × cache × chunking matrix (16 corners, baseline included).
#[test]
fn examples_identical_across_full_matrix() {
    for (name, src) in example_sources() {
        let baseline = compile_with(&src, 1, true, true);
        for jobs in JOBS_MATRIX {
            for cache in [true, false] {
                for chunking in [true, false] {
                    let got = compile_with(&src, jobs, cache, chunking);
                    assert_eq!(
                        baseline, got,
                        "{name}: output differs at jobs={jobs} cache={cache} chunking={chunking}"
                    );
                }
            }
        }
    }
}

/// A warm second run agrees with the cold first one at the most parallel
/// corner of the matrix.
#[test]
fn examples_warm_rerun_matches_cold() {
    for (name, src) in example_sources() {
        let cold = compile_with(&src, 16, true, true);
        let warm = compile_with(&src, 16, true, true);
        assert_eq!(cold, warm, "{name}: warm re-run differs from cold run");
    }
}

/// The joined lower+fuse driver ([`vgl_vm::lower_fuse`]) produces bytecode
/// byte-identical to the split lower-then-fuse path on every example and on
/// the fan-out workload, at every parallelism/chunking corner.
#[test]
fn joined_lower_fuse_matches_split() {
    let mut sources = example_sources();
    sources.push(("fanout_distinct_16".into(), fanout_source()));
    for (name, src) in sources {
        let split = compile_with(&src, 1, true, true);
        for jobs in [1, 8] {
            for chunking in [true, false] {
                let joined = compile_joined(&src, jobs, true, chunking);
                assert_eq!(
                    split, joined,
                    "{name}: lower_fuse differs from split lower+fuse at \
                     jobs={jobs} chunking={chunking}"
                );
                let joined_uncached = compile_joined(&src, jobs, false, chunking);
                assert_eq!(
                    split, joined_uncached,
                    "{name}: uncached lower_fuse differs at jobs={jobs} chunking={chunking}"
                );
            }
        }
    }
}

/// The streamed monomorphizer returns the same module and the same
/// duplicate-instance map as the serial monomorphize + re-scan pair: the
/// bounded channel and sharded min-wins index are pure scheduling.
#[test]
fn streamed_mono_matches_serial_rescan() {
    let mut sources = example_sources();
    sources.push(("fanout_distinct_16".into(), fanout_source()));
    for (name, src) in sources {
        let module = analyze(&src);
        let (serial_m, serial_stats) = vgl_passes::monomorphize(&module);
        let (serial_dup, _) = vgl_passes::cache::dup_groups(&serial_m, 1);
        for jobs in [2, 8, 16] {
            let (m, stats, dup, _) = vgl_passes::monomorphize_streamed(&module, jobs);
            assert_eq!(
                vgl_passes::module_fingerprint(&serial_m),
                vgl_passes::module_fingerprint(&m),
                "{name}: streamed mono module differs at jobs={jobs}"
            );
            assert_eq!(serial_stats, stats, "{name}: mono stats differ at jobs={jobs}");
            assert_eq!(
                serial_dup.rep, dup.rep,
                "{name}: streamed dup map differs from serial re-scan at jobs={jobs}"
            );
        }
    }
}

/// Seed-pinned fuzz programs (default 300, `VGL_DET_CASES` overrides) agree
/// between jobs = 1 and jobs = 8.
#[test]
fn fuzz_programs_identical_serial_vs_parallel() {
    let cfg = GenConfig::default();
    for case in 0..det_cases() {
        let seed = 0xD473_0000 + case;
        let src = emit(&gen_program(seed, &cfg));
        let serial = compile_with(&src, 1, true, true);
        let parallel = compile_with(&src, 8, true, true);
        assert_eq!(
            serial, parallel,
            "seed {seed}: jobs=8 output differs from jobs=1 for:\n{src}"
        );
    }
}

/// A sample of the fuzz corpus sweeps the remaining corners: oversubscribed
/// jobs = 16, chunking off, cache off, and the joined lower+fuse driver.
#[test]
fn fuzz_programs_identical_across_matrix_corners() {
    let cfg = GenConfig::default();
    let cases = (det_cases() / 4).max(25);
    for case in 0..cases {
        let seed = 0xCAC4_E000 + case;
        let src = emit(&gen_program(seed, &cfg));
        let baseline = compile_with(&src, 1, true, true);
        for (jobs, cache, chunking) in
            [(8, false, true), (16, true, true), (16, true, false), (8, true, false)]
        {
            let got = compile_with(&src, jobs, cache, chunking);
            assert_eq!(
                baseline, got,
                "seed {seed}: output differs at jobs={jobs} cache={cache} \
                 chunking={chunking} for:\n{src}"
            );
        }
        let joined = compile_joined(&src, 8, true, true);
        assert_eq!(baseline, joined, "seed {seed}: lower_fuse output differs for:\n{src}");
    }
}

/// The runtime profiler is observational: with hotness profiling enabled
/// (precise mode — the superset), every example produces byte-identical
/// output across job counts (including oversubscribed jobs = 16), and the
/// profile itself is byte-identical both across job counts and across
/// repeated runs of the same program.
#[test]
fn profiled_execution_identical_across_job_counts() {
    let program_with = |src: &str, jobs: usize| {
        let module = analyze(src);
        let cfg = vgl_passes::BackendConfig { jobs, cache: true, chunking: true };
        let mut report = vgl_passes::BackendReport::default();
        let (mut m, _) = vgl_passes::monomorphize_cfg(&module, &cfg, &mut report);
        vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
        vgl_passes::optimize_cfg(&mut m, &cfg, &mut report);
        let (prog, _, _) = vgl_vm::lower_fuse(&m, &cfg);
        prog
    };
    let profiled_run = |prog: &vgl_vm::VmProgram| {
        let mut vm = vgl_vm::Vm::with_heap(prog, 1 << 20);
        vm.enable_runtime_profiling_precise();
        let result = vm.run().expect("example runs");
        let profile = vm.take_runtime_profile().expect("enabled");
        (result, vm.output(), profile.to_json(prog).render())
    };
    for (name, src) in example_sources() {
        let serial = profiled_run(&program_with(&src, 1));
        for jobs in [8, 16] {
            let parallel = profiled_run(&program_with(&src, jobs));
            assert_eq!(serial, parallel, "{name}: profiled run differs at jobs={jobs}");
        }
        let again = profiled_run(&program_with(&src, 8));
        assert_eq!(serial, again, "{name}: profile is not deterministic run to run");
    }
}

/// A generic function instantiated at many phantom type arguments collapses
/// to one unique fingerprint in the cache, and the deduplicated build is
/// still byte-identical to the uncached one.
#[test]
fn instance_fanout_dedups_and_stays_identical() {
    let mut src = String::new();
    for i in 0..8 {
        src.push_str(&format!("class C{i} {{}}\n"));
    }
    src.push_str(
        "def work<T>(n: int) -> int {\n\
         \tvar s = 0;\n\
         \tfor (var i = 0; i < n; i = i + 1) { s = s + i * i; }\n\
         \treturn s;\n\
         }\n\
         def main() -> int {\n\
         \tvar t = 0;\n",
    );
    for i in 0..8 {
        src.push_str(&format!("\tt = t + work<C{i}>(4);\n"));
    }
    src.push_str("\treturn t;\n}\n");

    let module = analyze(&src);
    let cfg = vgl_passes::BackendConfig { jobs: 8, cache: true, chunking: true };
    let mut report = vgl_passes::BackendReport::default();
    let (mut m, _) = vgl_passes::monomorphize_cfg(&module, &cfg, &mut report);
    vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
    vgl_passes::optimize_cfg(&mut m, &cfg, &mut report);
    assert!(
        report.norm_cache.hits >= 7,
        "8 phantom instances of work<T> should dedup to 1; norm cache: {:?}",
        report.norm_cache
    );
    assert!(report.norm_cache.hit_rate() > 0.0);

    let cached = compile_with(&src, 8, true, true);
    let uncached = compile_with(&src, 1, false, false);
    assert_eq!(cached, uncached, "deduplicated build must match the cold serial build");
}
