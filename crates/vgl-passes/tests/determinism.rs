//! The parallel back end's determinism contract, locked down.
//!
//! `Options.jobs` may only change *how fast* the back half of the pipeline
//! (normalize → optimize → lower → fuse) runs — never *what* it produces.
//! These tests compile every example program and a few hundred seed-pinned
//! fuzz programs at jobs = 1, 2, and 8 and assert the outputs are
//! byte-identical: same post-optimize module fingerprint, same bytecode
//! disassembly. The per-instance pass cache gets the same treatment: cache
//! on vs cache off, and a warm re-run vs a cold one, must agree exactly.
//!
//! Override the fuzz-case count with `VGL_DET_CASES` (default 300).

use vgl_fuzz::{emit, gen_program, GenConfig};

/// Compiles `src` through the whole back half at the given configuration and
/// returns the two observables the determinism contract is stated over: the
/// fused bytecode disassembly and the post-optimize module content hash.
fn compile_with(src: &str, jobs: usize, cache: bool) -> (String, u64) {
    let mut diags = vgl_syntax::Diagnostics::new();
    let ast = vgl_syntax::parse_program(src, &mut diags);
    assert!(!diags.has_errors(), "frontend rejected test program:\n{src}");
    let module = vgl_sema::analyze(&ast, &mut diags).expect("sema accepts test program");
    let cfg = vgl_passes::BackendConfig { jobs, cache };
    let mut report = vgl_passes::BackendReport::default();
    let (mut m, _) = vgl_passes::monomorphize(&module);
    vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
    vgl_passes::optimize_cfg(&mut m, &cfg, &mut report);
    let fingerprint = vgl_passes::module_fingerprint(&m);
    let mut prog = vgl_vm::lower(&m);
    vgl_vm::fuse_jobs(&mut prog, jobs, cache);
    (vgl_vm::disasm(&prog), fingerprint)
}

fn example_sources() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/v");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("examples/v exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("v") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, std::fs::read_to_string(&path).expect("readable example")));
        }
    }
    out.sort();
    assert!(!out.is_empty(), "no example programs found in {dir}");
    out
}

fn det_cases() -> u64 {
    std::env::var("VGL_DET_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(300)
}

/// Every checked-in example compiles to byte-identical bytecode at
/// jobs = 1, 2, and 8.
#[test]
fn examples_identical_across_job_counts() {
    for (name, src) in example_sources() {
        let (d1, f1) = compile_with(&src, 1, true);
        for jobs in [2, 8] {
            let (dn, fn_) = compile_with(&src, jobs, true);
            assert_eq!(f1, fn_, "{name}: module fingerprint differs at jobs={jobs}");
            assert_eq!(d1, dn, "{name}: disassembly differs at jobs={jobs}");
        }
    }
}

/// Every checked-in example compiles identically with the instance cache
/// disabled, and a warm second run agrees with the cold first one.
#[test]
fn examples_identical_with_and_without_cache() {
    for (name, src) in example_sources() {
        let cold = compile_with(&src, 8, true);
        let warm = compile_with(&src, 8, true);
        let uncached = compile_with(&src, 8, false);
        assert_eq!(cold, warm, "{name}: warm re-run differs from cold run");
        assert_eq!(cold, uncached, "{name}: cache changed the output");
    }
}

/// Seed-pinned fuzz programs (default 300, `VGL_DET_CASES` overrides) agree
/// between jobs = 1 and jobs = 8.
#[test]
fn fuzz_programs_identical_serial_vs_parallel() {
    let cfg = GenConfig::default();
    for case in 0..det_cases() {
        let seed = 0xD473_0000 + case;
        let src = emit(&gen_program(seed, &cfg));
        let serial = compile_with(&src, 1, true);
        let parallel = compile_with(&src, 8, true);
        assert_eq!(
            serial, parallel,
            "seed {seed}: jobs=8 output differs from jobs=1 for:\n{src}"
        );
    }
}

/// A sample of the fuzz corpus also agrees with the cache switched off —
/// the cache is an accelerator, never a semantic knob.
#[test]
fn fuzz_programs_identical_cached_vs_uncached() {
    let cfg = GenConfig::default();
    let cases = (det_cases() / 4).max(25);
    for case in 0..cases {
        let seed = 0xCAC4_E000 + case;
        let src = emit(&gen_program(seed, &cfg));
        let cached = compile_with(&src, 8, true);
        let uncached = compile_with(&src, 8, false);
        assert_eq!(cached, uncached, "seed {seed}: cache changed the output for:\n{src}");
    }
}

/// The runtime profiler is observational: with hotness profiling enabled
/// (precise mode — the superset), every example produces byte-identical
/// output across job counts, and the profile itself is byte-identical both
/// across job counts and across repeated runs of the same program.
#[test]
fn profiled_execution_identical_across_job_counts() {
    let program_with = |src: &str, jobs: usize| {
        let mut diags = vgl_syntax::Diagnostics::new();
        let ast = vgl_syntax::parse_program(src, &mut diags);
        assert!(!diags.has_errors());
        let module = vgl_sema::analyze(&ast, &mut diags).expect("sema accepts example");
        let cfg = vgl_passes::BackendConfig { jobs, cache: true };
        let mut report = vgl_passes::BackendReport::default();
        let (mut m, _) = vgl_passes::monomorphize(&module);
        vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
        vgl_passes::optimize_cfg(&mut m, &cfg, &mut report);
        let mut prog = vgl_vm::lower(&m);
        vgl_vm::fuse_jobs(&mut prog, jobs, cfg.cache);
        prog
    };
    let profiled_run = |prog: &vgl_vm::VmProgram| {
        let mut vm = vgl_vm::Vm::with_heap(prog, 1 << 20);
        vm.enable_runtime_profiling_precise();
        let result = vm.run().expect("example runs");
        let profile = vm.take_runtime_profile().expect("enabled");
        (result, vm.output(), profile.to_json(prog).render())
    };
    for (name, src) in example_sources() {
        let serial = profiled_run(&program_with(&src, 1));
        let parallel = profiled_run(&program_with(&src, 8));
        let again = profiled_run(&program_with(&src, 8));
        assert_eq!(serial, parallel, "{name}: profiled run differs at jobs=8");
        assert_eq!(parallel, again, "{name}: profile is not deterministic run to run");
    }
}

/// A generic function instantiated at many phantom type arguments collapses
/// to one unique fingerprint in the cache, and the deduplicated build is
/// still byte-identical to the uncached one.
#[test]
fn instance_fanout_dedups_and_stays_identical() {
    let mut src = String::new();
    for i in 0..8 {
        src.push_str(&format!("class C{i} {{}}\n"));
    }
    src.push_str(
        "def work<T>(n: int) -> int {\n\
         \tvar s = 0;\n\
         \tfor (var i = 0; i < n; i = i + 1) { s = s + i * i; }\n\
         \treturn s;\n\
         }\n\
         def main() -> int {\n\
         \tvar t = 0;\n",
    );
    for i in 0..8 {
        src.push_str(&format!("\tt = t + work<C{i}>(4);\n"));
    }
    src.push_str("\treturn t;\n}\n");

    let mut diags = vgl_syntax::Diagnostics::new();
    let ast = vgl_syntax::parse_program(&src, &mut diags);
    assert!(!diags.has_errors(), "fan-out program should parse:\n{src}");
    let module = vgl_sema::analyze(&ast, &mut diags).expect("fan-out program analyzes");
    let cfg = vgl_passes::BackendConfig { jobs: 8, cache: true };
    let mut report = vgl_passes::BackendReport::default();
    let (mut m, _) = vgl_passes::monomorphize(&module);
    vgl_passes::normalize_cfg(&mut m, &cfg, &mut report);
    vgl_passes::optimize_cfg(&mut m, &cfg, &mut report);
    assert!(
        report.norm_cache.hits >= 7,
        "8 phantom instances of work<T> should dedup to 1; norm cache: {:?}",
        report.norm_cache
    );
    assert!(report.norm_cache.hit_rate() > 0.0);

    let cached = compile_with(&src, 8, true);
    let uncached = compile_with(&src, 1, false);
    assert_eq!(cached, uncached, "deduplicated build must match the cold serial build");
}
