//! Normalization: tuple flattening / scalar replacement (paper §4.2).
//!
//! "Normalization is the process by which the Virgil compiler converts all
//! uses of tuples into uses of scalars, regardless of where they occur,
//! including parameters, return values, local variables, array elements,
//! fields, and elements inside other tuples."
//!
//! This pass runs on a *monomorphic* module and rewrites it in place:
//!
//! * parameters, locals, fields, and globals of tuple type become multiple
//!   scalar slots; `void` slots disappear;
//! * arrays of tuples become **multiple arrays**, one per scalar element
//!   (the paper names both layouts; we use the struct-of-arrays one);
//!   `Array<void>` keeps a single dummy `int` column so lengths and bounds
//!   checks survive (the paper's native target stores only the length — our
//!   dummy column preserves the observable semantics);
//! * tuple equality/casts/queries expand element-wise;
//! * first-class tuple operators (`T.==` for tuple `T`, parameterized casts)
//!   become references to synthesized scalar wrapper methods;
//! * method calls pass scalars only — the §4.1 calling-convention ambiguity
//!   is *gone*, because every function takes and returns scalars.
//!
//! Two *boundary* forms remain, exactly as the paper describes for targets
//! without multi-value support: a method returning a tuple ends with
//! `Return (v0, ..., vn)` (lowered by the VM to multiple return registers),
//! and a multi-value call result is bound to one tuple-typed local whose only
//! uses are direct projections (lowered to consecutive registers). The
//! [`check_normalized`] validator enforces that nothing else survives.

use std::collections::HashMap;

use crate::cache::{self, DupMap};
use crate::{BackendConfig, BackendReport};
use vgl_ir::ops::Exception;
use vgl_ir::{
    Body, Expr, ExprKind, FieldRef, GlobalId, Local, LocalId, Method, MethodId, MethodKind,
    Module, Oper, Stmt,
};
use vgl_types::{ClassId, Type, TypeKind, TypeStore};

/// Statistics from normalization (experiments E1/E6 narrate these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NormStats {
    /// Tuple constructions eliminated from expression positions.
    pub tuple_exprs_removed: usize,
    /// Extra parameters introduced by flattening.
    pub params_expanded: usize,
    /// Fields expanded into multiple scalar fields.
    pub fields_expanded: usize,
    /// Globals expanded.
    pub globals_expanded: usize,
    /// Methods that now return multiple values.
    pub multi_return_methods: usize,
    /// Synthesized operator wrapper methods.
    pub wrappers_synthesized: usize,
}

/// Runs normalization in place (serially, instance cache on — equivalent
/// to [`normalize_cfg`] with the default [`BackendConfig`]).
pub fn normalize(module: &mut Module) -> NormStats {
    normalize_cfg(module, &BackendConfig::default(), &mut BackendReport::default())
}

/// [`normalize`] with the per-instance cache configurable.
///
/// Normalization itself stays serial — wrapper synthesis and the type map
/// are order-sensitive shared state, and the pass is cheap next to
/// optimize — but duplicate post-mono instances skip `flatten_method`
/// entirely and copy their representative's flattened signature and body.
/// This is output-identical to the uncached run: flattening is a pure
/// function of the method's content plus module-level maps built up front,
/// and wrapper ids are memoized by operator with reps preceding their dups,
/// so the id assignment order is unchanged. Statistics count performed
/// work; skips are reported in `report.norm_cache`. (`cfg.jobs` only
/// parallelizes the fingerprinting.)
pub fn normalize_cfg(
    module: &mut Module,
    cfg: &BackendConfig,
    report: &mut BackendReport,
) -> NormStats {
    let dup = if cfg.cache {
        // Prefer the map mono's streamed hashing already built (identical
        // to `dup_groups` on this module by construction); fall back to
        // fingerprinting here when mono ran without streaming or the
        // module was produced some other way.
        match report.dup_map.take() {
            Some(dup) if dup.rep.len() == module.methods.len() => dup,
            _ => {
                let (dup, workers) = cache::dup_groups(module, cfg.jobs);
                report.workers.extend(workers);
                dup
            }
        }
    } else {
        DupMap::identity(module.methods.len())
    };
    report.norm_cache.merge(&dup.stats);
    let mut n = Norm::new(module);
    n.dup = dup;
    n.run();
    if cfg.cache {
        // The grouping survives the pass verbatim (dups are copies of their
        // reps again); let optimize reuse it instead of re-fingerprinting.
        report.dup_map = Some(std::mem::take(&mut n.dup));
    }
    n.stats
}

struct Norm<'m> {
    module: &'m mut Module,
    stats: NormStats,
    /// Memoized type normalization.
    type_map: HashMap<Type, Type>,
    /// (class, old absolute slot) → (new absolute base slot, width).
    field_map: HashMap<(ClassId, usize), (usize, usize)>,
    /// old global → new globals (one per scalar piece).
    global_map: HashMap<GlobalId, Vec<GlobalId>>,
    /// Synthesized wrapper methods for first-class tuple operators.
    wrapper_map: HashMap<Oper, MethodId>,
    /// Synthesized methods awaiting append at their reserved ids.
    pending_wrappers: Vec<Method>,
    /// Pre-normalization parameter/return info per method (old types).
    old_rets: Vec<Type>,
    /// Old global initializers stashed during layout flattening.
    old_global_inits: Vec<(Option<Expr>, Vec<Local>)>,
    /// Duplicate-instance map: dups skip `flatten_method` and copy their
    /// representative's result.
    dup: DupMap,
}

impl<'m> Norm<'m> {
    fn new(module: &'m mut Module) -> Norm<'m> {
        let module_len = module.methods.len();
        let old_rets = module.methods.iter().map(|m| m.ret).collect();
        Norm {
            module,
            stats: NormStats::default(),
            type_map: HashMap::new(),
            field_map: HashMap::new(),
            global_map: HashMap::new(),
            wrapper_map: HashMap::new(),
            pending_wrappers: Vec::new(),
            old_rets,
            old_global_inits: Vec::new(),
            dup: DupMap::identity(module_len),
        }
    }

    fn run(&mut self) {
        self.flatten_fields();
        self.flatten_globals();
        let method_count = self.module.methods.len();
        for i in 0..method_count {
            if self.dup.is_dup(i) {
                continue;
            }
            self.flatten_method(MethodId(i as u32));
        }
        // Duplicates copy their representative's flattened result (reps
        // always precede their dups), keeping their own name.
        for i in 0..method_count {
            let r = self.dup.rep[i];
            if r == i {
                continue;
            }
            let src = &self.module.methods[r];
            let (param_count, locals, ret, body) =
                (src.param_count, src.locals.clone(), src.ret, src.body.clone());
            let dst = &mut self.module.methods[i];
            dst.param_count = param_count;
            dst.locals = locals;
            dst.ret = ret;
            dst.body = body;
        }
        self.rebuild_global_inits();
        // Append all synthesized methods (wrappers, ginit helpers) at the
        // ids they were reserved under.
        let pending = std::mem::take(&mut self.pending_wrappers);
        self.stats.wrappers_synthesized = self.wrapper_map.len();
        self.module.methods.extend(pending);
    }

    /// Reserves the next method id for a synthesized method.
    fn reserve_method(&mut self, m: Method) -> MethodId {
        let id = MethodId((self.module.methods.len() + self.pending_wrappers.len()) as u32);
        self.pending_wrappers.push(m);
        id
    }

    // ---- type normalization -------------------------------------------------

    fn norm_type(&mut self, t: Type) -> Type {
        if let Some(&n) = self.type_map.get(&t) {
            return n;
        }
        let store = &mut self.module.store;
        let n = match store.kind(t).clone() {
            TypeKind::Void
            | TypeKind::Bool
            | TypeKind::Byte
            | TypeKind::Int
            | TypeKind::Null
            | TypeKind::Class(..)
            | TypeKind::Error => t,
            TypeKind::Tuple(es) => {
                let mut flat = Vec::new();
                for e in es {
                    let ne = self.norm_type(e);
                    let pieces = self.module.store.flatten(ne);
                    flat.extend(pieces);
                }
                self.module.store.tuple(flat)
            }
            TypeKind::Array(e) => {
                let ne = self.norm_type(e);
                let pieces = self.module.store.flatten(ne);
                match pieces.len() {
                    0 => {
                        // Array<void>: dummy int column keeps the length.
                        let int = self.module.store.int;
                        self.module.store.array(int)
                    }
                    1 => self.module.store.array(pieces[0]),
                    _ => {
                        let cols: Vec<Type> = pieces
                            .iter()
                            .map(|&p| self.module.store.array(p))
                            .collect();
                        self.module.store.tuple(cols)
                    }
                }
            }
            TypeKind::Function(p, r) => {
                let np = self.norm_type(p);
                let nr = self.norm_type(r);
                self.module.store.function(np, nr)
            }
            TypeKind::Var(_) => unreachable!("normalize requires a monomorphic module"),
        };
        self.type_map.insert(t, n);
        n
    }

    /// The scalar pieces representing `t` after normalization.
    fn pieces_of(&mut self, t: Type) -> Vec<Type> {
        let n = self.norm_type(t);
        self.module.store.flatten(n)
    }

    fn width(&mut self, t: Type) -> usize {
        self.pieces_of(t).len()
    }

    // ---- layout flattening -----------------------------------------------------

    fn flatten_fields(&mut self) {
        // Topological order (parents first) so base slots accumulate.
        let mut order: Vec<usize> = (0..self.module.classes.len()).collect();
        order.sort_by_key(|&i| self.module.hier.depth(ClassId(i as u32)));
        for i in order {
            let cid = ClassId(i as u32);
            let parent_size = match self.module.classes[i].parent {
                Some(p) => self.module.object_size(p),
                None => 0,
            };
            let old_fields = self.module.classes[i].fields.clone();
            let mut new_fields = Vec::new();
            let mut next = parent_size;
            for f in &old_fields {
                let pieces = self.pieces_of(f.ty);
                self.field_map.insert((cid, f.slot), (next, pieces.len()));
                if pieces.len() != 1 {
                    self.stats.fields_expanded += 1;
                }
                for (j, &p) in pieces.iter().enumerate() {
                    let name = if pieces.len() == 1 {
                        f.name.clone()
                    } else {
                        format!("{}.{j}", f.name)
                    };
                    new_fields.push(vgl_ir::Field {
                        name,
                        mutable: f.mutable,
                        ty: p,
                        slot: next,
                        init: None,
                    });
                    next += 1;
                }
            }
            let class = &mut self.module.classes[i];
            class.first_field_slot = parent_size;
            class.fields = new_fields;
        }
    }

    fn flatten_globals(&mut self) {
        let old = std::mem::take(&mut self.module.globals);
        let mut new_globals = Vec::new();
        for (i, g) in old.iter().enumerate() {
            let pieces = self.pieces_of(g.ty);
            if pieces.len() != 1 {
                self.stats.globals_expanded += 1;
            }
            let mut ids = Vec::new();
            if pieces.is_empty() {
                // A void global still needs a slot if it has an initializer
                // with effects; keep a unit placeholder.
                let id = GlobalId(new_globals.len() as u32);
                ids.push(id);
                new_globals.push(vgl_ir::Global {
                    name: g.name.clone(),
                    mutable: g.mutable,
                    ty: self.module.store.void,
                    init: None,
                    locals: Vec::new(),
                });
            } else {
                for (j, &p) in pieces.iter().enumerate() {
                    let id = GlobalId(new_globals.len() as u32);
                    ids.push(id);
                    let name = if pieces.len() == 1 {
                        g.name.clone()
                    } else {
                        format!("{}.{j}", g.name)
                    };
                    new_globals.push(vgl_ir::Global {
                        name,
                        mutable: g.mutable,
                        ty: p,
                        init: None,
                        locals: Vec::new(),
                    });
                }
            }
            self.global_map.insert(GlobalId(i as u32), ids);
        }
        self.module.globals = new_globals;
        // Initializers are rebuilt in `rebuild_global_inits` (they need the
        // old init expressions, stashed by the caller before replacement).
        self.old_global_inits = old
            .into_iter()
            .map(|g| (g.init, g.locals))
            .collect();
    }

    fn rebuild_global_inits(&mut self) {
        let olds = std::mem::take(&mut self.old_global_inits);
        for (i, (init, locals)) in olds.into_iter().enumerate() {
            let Some(init) = init else { continue };
            let ids = self.global_map[&GlobalId(i as u32)].clone();
            // Build a flattening context over the stashed locals.
            let mut fx = self.method_ctx(&locals, 0);
            let mut out = Vec::new();
            let pieces = self.flat(&init, &mut fx, &mut out);
            // Assign pieces to the new globals via GlobalSet statements,
            // then pack everything into a synthesized init expression on the
            // first global: a Let-chain is enough because all effects are in
            // `out` statements... which an expression cannot hold. Instead,
            // synthesize a component method when there is anything nontrivial.
            let void = self.module.store.void;
            if out.is_empty() && pieces.len() == 1 && ids.len() == 1 {
                self.module.globals[ids[0].index()].init = Some(pieces[0].clone());
                self.module.globals[ids[0].index()].locals = fx.new_locals;
                continue;
            }
            // Synthesized `<ginit>` method: run stmts, set trailing pieces,
            // return the first piece (assigned to the first global).
            let mut stmts = out;
            debug_assert_eq!(pieces.len(), ids.len().min(pieces.len()));
            for (k, piece) in pieces.iter().enumerate().skip(1) {
                let gid = ids[k];
                stmts.push(Stmt::Expr(Expr::new(
                    ExprKind::GlobalSet(gid, Box::new(piece.clone())),
                    piece.ty,
                )));
            }
            let (ret, ret_expr) = match pieces.first() {
                Some(p) => (p.ty, Some(p.clone())),
                None => (void, None),
            };
            stmts.push(Stmt::Return(ret_expr));
            let name = format!("<ginit:{}>", self.module.globals[ids[0].index()].name);
            let mid = self.reserve_method(Method {
                name,
                owner: None,
                is_private: true,
                kind: MethodKind::Normal,
                type_params: vec![],
                param_count: 0,
                locals: fx.new_locals,
                ret,
                body: Some(Body { stmts }),
                vtable_index: None,
            });
            self.module.globals[ids[0].index()].init = Some(Expr::new(
                ExprKind::CallStatic { method: mid, type_args: vec![], args: vec![] },
                ret,
            ));
        }
    }

    // ---- method flattening ---------------------------------------------------------

    fn method_ctx(&mut self, old_locals: &[Local], param_count: usize) -> Fx {
        let mut fx = Fx {
            local_map: Vec::with_capacity(old_locals.len()),
            new_locals: Vec::new(),
            new_param_count: 0,
        };
        for (i, l) in old_locals.iter().enumerate() {
            let pieces = self.pieces_of(l.ty);
            let mut ids = Vec::with_capacity(pieces.len());
            for (j, &p) in pieces.iter().enumerate() {
                let id = LocalId(fx.new_locals.len() as u32);
                let name = if pieces.len() == 1 {
                    l.name.clone()
                } else {
                    format!("{}.{j}", l.name)
                };
                fx.new_locals.push(Local { name, ty: p, mutable: l.mutable });
                ids.push(id);
            }
            fx.local_map.push(ids);
            if i < param_count {
                fx.new_param_count = fx.new_locals.len();
            }
        }
        fx
    }

    fn flatten_method(&mut self, mid: MethodId) {
        let m = self.module.methods[mid.index()].clone();
        let mut fx = self.method_ctx(&m.locals, m.param_count);
        if fx.new_param_count > m.param_count {
            self.stats.params_expanded += fx.new_param_count - m.param_count;
        }
        let new_ret_pieces = self.pieces_of(m.ret);
        let new_ret = self.module.store.tuple(new_ret_pieces.clone());
        if new_ret_pieces.len() > 1 {
            self.stats.multi_return_methods += 1;
        }
        let new_body = m.body.as_ref().map(|b| Body {
            stmts: self.flat_block(&b.stmts, &mut fx),
        });
        let method = &mut self.module.methods[mid.index()];
        method.param_count = fx.new_param_count;
        method.locals = fx.new_locals;
        method.ret = new_ret;
        method.body = new_body;
    }

    fn flat_block(&mut self, stmts: &[Stmt], fx: &mut Fx) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in stmts {
            self.flat_stmt(s, fx, &mut out);
        }
        out
    }

    fn flat_stmt(&mut self, s: &Stmt, fx: &mut Fx, out: &mut Vec<Stmt>) {
        match s {
            Stmt::Expr(e) => {
                let pieces = self.flat(e, fx, out);
                // Pure pieces are discarded; effects already in `out`.
                drop(pieces);
            }
            Stmt::Local(l, init) => {
                let ids = fx.local_map[l.index()].clone();
                match init {
                    Some(e) => {
                        let pieces = self.flat(e, fx, out);
                        debug_assert_eq!(pieces.len(), ids.len());
                        for (id, p) in ids.iter().zip(pieces) {
                            out.push(Stmt::Local(*id, Some(p)));
                        }
                    }
                    None => {
                        for id in ids {
                            out.push(Stmt::Local(id, None));
                        }
                    }
                }
            }
            Stmt::If(c, t, e) => {
                let cp = self.flat_scalar(c, fx, out);
                let tb = self.flat_block(t, fx);
                let eb = self.flat_block(e, fx);
                out.push(Stmt::If(cp, tb, eb));
            }
            Stmt::While(c, body) => {
                // Condition effects must re-run each iteration.
                let mut cond_stmts = Vec::new();
                let cp = self.flat_scalar(c, fx, &mut cond_stmts);
                let bb = self.flat_block(body, fx);
                if cond_stmts.is_empty() {
                    out.push(Stmt::While(cp, bb));
                } else {
                    let bool_ = self.module.store.bool_;
                    let mut inner = cond_stmts;
                    let not = Expr::new(
                        ExprKind::Apply(Oper::BoolNot, vec![cp]),
                        bool_,
                    );
                    inner.push(Stmt::If(not, vec![Stmt::Break], vec![]));
                    inner.extend(bb);
                    out.push(Stmt::While(Expr::new(ExprKind::Bool(true), bool_), inner));
                }
            }
            Stmt::Return(e) => {
                match e {
                    None => out.push(Stmt::Return(None)),
                    Some(e) => {
                        let mut pieces = self.flat(e, fx, out);
                        match pieces.len() {
                            0 => out.push(Stmt::Return(None)),
                            1 => out.push(Stmt::Return(Some(pieces.pop().expect("one")))),
                            _ => {
                                // Boundary multi-value return.
                                let tys: Vec<Type> = pieces.iter().map(|p| p.ty).collect();
                                let ty = self.module.store.tuple(tys);
                                out.push(Stmt::Return(Some(Expr::new(
                                    ExprKind::Tuple(pieces),
                                    ty,
                                ))));
                            }
                        }
                    }
                }
            }
            Stmt::Break => out.push(Stmt::Break),
            Stmt::Continue => out.push(Stmt::Continue),
            Stmt::Block(b) => {
                let bb = self.flat_block(b, fx);
                out.push(Stmt::Block(bb));
            }
        }
    }

    /// Flattens an expression expected to be scalar (width 1).
    fn flat_scalar(&mut self, e: &Expr, fx: &mut Fx, out: &mut Vec<Stmt>) -> Expr {
        let mut pieces = self.flat(e, fx, out);
        debug_assert_eq!(pieces.len(), 1, "expected scalar for {:?}", e.kind);
        pieces.pop().expect("one piece")
    }

    /// Forces every non-constant piece into a fresh temp *now*, so that
    /// subsequent stores cannot clobber locals/globals the pieces still read
    /// (tuple assignment is simultaneous: `p = (0, p.0)` must read the old
    /// `p.0`).
    fn materialize(&mut self, pieces: Vec<Expr>, fx: &mut Fx, out: &mut Vec<Stmt>) -> Vec<Expr> {
        pieces
            .into_iter()
            .map(|p| {
                if matches!(
                    p.kind,
                    ExprKind::Int(_) | ExprKind::Byte(_) | ExprKind::Bool(_) | ExprKind::Null
                ) {
                    return p;
                }
                let ty = p.ty;
                let id = self.fresh_local(fx, ty);
                out.push(Stmt::Local(id, Some(p)));
                Expr::new(ExprKind::Local(id), ty)
            })
            .collect()
    }

    /// Spills an expression to a fresh temp, returning the read.
    fn spill(&mut self, e: Expr, fx: &mut Fx, out: &mut Vec<Stmt>) -> Expr {
        if is_pure_scalar(&e) {
            return e;
        }
        let id = LocalId(fx.new_locals.len() as u32);
        fx.new_locals.push(Local {
            name: format!("$n{}", id.0),
            ty: e.ty,
            mutable: true,
        });
        let ty = e.ty;
        out.push(Stmt::Local(id, Some(e)));
        Expr::new(ExprKind::Local(id), ty)
    }

    /// The workhorse: flattens `e` into effect-free scalar pieces, emitting
    /// effects into `out` in evaluation order.
    fn flat(&mut self, e: &Expr, fx: &mut Fx, out: &mut Vec<Stmt>) -> Vec<Expr> {
        use ExprKind::*;
        let nty = self.norm_type(e.ty);
        match &e.kind {
            Int(_) | Byte(_) | Bool(_) | Null => vec![Expr::new(e.kind.clone(), nty)],
            Unit => vec![],
            Trap(x) => {
                // Emit the trap as a statement; produce default pieces (the
                // trap fires first, so they are never observed).
                let void = self.module.store.void;
                out.push(Stmt::Expr(Expr::new(Trap(*x), void)));
                let pieces = self.pieces_of(e.ty);
                pieces
                    .into_iter()
                    .map(|p| self.zero_piece(p))
                    .collect()
            }
            String(bytes) => {
                let s = Expr::new(String(bytes.clone()), nty);
                vec![self.spill(s, fx, out)]
            }
            Local(l) => {
                let ids = fx.local_map[l.index()].clone();
                ids.into_iter()
                    .map(|id| {
                        let ty = fx.new_locals[id.index()].ty;
                        Expr::new(Local(id), ty)
                    })
                    .collect()
            }
            Global(g) => {
                let ids = self.global_map[g].clone();
                let pieces = self.pieces_of(e.ty);
                if pieces.is_empty() {
                    return vec![];
                }
                ids.into_iter()
                    .zip(pieces)
                    .map(|(id, ty)| Expr::new(Global(id), ty))
                    .collect()
            }
            LocalSet(l, v) => {
                let pieces = self.flat(v, fx, out);
                let pieces = self.materialize(pieces, fx, out);
                let ids = fx.local_map[l.index()].clone();
                debug_assert_eq!(pieces.len(), ids.len());
                for (id, p) in ids.iter().zip(pieces) {
                    let ty = p.ty;
                    out.push(Stmt::Expr(Expr::new(LocalSet(*id, Box::new(p)), ty)));
                }
                ids.into_iter()
                    .map(|id| {
                        let ty = fx.new_locals[id.index()].ty;
                        Expr::new(Local(id), ty)
                    })
                    .collect()
            }
            GlobalSet(g, v) => {
                let pieces = self.flat(v, fx, out);
                let pieces = self.materialize(pieces, fx, out);
                let ids = self.global_map[g].clone();
                for (id, p) in ids.iter().zip(pieces.iter()) {
                    let ty = p.ty;
                    out.push(Stmt::Expr(Expr::new(
                        GlobalSet(*id, Box::new(p.clone())),
                        ty,
                    )));
                }
                ids.iter()
                    .zip(pieces)
                    .map(|(id, p)| Expr::new(Global(*id), p.ty))
                    .collect()
            }
            Tuple(es) => {
                self.stats.tuple_exprs_removed += 1;
                let mut pieces = Vec::new();
                for x in es {
                    pieces.extend(self.flat(x, fx, out));
                }
                pieces
            }
            TupleIndex(b, i) => {
                // Width arithmetic over the *old* element types.
                let elem_tys = match self.module.store.kind(b.ty).clone() {
                    TypeKind::Tuple(ts) => ts,
                    _ => vec![b.ty], // degenerate (T).0
                };
                let pieces = self.flat(b, fx, out);
                let mut start = 0;
                for t in elem_tys.iter().take(*i as usize) {
                    start += self.width(*t);
                }
                let w = self.width(elem_tys[*i as usize]);
                pieces[start..start + w].to_vec()
            }
            ArrayLit(es) => {
                let elem_old = match self.module.store.kind(e.ty).clone() {
                    TypeKind::Array(t) => t,
                    _ => unreachable!("array literal has array type"),
                };
                let col_tys = self.pieces_of(elem_old);
                let mut cols: Vec<Vec<Expr>> = vec![Vec::new(); col_tys.len().max(1)];
                for x in es {
                    let pieces = self.flat(x, fx, out);
                    if col_tys.is_empty() {
                        // Array<void>: dummy zero per element.
                        cols[0].push(Expr::new(Int(0), self.module.store.int));
                    } else {
                        for (c, p) in pieces.into_iter().enumerate() {
                            cols[c].push(p);
                        }
                    }
                }
                if col_tys.is_empty() {
                    let int = self.module.store.int;
                    let arr = self.module.store.array(int);
                    let lit = Expr::new(ArrayLit(cols.remove(0)), arr);
                    return vec![self.spill(lit, fx, out)];
                }
                col_tys
                    .iter()
                    .zip(cols)
                    .map(|(&ct, col)| {
                        let arr = self.module.store.array(ct);
                        let lit = Expr::new(ArrayLit(col), arr);
                        self.spill(lit, fx, out)
                    })
                    .collect()
            }
            ArrayNew(n) => {
                let elem_old = match self.module.store.kind(e.ty).clone() {
                    TypeKind::Array(t) => t,
                    _ => unreachable!("array new has array type"),
                };
                let col_tys = self.pieces_of(elem_old);
                let len = self.flat_scalar(n, fx, out);
                let len = self.spill(len, fx, out);
                if col_tys.is_empty() {
                    let int = self.module.store.int;
                    let arr = self.module.store.array(int);
                    let nw = Expr::new(ArrayNew(Box::new(len)), arr);
                    return vec![self.spill(nw, fx, out)];
                }
                col_tys
                    .iter()
                    .map(|&ct| {
                        let arr = self.module.store.array(ct);
                        let nw = Expr::new(ArrayNew(Box::new(len.clone())), arr);
                        self.spill(nw, fx, out)
                    })
                    .collect()
            }
            ArrayLen(a) => {
                let pieces = self.flat(a, fx, out);
                let int = self.module.store.int;
                let first = pieces.into_iter().next().expect("array has >=1 column");
                vec![self.spill(Expr::new(ArrayLen(Box::new(first)), int), fx, out)]
            }
            ArrayGet(a, i) => {
                let cols = self.flat(a, fx, out);
                let ix = self.flat_scalar(i, fx, out);
                let ix = self.spill(ix, fx, out);
                let elem_old = match self.module.store.kind(a.ty).clone() {
                    TypeKind::Array(t) => t,
                    _ => unreachable!("array get on array"),
                };
                let piece_tys = self.pieces_of(elem_old);
                if piece_tys.is_empty() {
                    // Bounds check against the dummy column, discard.
                    let int = self.module.store.int;
                    let chk = Expr::new(
                        ArrayGet(Box::new(cols[0].clone()), Box::new(ix)),
                        int,
                    );
                    out.push(Stmt::Expr(chk));
                    return vec![];
                }
                cols.iter()
                    .zip(piece_tys)
                    .map(|(col, ty)| {
                        let g = Expr::new(
                            ArrayGet(Box::new(col.clone()), Box::new(ix.clone())),
                            ty,
                        );
                        self.spill(g, fx, out)
                    })
                    .collect()
            }
            ArraySet(a, i, v) => {
                let cols = self.flat(a, fx, out);
                let ix = self.flat_scalar(i, fx, out);
                let ix = self.spill(ix, fx, out);
                let pieces = self.flat(v, fx, out);
                if pieces.is_empty() {
                    let int = self.module.store.int;
                    // Bounds-checked dummy store.
                    let st = Expr::new(
                        ArraySet(
                            Box::new(cols[0].clone()),
                            Box::new(ix),
                            Box::new(Expr::new(Int(0), int)),
                        ),
                        int,
                    );
                    out.push(Stmt::Expr(st));
                    return vec![];
                }
                let mut reads = Vec::new();
                for (col, p) in cols.iter().zip(pieces) {
                    let ty = p.ty;
                    let spilled = self.spill(p, fx, out);
                    reads.push(spilled.clone());
                    out.push(Stmt::Expr(Expr::new(
                        ArraySet(
                            Box::new(col.clone()),
                            Box::new(ix.clone()),
                            Box::new(spilled),
                        ),
                        ty,
                    )));
                }
                reads
            }
            FieldGet(o, fref) => {
                let obj = self.flat_scalar(o, fx, out);
                let obj = self.spill(obj, fx, out);
                let (base, w) = self.field_map[&(fref.class, fref.slot)];
                let piece_tys: Vec<Type> = (0..w)
                    .map(|j| {
                        let cl = &self.module.classes[fref.class.index()];
                        cl.fields
                            .iter()
                            .find(|f| f.slot == base + j)
                            .map(|f| f.ty)
                            .expect("flattened field exists")
                    })
                    .collect();
                if w == 0 {
                    // A void field: still null-check (paper: "accesses to
                    // fields of type void are replaced with null checks").
                    self.emit_null_check(obj, out);
                    return vec![];
                }
                (0..w)
                    .map(|j| {
                        let g = Expr::new(
                            FieldGet(
                                Box::new(obj.clone()),
                                FieldRef { class: fref.class, slot: base + j },
                            ),
                            piece_tys[j],
                        );
                        self.spill(g, fx, out)
                    })
                    .collect()
            }
            FieldSet(o, fref, v) => {
                let obj = self.flat_scalar(o, fx, out);
                let obj = self.spill(obj, fx, out);
                let (base, w) = self.field_map[&(fref.class, fref.slot)];
                let pieces = self.flat(v, fx, out);
                debug_assert_eq!(pieces.len(), w);
                if w == 0 {
                    self.emit_null_check(obj, out);
                    return vec![];
                }
                let mut reads = Vec::new();
                for (j, p) in pieces.into_iter().enumerate() {
                    let ty = p.ty;
                    let spilled = self.spill(p, fx, out);
                    reads.push(spilled.clone());
                    out.push(Stmt::Expr(Expr::new(
                        FieldSet(
                            Box::new(obj.clone()),
                            FieldRef { class: fref.class, slot: base + j },
                            Box::new(spilled),
                        ),
                        ty,
                    )));
                }
                reads
            }
            New { class, args, .. } => {
                let flat_args = self.flat_args(args, fx, out);
                let nw = Expr::new(
                    New { class: *class, type_args: vec![], args: flat_args },
                    nty,
                );
                vec![self.spill(nw, fx, out)]
            }
            CallStatic { method, args, .. } => {
                let flat_args = self.flat_args(args, fx, out);
                let call = Expr::new(
                    CallStatic { method: *method, type_args: vec![], args: flat_args },
                    self.call_result_type(*method),
                );
                self.distribute_call(call, e.ty, fx, out)
            }
            CallVirtual { method, recv, args, .. } => {
                let r = self.flat_scalar(recv, fx, out);
                let r = self.spill(r, fx, out);
                let flat_args = self.flat_args(args, fx, out);
                let call = Expr::new(
                    CallVirtual {
                        method: *method,
                        type_args: vec![],
                        recv: Box::new(r),
                        args: flat_args,
                    },
                    self.call_result_type(*method),
                );
                self.distribute_call(call, e.ty, fx, out)
            }
            CallClosure { func, args } => {
                let f = self.flat_scalar(func, fx, out);
                let f = self.spill(f, fx, out);
                let flat_args = self.flat_args(args, fx, out);
                let ret = self.norm_type(e.ty);
                let ret_flat = {
                    let pieces = self.module.store.flatten(ret);
                    self.module.store.tuple(pieces)
                };
                let call = Expr::new(
                    CallClosure { func: Box::new(f), args: flat_args },
                    ret_flat,
                );
                self.distribute_call(call, e.ty, fx, out)
            }
            CallBuiltin(b, args) => {
                let flat_args = self.flat_args(args, fx, out);
                let call = Expr::new(CallBuiltin(*b, flat_args), nty);
                self.distribute_call(call, e.ty, fx, out)
            }
            BindMethod { method, recv, .. } => {
                let r = self.flat_scalar(recv, fx, out);
                let bind = Expr::new(
                    BindMethod { method: *method, type_args: vec![], recv: Box::new(r) },
                    nty,
                );
                vec![self.spill(bind, fx, out)]
            }
            FuncRef { method, .. } => {
                vec![Expr::new(FuncRef { method: *method, type_args: vec![] }, nty)]
            }
            CtorRef { class, .. } => {
                vec![Expr::new(CtorRef { class: *class, type_args: vec![] }, nty)]
            }
            ArrayNewRef { elem } => {
                // After SoA splitting, a multi-column array constructor needs
                // a wrapper function.
                let cols = self.pieces_of(*elem);
                if cols.len() == 1 {
                    let ne = self.norm_type(*elem);
                    return vec![Expr::new(ArrayNewRef { elem: ne }, nty)];
                }
                let w = self.array_ctor_wrapper(*elem);
                vec![Expr::new(FuncRef { method: w, type_args: vec![] }, nty)]
            }
            BuiltinRef(b) => vec![Expr::new(BuiltinRef(*b), nty)],
            Apply(op, args) => self.flat_apply(*op, args, e.ty, fx, out),
            OpClosure(op) => {
                let nop = self.norm_oper(*op);
                if self.oper_needs_wrapper(nop) {
                    let w = self.oper_wrapper(nop);
                    vec![Expr::new(FuncRef { method: w, type_args: vec![] }, nty)]
                } else {
                    vec![Expr::new(OpClosure(nop), nty)]
                }
            }
            And(a, b) => {
                let ap = self.flat_scalar(a, fx, out);
                let mut b_stmts = Vec::new();
                let bp = self.flat_scalar(b, fx, &mut b_stmts);
                let bool_ = self.module.store.bool_;
                if b_stmts.is_empty() && is_pure_scalar(&bp) {
                    return vec![Expr::new(And(Box::new(ap), Box::new(bp)), bool_)];
                }
                // t = a; if (t) { b_stmts; t = b' }
                let t = self.fresh_local(fx, bool_);
                out.push(Stmt::Local(t, Some(ap)));
                let mut then = b_stmts;
                then.push(Stmt::Expr(Expr::new(LocalSet(t, Box::new(bp)), bool_)));
                out.push(Stmt::If(
                    Expr::new(Local(t), bool_),
                    then,
                    vec![],
                ));
                vec![Expr::new(Local(t), bool_)]
            }
            Or(a, b) => {
                let ap = self.flat_scalar(a, fx, out);
                let mut b_stmts = Vec::new();
                let bp = self.flat_scalar(b, fx, &mut b_stmts);
                let bool_ = self.module.store.bool_;
                if b_stmts.is_empty() && is_pure_scalar(&bp) {
                    return vec![Expr::new(Or(Box::new(ap), Box::new(bp)), bool_)];
                }
                let t = self.fresh_local(fx, bool_);
                out.push(Stmt::Local(t, Some(ap)));
                let mut els = b_stmts;
                els.push(Stmt::Expr(Expr::new(LocalSet(t, Box::new(bp)), bool_)));
                out.push(Stmt::If(
                    Expr::new(Local(t), bool_),
                    vec![],
                    els,
                ));
                vec![Expr::new(Local(t), bool_)]
            }
            Ternary { cond, then, els } => {
                let cp = self.flat_scalar(cond, fx, out);
                let mut t_stmts = Vec::new();
                let t_pieces = self.flat(then, fx, &mut t_stmts);
                let mut e_stmts = Vec::new();
                let e_pieces = self.flat(els, fx, &mut e_stmts);
                if t_stmts.is_empty()
                    && e_stmts.is_empty()
                    && t_pieces.len() == 1
                    && is_pure_scalar(&t_pieces[0])
                    && is_pure_scalar(&e_pieces[0])
                {
                    let ty = t_pieces[0].ty;
                    return vec![Expr::new(
                        Ternary {
                            cond: Box::new(cp),
                            then: Box::new(t_pieces.into_iter().next().expect("one")),
                            els: Box::new(e_pieces.into_iter().next().expect("one")),
                        },
                        ty,
                    )];
                }
                // Temps per piece, assigned in an If.
                let tys: Vec<Type> = t_pieces.iter().map(|p| p.ty).collect();
                let temps: Vec<LocalId> =
                    tys.iter().map(|&t| self.fresh_local(fx, t)).collect();
                for &t in &temps {
                    out.push(Stmt::Local(t, None));
                }
                let mut tb = t_stmts;
                for (t, p) in temps.iter().zip(t_pieces) {
                    let ty = p.ty;
                    tb.push(Stmt::Expr(Expr::new(LocalSet(*t, Box::new(p)), ty)));
                }
                let mut eb = e_stmts;
                for (t, p) in temps.iter().zip(e_pieces) {
                    let ty = p.ty;
                    eb.push(Stmt::Expr(Expr::new(LocalSet(*t, Box::new(p)), ty)));
                }
                out.push(Stmt::If(cp, tb, eb));
                temps
                    .into_iter()
                    .zip(tys)
                    .map(|(t, ty)| Expr::new(Local(t), ty))
                    .collect()
            }
            CheckNull(v) => {
                let p = self.flat_scalar(v, fx, out);
                let c = Expr::new(CheckNull(Box::new(p)), nty);
                vec![self.spill(c, fx, out)]
            }
            Let { local, value, body } => {
                let pieces = self.flat(value, fx, out);
                let ids = fx.local_map[local.index()].clone();
                debug_assert_eq!(pieces.len(), ids.len());
                for (id, p) in ids.iter().zip(pieces) {
                    out.push(Stmt::Local(*id, Some(p)));
                }
                self.flat(body, fx, out)
            }
        }
    }

    fn fresh_local(&mut self, fx: &mut Fx, ty: Type) -> LocalId {
        let id = LocalId(fx.new_locals.len() as u32);
        fx.new_locals.push(Local { name: format!("$n{}", id.0), ty, mutable: true });
        id
    }

    fn zero_piece(&mut self, ty: Type) -> Expr {
        let store = &self.module.store;
        let kind = store.kind(ty).clone();
        let k = match kind {
            TypeKind::Bool => ExprKind::Bool(false),
            TypeKind::Byte => ExprKind::Byte(0),
            TypeKind::Int => ExprKind::Int(0),
            _ => ExprKind::Null,
        };
        Expr::new(k, ty)
    }

    fn flat_args(&mut self, args: &[Expr], fx: &mut Fx, out: &mut Vec<Stmt>) -> Vec<Expr> {
        let mut flat = Vec::new();
        for a in args {
            flat.extend(self.flat(a, fx, out));
        }
        flat
    }

    /// The flattened return type of a method (flat tuple of scalars).
    fn call_result_type(&mut self, m: MethodId) -> Type {
        let ret = self.old_rets.get(m.index()).copied().unwrap_or_else(|| {
            self.module.methods[m.index()].ret
        });
        let pieces = self.pieces_of(ret);
        self.module.store.tuple(pieces)
    }

    /// Turns a (possibly multi-valued) call into scalar pieces: zero-width
    /// results become statements, one-width results spill to a scalar temp,
    /// wider results bind to a boundary tuple-typed temp with projections.
    fn distribute_call(
        &mut self,
        call: Expr,
        old_ret: Type,
        fx: &mut Fx,
        out: &mut Vec<Stmt>,
    ) -> Vec<Expr> {
        let piece_tys = self.pieces_of(old_ret);
        match piece_tys.len() {
            0 => {
                out.push(Stmt::Expr(call));
                vec![]
            }
            1 => vec![self.spill(call, fx, out)],
            w => {
                let tuple_ty = call.ty;
                let t = self.fresh_local(fx, tuple_ty);
                out.push(Stmt::Local(t, Some(call)));
                (0..w)
                    .map(|j| {
                        Expr::new(
                            ExprKind::TupleIndex(
                                Box::new(Expr::new(ExprKind::Local(t), tuple_ty)),
                                j as u32,
                            ),
                            piece_tys[j],
                        )
                    })
                    .collect()
            }
        }
    }

    // ---- operators --------------------------------------------------------------

    fn norm_oper(&mut self, op: Oper) -> Oper {
        match op {
            Oper::Eq(t) => Oper::Eq(self.norm_type(t)),
            Oper::Ne(t) => Oper::Ne(self.norm_type(t)),
            Oper::Cast { from, to } => Oper::Cast {
                from: self.norm_type(from),
                to: self.norm_type(to),
            },
            Oper::Query { from, to } => Oper::Query {
                from: self.norm_type(from),
                to: self.norm_type(to),
            },
            other => other,
        }
    }

    fn oper_needs_wrapper(&mut self, op: Oper) -> bool {
        let tuple_ty = |s: &TypeStore, t: Type| matches!(s.kind(t), TypeKind::Tuple(_));
        match op {
            Oper::Eq(t) | Oper::Ne(t) => tuple_ty(&self.module.store, t),
            Oper::Cast { from, to } | Oper::Query { from, to } => {
                tuple_ty(&self.module.store, from) || tuple_ty(&self.module.store, to)
            }
            _ => false,
        }
    }

    fn flat_apply(
        &mut self,
        op: Oper,
        args: &[Expr],
        old_result: Type,
        fx: &mut Fx,
        out: &mut Vec<Stmt>,
    ) -> Vec<Expr> {
        let op = self.norm_oper(op);
        match op {
            Oper::Eq(t) | Oper::Ne(t) if matches!(self.module.store.kind(t), TypeKind::Tuple(_)) => {
                let negate = matches!(op, Oper::Ne(_));
                let a = self.flat(&args[0], fx, out);
                let b = self.flat(&args[1], fx, out);
                let piece_tys = self.module.store.flatten(t);
                let bool_ = self.module.store.bool_;
                debug_assert_eq!(a.len(), piece_tys.len());
                let mut acc: Option<Expr> = None;
                for ((x, y), pt) in a.into_iter().zip(b).zip(piece_tys) {
                    let x = self.spill(x, fx, out);
                    let y = self.spill(y, fx, out);
                    let cmp = Expr::new(
                        ExprKind::Apply(Oper::Eq(pt), vec![x, y]),
                        bool_,
                    );
                    acc = Some(match acc {
                        None => cmp,
                        Some(prev) => Expr::new(
                            ExprKind::And(Box::new(prev), Box::new(cmp)),
                            bool_,
                        ),
                    });
                }
                let all_eq = acc.unwrap_or_else(|| Expr::new(ExprKind::Bool(true), bool_));
                let result = if negate {
                    Expr::new(ExprKind::Apply(Oper::BoolNot, vec![all_eq]), bool_)
                } else {
                    all_eq
                };
                vec![result]
            }
            Oper::Cast { from, to } => self.flat_cast(from, to, &args[0], old_result, fx, out),
            Oper::Query { from, to } => {
                let r = self.flat_query(from, to, &args[0], fx, out);
                vec![r]
            }
            Oper::Eq(t) | Oper::Ne(t) if t == self.module.store.void => {
                // Zero-width equality: all void values are equal (§2, fn. 1:
                // "void has one value, (), which is always equal to itself").
                for a in args {
                    let _ = self.flat(a, fx, out);
                }
                let bool_ = self.module.store.bool_;
                vec![Expr::new(ExprKind::Bool(matches!(op, Oper::Eq(_))), bool_)]
            }
            _ => {
                // Scalar operator: flatten args (each scalar) and rebuild.
                let mut flat = Vec::new();
                for a in args {
                    flat.extend(self.flat(a, fx, out));
                }
                let ret = self.norm_type(old_result);
                let applied = Expr::new(ExprKind::Apply(op, flat), ret);
                vec![self.spill(applied, fx, out)]
            }
        }
    }

    fn flat_cast(
        &mut self,
        from: Type,
        to: Type,
        arg: &Expr,
        old_result: Type,
        fx: &mut Fx,
        out: &mut Vec<Stmt>,
    ) -> Vec<Expr> {
        let fk = self.module.store.kind(from).clone();
        let tk = self.module.store.kind(to).clone();
        match (fk, tk) {
            (TypeKind::Tuple(fs), TypeKind::Tuple(ts)) if fs.len() == ts.len() => {
                // The argument's pieces are already flat; cast piecewise.
                let pieces = self.flat(arg, fx, out);
                self.cast_pieces(from, to, &pieces, fx, out)
            }
            (TypeKind::Tuple(_), _) | (_, TypeKind::Tuple(_)) => {
                // Width mismatch or tuple vs scalar: statically impossible.
                let pieces = self.flat(arg, fx, out);
                drop(pieces);
                let void = self.module.store.void;
                out.push(Stmt::Expr(Expr::new(
                    ExprKind::Trap(Exception::TypeCheck),
                    void,
                )));
                let tys = self.pieces_of(old_result);
                tys.into_iter().map(|t| self.zero_piece(t)).collect()
            }
            (TypeKind::Void, TypeKind::Void) => {
                let _ = self.flat(arg, fx, out);
                vec![]
            }
            _ => {
                let p = self.flat_scalar(arg, fx, out);
                let casted = Expr::new(
                    ExprKind::Apply(Oper::Cast { from, to }, vec![p]),
                    to,
                );
                vec![self.spill(casted, fx, out)]
            }
        }
    }

    fn flat_query(
        &mut self,
        from: Type,
        to: Type,
        arg: &Expr,
        fx: &mut Fx,
        out: &mut Vec<Stmt>,
    ) -> Expr {
        let bool_ = self.module.store.bool_;
        let fk = self.module.store.kind(from).clone();
        let tk = self.module.store.kind(to).clone();
        match (fk, tk) {
            (TypeKind::Tuple(fs), TypeKind::Tuple(ts)) if fs.len() == ts.len() => {
                // The argument's pieces are already flat; query piecewise.
                let pieces = self.flat(arg, fx, out);
                self.query_pieces(from, to, &pieces, fx, out)
            }
            (TypeKind::Tuple(_), _) | (_, TypeKind::Tuple(_)) => {
                let _ = self.flat(arg, fx, out);
                Expr::new(ExprKind::Bool(false), bool_)
            }
            _ => {
                let p = self.flat_scalar(arg, fx, out);
                let q = Expr::new(
                    ExprKind::Apply(Oper::Query { from, to }, vec![p]),
                    bool_,
                );
                self.spill(q, fx, out)
            }
        }
    }

    // ---- wrappers ------------------------------------------------------------------

    /// Synthesizes a scalar wrapper method for a first-class tuple operator.
    fn oper_wrapper(&mut self, op: Oper) -> MethodId {
        if let Some(&m) = self.wrapper_map.get(&op) {
            return m;
        }
        let bool_ = self.module.store.bool_;
        let method = match op {
            Oper::Eq(t) | Oper::Ne(t) => {
                let pieces = self.pieces_of(t);
                let w = pieces.len();
                let mut locals = Vec::new();
                for (j, &p) in pieces.iter().enumerate() {
                    locals.push(Local { name: format!("a{j}"), ty: p, mutable: false });
                }
                for (j, &p) in pieces.iter().enumerate() {
                    locals.push(Local { name: format!("b{j}"), ty: p, mutable: false });
                }
                let mut acc: Option<Expr> = None;
                for (j, &p) in pieces.iter().enumerate() {
                    let x = Expr::new(ExprKind::Local(LocalId(j as u32)), p);
                    let y = Expr::new(ExprKind::Local(LocalId((w + j) as u32)), p);
                    let cmp = Expr::new(ExprKind::Apply(Oper::Eq(p), vec![x, y]), bool_);
                    acc = Some(match acc {
                        None => cmp,
                        Some(prev) => Expr::new(
                            ExprKind::And(Box::new(prev), Box::new(cmp)),
                            bool_,
                        ),
                    });
                }
                let mut result =
                    acc.unwrap_or_else(|| Expr::new(ExprKind::Bool(true), bool_));
                if matches!(op, Oper::Ne(_)) {
                    result = Expr::new(ExprKind::Apply(Oper::BoolNot, vec![result]), bool_);
                }
                Method {
                    name: format!("<op:{op:?}>"),
                    owner: None,
                    is_private: true,
                    kind: MethodKind::Normal,
                    type_params: vec![],
                    param_count: 2 * w,
                    locals,
                    ret: bool_,
                    body: Some(Body { stmts: vec![Stmt::Return(Some(result))] }),
                    vtable_index: None,
                }
            }
            Oper::Cast { from, to } | Oper::Query { from, to } => {
                // Wrapper over the (already normalized) piecewise logic:
                // params = pieces of `from`, body reuses flat_cast/flat_query
                // on the parameter reads.
                let from_pieces = self.pieces_of(from);
                let mut locals = Vec::new();
                for (j, &p) in from_pieces.iter().enumerate() {
                    locals.push(Local { name: format!("x{j}"), ty: p, mutable: false });
                }
                let param_count = locals.len();
                let mut fx = Fx {
                    local_map: vec![],
                    new_locals: locals,
                    new_param_count: param_count,
                };
                // Build a synthetic tuple argument from the parameters by
                // constructing pieces directly.
                let arg_pieces: Vec<Expr> = from_pieces
                    .iter()
                    .enumerate()
                    .map(|(j, &p)| Expr::new(ExprKind::Local(LocalId(j as u32)), p))
                    .collect();
                let mut out = Vec::new();
                let is_query = matches!(op, Oper::Query { .. });
                let (ret, stmts) = if is_query {
                    let q = self.query_pieces(from, to, &arg_pieces, &mut fx, &mut out);
                    out.push(Stmt::Return(Some(q)));
                    (bool_, out)
                } else {
                    let pieces =
                        self.cast_pieces(from, to, &arg_pieces, &mut fx, &mut out);
                    let tys: Vec<Type> = pieces.iter().map(|p| p.ty).collect();
                    let rty = self.module.store.tuple(tys);
                    match pieces.len() {
                        0 => out.push(Stmt::Return(None)),
                        1 => out.push(Stmt::Return(Some(
                            pieces.into_iter().next().expect("one"),
                        ))),
                        _ => out.push(Stmt::Return(Some(Expr::new(
                            ExprKind::Tuple(pieces),
                            rty,
                        )))),
                    }
                    (rty, out)
                };
                Method {
                    name: format!("<op:{op:?}>"),
                    owner: None,
                    is_private: true,
                    kind: MethodKind::Normal,
                    type_params: vec![],
                    param_count,
                    locals: fx.new_locals,
                    ret,
                    body: Some(Body { stmts }),
                    vtable_index: None,
                }
            }
            _ => unreachable!("only tuple operators need wrappers"),
        };
        let id = self.reserve_method(method);
        self.wrapper_map.insert(op, id);
        id
    }

    /// Piecewise cast over already-flattened pieces.
    fn cast_pieces(
        &mut self,
        from: Type,
        to: Type,
        pieces: &[Expr],
        fx: &mut Fx,
        out: &mut Vec<Stmt>,
    ) -> Vec<Expr> {
        let from_pieces = self.pieces_of(from);
        let to_pieces = self.pieces_of(to);
        if from_pieces.len() != to_pieces.len() {
            let void = self.module.store.void;
            out.push(Stmt::Expr(Expr::new(ExprKind::Trap(Exception::TypeCheck), void)));
            return to_pieces.into_iter().map(|t| self.zero_piece(t)).collect();
        }
        pieces
            .iter()
            .zip(from_pieces.iter().zip(to_pieces.iter()))
            .map(|(p, (&f, &t))| {
                if f == t {
                    p.clone()
                } else {
                    let c = Expr::new(
                        ExprKind::Apply(Oper::Cast { from: f, to: t }, vec![p.clone()]),
                        t,
                    );
                    self.spill(c, fx, out)
                }
            })
            .collect()
    }

    /// Piecewise query over already-flattened pieces.
    fn query_pieces(
        &mut self,
        from: Type,
        to: Type,
        pieces: &[Expr],
        fx: &mut Fx,
        out: &mut Vec<Stmt>,
    ) -> Expr {
        let bool_ = self.module.store.bool_;
        let from_pieces = self.pieces_of(from);
        let to_pieces = self.pieces_of(to);
        if from_pieces.len() != to_pieces.len() {
            return Expr::new(ExprKind::Bool(false), bool_);
        }
        let mut acc: Option<Expr> = None;
        for (p, (&f, &t)) in pieces.iter().zip(from_pieces.iter().zip(to_pieces.iter())) {
            let q = if f == t && !self.module.store.is_nullable(f) {
                Expr::new(ExprKind::Bool(true), bool_)
            } else {
                let q = Expr::new(
                    ExprKind::Apply(Oper::Query { from: f, to: t }, vec![p.clone()]),
                    bool_,
                );
                self.spill(q, fx, out)
            };
            acc = Some(match acc {
                None => q,
                Some(prev) => Expr::new(ExprKind::And(Box::new(prev), Box::new(q)), bool_),
            });
        }
        acc.unwrap_or_else(|| Expr::new(ExprKind::Bool(true), bool_))
    }

    /// Emits `if (obj == null) trap NullCheck`.
    fn emit_null_check(&mut self, obj: Expr, out: &mut Vec<Stmt>) {
        let bool_ = self.module.store.bool_;
        let void = self.module.store.void;
        let oty = obj.ty;
        let is_null = Expr::new(
            ExprKind::Apply(
                Oper::Eq(oty),
                vec![obj, Expr::new(ExprKind::Null, oty)],
            ),
            bool_,
        );
        out.push(Stmt::If(
            is_null,
            vec![Stmt::Expr(Expr::new(ExprKind::Trap(Exception::NullCheck), void))],
            vec![],
        ));
    }

    /// Wrapper for `Array<T>.new` when the element splits into columns.
    fn array_ctor_wrapper(&mut self, elem: Type) -> MethodId {
        let op = Oper::Cast {
            // Reuse the wrapper map keyed by a synthetic op; array ctors are
            // keyed by their (normalized) element type via Query to avoid a
            // second map.
            from: self.norm_type(elem),
            to: {
                let ne = self.norm_type(elem);
                self.module.store.array(ne)
            },
        };
        if let Some(&m) = self.wrapper_map.get(&op) {
            return m;
        }
        let int = self.module.store.int;
        let cols = self.pieces_of(elem);
        let mut fx = Fx {
            local_map: vec![],
            new_locals: vec![Local { name: "n".into(), ty: int, mutable: false }],
            new_param_count: 1,
        };
        let mut out = Vec::new();
        let n = Expr::new(ExprKind::Local(LocalId(0)), int);
        let pieces: Vec<Expr> = cols
            .iter()
            .map(|&ct| {
                let arr = self.module.store.array(ct);
                let nw = Expr::new(ExprKind::ArrayNew(Box::new(n.clone())), arr);
                self.spill(nw, &mut fx, &mut out)
            })
            .collect();
        let tys: Vec<Type> = pieces.iter().map(|p| p.ty).collect();
        let rty = self.module.store.tuple(tys);
        out.push(Stmt::Return(Some(Expr::new(ExprKind::Tuple(pieces), rty))));
        let id = self.reserve_method(Method {
            name: "<arraynew>".into(),
            owner: None,
            is_private: true,
            kind: MethodKind::Normal,
            type_params: vec![],
            param_count: 1,
            locals: fx.new_locals,
            ret: rty,
            body: Some(Body { stmts: out }),
            vtable_index: None,
        });
        self.wrapper_map.insert(op, id);
        id
    }
}

/// Normalizer per-method context.
struct Fx {
    local_map: Vec<Vec<LocalId>>,
    new_locals: Vec<Local>,
    new_param_count: usize,
}

/// True if the expression can be duplicated-or-dropped safely and evaluated
/// out of order with respect to effects: no traps, no writes, no allocation
/// identity beyond single use.
fn is_pure_scalar(e: &Expr) -> bool {
    use ExprKind::*;
    match &e.kind {
        Int(_) | Byte(_) | Bool(_) | Unit | Null | Local(_) | Global(_) | OpClosure(_)
        | FuncRef { .. } | CtorRef { .. } | ArrayNewRef { .. } | BuiltinRef(_) => true,
        Apply(op, args) => {
            let trapping = matches!(
                op,
                Oper::IntDiv | Oper::IntMod | Oper::Cast { .. }
            );
            !trapping && args.iter().all(is_pure_scalar)
        }
        And(a, b) | Or(a, b) => is_pure_scalar(a) && is_pure_scalar(b),
        Ternary { cond, then, els } => {
            is_pure_scalar(cond) && is_pure_scalar(then) && is_pure_scalar(els)
        }
        TupleIndex(b, _) => is_pure_scalar(b),
        _ => false,
    }
}
