//! Monomorphization (paper §4.3).
//!
//! "The Virgil compiler instead employs monomorphization, where a specialized
//! version of each polymorphic class or method is generated for each distinct
//! assignment of type arguments to type parameters. ... Once the
//! representation of all classes and methods is obtained through
//! specialization, no type parameters appear in the program."
//!
//! The pass walks the reachable instantiation graph from `main` and the
//! component initializers, producing a fresh, fully monomorphic [`Module`]:
//!
//! * each live `(class, type args)` pair becomes a new class,
//! * each live `(method, type args)` pair becomes a new method,
//! * generic *virtual* methods get one vtable slot per live own-type-argument
//!   instantiation, kept consistent along each hierarchy chain,
//! * every type is translated so class types refer to specialized ids.
//!
//! The pass also doubles as reachability: unreferenced classes and methods
//! simply never get instantiated ("sophisticated dead code and dead data
//! elimination" is a natural corollary of instantiation-driven copying).

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::SyncSender;
use std::time::Instant;

use crate::cache::{self, CacheStats, DupMap, ShardedIndex};
use vgl_ir::visit::rewrite_exprs;
use vgl_obs::WorkerSample;
use vgl_ir::{
    Body, Class, Expr, ExprKind, Field, FieldRef, Global, Method, MethodId, MethodKind, Module,
    Oper, Stmt,
};
use vgl_types::{ClassId, ClassInfo, Hierarchy, Type, TypeKind, TypeStore, TypeVarId};

/// Hard bound on instantiation nesting to catch divergent specialization
/// (e.g. a class whose field type grows: `class C<T> { var x: C<(T, T)>; }`).
const MAX_INSTANTIATION_DEPTH: usize = 64;

/// Statistics reported by monomorphization (experiment E4 reads these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonoStats {
    /// Method instantiations created.
    pub method_instances: usize,
    /// Class instantiations created.
    pub class_instances: usize,
    /// Distinct source methods that were live.
    pub live_source_methods: usize,
    /// Distinct source classes that were live.
    pub live_source_classes: usize,
}

/// Runs monomorphization, returning the specialized module and statistics.
///
/// # Panics
/// Panics if instantiation depth exceeds the divergence bound (which the
/// polymorphic-recursion check in sema makes unreachable for accepted
/// programs).
pub fn monomorphize(module: &Module) -> (Module, MonoStats) {
    let mut m = Mono::new(module);
    m.run();
    m.finish()
}

/// Bound on the mono → hash-worker channel: deep enough that discovery
/// never stalls on a momentarily busy hasher, small enough that a stalled
/// consumer applies backpressure instead of buffering the whole module.
const STREAM_CAPACITY: usize = 256;

/// Hash workers fed by the stream. More than a few is pointless — hashing
/// is much cheaper than instantiation, so the producer is the bottleneck.
const MAX_HASHERS: usize = 4;

/// [`monomorphize`] overlapped with duplicate-instance fingerprinting:
/// instead of hashing the finished module in a separate pass
/// ([`cache::dup_groups`]), instance expansion streams each completed
/// method over a bounded channel to hash workers that publish
/// `(fingerprint, index)` into a [`ShardedIndex`] while discovery is still
/// running. Virtual instances (whose vtable slot lands late) are hashed in
/// a final batch.
///
/// The returned [`DupMap`] is **identical** to `dup_groups` on the same
/// module: fingerprints are pure functions of final method content, and
/// the index's minimum-wins rule reproduces the serial first-seen scan no
/// matter how sends interleave. With `jobs <= 1` it simply runs the serial
/// pair — one code path's output is the other's golden value, which the
/// determinism suite exploits.
pub fn monomorphize_streamed(
    module: &Module,
    jobs: usize,
) -> (Module, MonoStats, DupMap, Vec<WorkerSample>) {
    if jobs <= 1 {
        let (m, stats) = monomorphize(module);
        let (dup, workers) = cache::dup_groups(&m, 1);
        return (m, stats, dup, workers);
    }
    let hashers = (jobs - 1).min(MAX_HASHERS);
    let index = ShardedIndex::new(jobs);
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Method)>(STREAM_CAPACITY);
    let rx = std::sync::Mutex::new(rx);
    let pool_start = Instant::now();

    let (new_module, stats, deferred, mut prints, samples) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..hashers)
            .map(|w| {
                let (rx, index) = (&rx, &index);
                s.spawn(move || {
                    let start = Instant::now();
                    let mut pairs: Vec<(usize, (u64, u64))> = Vec::new();
                    loop {
                        // The guard is held across `recv`, so consumers
                        // take turns blocking; each message is hashed
                        // outside the lock.
                        let msg = rx.lock().expect("stream receiver poisoned").recv();
                        let Ok((i, m)) = msg else { break };
                        let key = cache::method_fingerprint(&m);
                        index.insert_min(key, i);
                        pairs.push((i, key));
                    }
                    let sample = WorkerSample {
                        phase: "mono-hash",
                        worker: w,
                        items: pairs.len(),
                        start: start.duration_since(pool_start),
                        duration: start.elapsed(),
                    };
                    (pairs, sample)
                })
            })
            .collect();

        let mut mono = Mono::new(module);
        mono.stream = Some(tx);
        mono.run();
        mono.stream = None; // hangs up the channel; hashers drain and exit
        let deferred = std::mem::take(&mut mono.deferred);
        let (new_module, stats) = mono.finish();

        let mut prints: Vec<(usize, (u64, u64))> = Vec::new();
        let mut samples = Vec::new();
        for h in handles {
            let (pairs, sample) = h.join().expect("hash worker panicked");
            prints.extend(pairs);
            samples.push(sample);
        }
        (new_module, stats, deferred, prints, samples)
    });

    // Late batch: the deferred instances have their final vtable slots now.
    for &i in &deferred {
        let m = &new_module.methods[i];
        debug_assert!(m.body.is_some(), "only bodied instances are deferred");
        let key = cache::method_fingerprint(m);
        index.insert_min(key, i);
        prints.push((i, key));
    }

    // Resolve every hashed method to its group's minimum index — the same
    // rule as a serial first-seen scan in index order.
    let mut rep: Vec<usize> = (0..new_module.methods.len()).collect();
    let mut cache_stats = CacheStats::default();
    let mut keys: Vec<Option<(u64, u64)>> = vec![None; new_module.methods.len()];
    for (i, key) in prints {
        keys[i] = Some(key);
    }
    for (i, key) in keys.into_iter().enumerate() {
        let Some(key) = key else { continue };
        cache_stats.lookups += 1;
        let r = index.get(key).expect("fingerprint published during streaming");
        rep[i] = r;
        if r == i {
            cache_stats.unique += 1;
        } else {
            cache_stats.hits += 1;
        }
    }
    (new_module, stats, DupMap { rep, stats: cache_stats }, samples)
}

type TypeArgs = Vec<Type>;

struct Mono<'m> {
    src: &'m Module,
    /// Old store, extended as substitution creates new types.
    old_store: TypeStore,
    /// The new module's store.
    new_store: TypeStore,
    new_hier: Hierarchy,
    new_classes: Vec<Class>,
    new_methods: Vec<Method>,
    new_globals: Vec<Global>,
    /// (old class, old-store concrete args) → new class id.
    class_map: HashMap<(ClassId, TypeArgs), ClassId>,
    /// (old method, old-store concrete args) → new method id.
    method_map: HashMap<(MethodId, TypeArgs), MethodId>,
    /// Old-store type → new-store type.
    type_map: HashMap<Type, Type>,
    /// Worklist of method instances whose bodies still need rewriting.
    work: Vec<(MethodId, TypeArgs, MethodId)>,
    /// Virtual demands: root slot method → set of own-type-arg lists.
    /// `BTreeMap` for deterministic slot ordering.
    vdemands: HashMap<MethodId, BTreeMap<TypeArgs, ()>>,
    /// Class instances in creation order: (old class, args, new id).
    class_instances: Vec<(ClassId, TypeArgs, ClassId)>,
    /// Current instantiation depth (divergence guard).
    depth: usize,
    /// For each (old class, slot): the *root* method that introduced the slot.
    slot_roots: HashMap<(ClassId, usize), MethodId>,
    /// When streaming ([`monomorphize_streamed`]), each finished instance is
    /// cloned out to the hash workers the moment its body is rewritten —
    /// unless its fingerprint is not final yet (see `deferred`).
    stream: Option<SyncSender<(usize, Method)>>,
    /// Instances whose `vtable_index` is assigned *late* (in
    /// `build_vtables`): source methods that are owned, non-private, and
    /// slotted. Their fingerprint input is incomplete at body-rewrite time,
    /// so they are hashed in a final batch instead of streamed.
    deferred: Vec<usize>,
}

impl<'m> Mono<'m> {
    fn new(src: &'m Module) -> Mono<'m> {
        // Precompute slot roots.
        let mut slot_roots = HashMap::new();
        for (cix, c) in src.classes.iter().enumerate() {
            let cid = ClassId(cix as u32);
            for (slot, _) in c.vtable.iter().enumerate() {
                // The root is vtable[slot] of the topmost ancestor that has
                // this slot.
                let mut root_owner = cid;
                let mut cur = c.parent;
                while let Some(p) = cur {
                    if src.class(p).vtable.len() > slot {
                        root_owner = p;
                    }
                    cur = src.class(p).parent;
                }
                slot_roots.insert((cid, slot), src.class(root_owner).vtable[slot]);
            }
        }
        Mono {
            src,
            old_store: src.store.clone(),
            new_store: TypeStore::new(),
            new_hier: Hierarchy::new(),
            new_classes: Vec::new(),
            new_methods: Vec::new(),
            new_globals: Vec::new(),
            class_map: HashMap::new(),
            method_map: HashMap::new(),
            type_map: HashMap::new(),
            work: Vec::new(),
            vdemands: HashMap::new(),
            class_instances: Vec::new(),
            depth: 0,
            slot_roots,
            stream: None,
            deferred: Vec::new(),
        }
    }

    fn run(&mut self) {
        // Seed: globals and main.
        for g in &self.src.globals {
            let ty = self.translate(g.ty);
            self.new_globals.push(Global {
                name: g.name.clone(),
                mutable: g.mutable,
                ty,
                init: None, // rewritten below
                locals: Vec::new(),
            });
        }
        if let Some(main) = self.src.main {
            self.instance_method(main, vec![]);
        }
        // Drain the worklist to a fixpoint; virtual demands can revive it.
        loop {
            while let Some((old_m, targs, new_m)) = self.work.pop() {
                self.rewrite_method_body(old_m, &targs, new_m);
            }
            if !self.expand_virtual_demands() {
                break;
            }
        }
        // Globals' initializers (monomorphic by construction).
        for (i, g) in self.src.globals.iter().enumerate() {
            if let Some(init) = &g.init {
                let mut body = Body { stmts: vec![Stmt::Expr(init.clone())] };
                self.rewrite_body(&mut body, &HashMap::new());
                let Stmt::Expr(e) = body.stmts.pop().expect("one stmt") else {
                    unreachable!("rewrite preserves statement shape");
                };
                self.new_globals[i].init = Some(e);
                self.new_globals[i].locals = g
                    .locals
                    .iter()
                    .map(|l| vgl_ir::Local {
                        name: l.name.clone(),
                        ty: self.translate(l.ty),
                        mutable: l.mutable,
                    })
                    .collect();
            }
        }
        // Drain any work the global initializers added.
        loop {
            while let Some((old_m, targs, new_m)) = self.work.pop() {
                self.rewrite_method_body(old_m, &targs, new_m);
            }
            if !self.expand_virtual_demands() {
                break;
            }
        }
        self.build_vtables();
    }

    fn finish(self) -> (Module, MonoStats) {
        let mut live_methods: Vec<MethodId> =
            self.method_map.keys().map(|(m, _)| *m).collect();
        live_methods.sort();
        live_methods.dedup();
        let mut live_classes: Vec<ClassId> = self.class_map.keys().map(|(c, _)| *c).collect();
        live_classes.sort();
        live_classes.dedup();
        let stats = MonoStats {
            method_instances: self.new_methods.len(),
            class_instances: self.new_classes.len(),
            live_source_methods: live_methods.len(),
            live_source_classes: live_classes.len(),
        };
        let main = self
            .src
            .main
            .and_then(|m| self.method_map.get(&(m, vec![])).copied());
        let module = Module {
            store: self.new_store,
            hier: self.new_hier,
            classes: self.new_classes,
            methods: self.new_methods,
            globals: self.new_globals,
            main,
        };
        (module, stats)
    }

    // ---- type translation -----------------------------------------------------

    /// Translates a *concrete* old-store type into the new store, specializing
    /// class references.
    fn translate(&mut self, t: Type) -> Type {
        if let Some(&n) = self.type_map.get(&t) {
            return n;
        }
        let n = match self.old_store.kind(t).clone() {
            // Unreachable in practice: a module with error diagnostics is
            // never monomorphized. Translate anyway rather than panic.
            TypeKind::Error => self.new_store.error,
            TypeKind::Void => self.new_store.void,
            TypeKind::Bool => self.new_store.bool_,
            TypeKind::Byte => self.new_store.byte,
            TypeKind::Int => self.new_store.int,
            TypeKind::Null => self.new_store.null,
            TypeKind::Array(e) => {
                let e = self.translate(e);
                self.new_store.array(e)
            }
            TypeKind::Tuple(es) => {
                let es = es.into_iter().map(|e| self.translate(e)).collect();
                self.new_store.tuple(es)
            }
            TypeKind::Function(p, r) => {
                let p = self.translate(p);
                let r = self.translate(r);
                self.new_store.function(p, r)
            }
            TypeKind::Class(c, args) => {
                let nc = self.instance_class(c, args);
                self.new_store.class(nc, vec![])
            }
            TypeKind::Var(_) => {
                unreachable!("type variable reached monomorphization translation")
            }
        };
        self.type_map.insert(t, n);
        n
    }

    // ---- class instances ---------------------------------------------------------

    fn instance_class(&mut self, c: ClassId, args: TypeArgs) -> ClassId {
        if let Some(&n) = self.class_map.get(&(c, args.clone())) {
            return n;
        }
        assert!(
            self.depth < MAX_INSTANTIATION_DEPTH,
            "monomorphization diverged instantiating class {}",
            self.src.class(c).name
        );
        self.depth += 1;
        let src_class = self.src.class(c);
        let name = if args.is_empty() {
            src_class.name.clone()
        } else {
            let parts: Vec<String> = args
                .iter()
                .map(|&a| vgl_types::display_type(&self.old_store, &self.src.hier, a))
                .collect();
            format!("{}<{}>", src_class.name, parts.join(", "))
        };
        let new_id = ClassId(self.new_classes.len() as u32);
        self.class_map.insert((c, args.clone()), new_id);
        let hid = self.new_hier.add_class(ClassInfo {
            name: name.clone(),
            type_params: vec![],
            parent: None, // fixed below
        });
        debug_assert_eq!(hid, new_id);
        // Push a placeholder so recursive field types terminate.
        self.new_classes.push(Class {
            name,
            type_params: vec![],
            parent: None,
            parent_args: vec![],
            fields: vec![],
            first_field_slot: src_class.first_field_slot,
            methods: vec![],
            ctor: None,
            vtable: vec![],
            is_abstract: src_class.is_abstract,
        });
        self.class_instances.push((c, args.clone(), new_id));

        let subst: HashMap<TypeVarId, Type> = src_class
            .type_params
            .iter()
            .copied()
            .zip(args.iter().copied())
            .collect();
        // Parent.
        let parent = if let Some(p) = src_class.parent {
            let pargs: TypeArgs = src_class
                .parent_args
                .iter()
                .map(|&a| self.old_store.substitute(a, &subst))
                .collect();
            Some(self.instance_class(p, pargs))
        } else {
            None
        };
        // Fields.
        let fields: Vec<Field> = self
            .src
            .class(c)
            .fields
            .iter()
            .map(|f| {
                let sub = self.old_store.substitute(f.ty, &subst);
                Field {
                    name: f.name.clone(),
                    mutable: f.mutable,
                    ty: self.translate(sub),
                    slot: f.slot,
                    init: None,
                }
            })
            .collect();
        // Constructor.
        let ctor = self
            .src
            .class(c)
            .ctor
            .map(|ct| self.instance_method(ct, args.clone()));

        let cl = &mut self.new_classes[new_id.index()];
        cl.parent = parent;
        cl.fields = fields;
        cl.ctor = ctor;
        self.new_hier.info_mut(new_id).parent = parent.map(|p| (p, vec![]));
        self.depth -= 1;
        new_id
    }

    // ---- method instances -----------------------------------------------------------

    fn instance_method(&mut self, m: MethodId, targs: TypeArgs) -> MethodId {
        if let Some(&n) = self.method_map.get(&(m, targs.clone())) {
            return n;
        }
        assert!(
            self.depth < MAX_INSTANTIATION_DEPTH,
            "monomorphization diverged instantiating method {}",
            self.src.method(m).name
        );
        self.depth += 1;
        let src = self.src.method(m);
        let vars = self.src.all_type_params(m);
        debug_assert_eq!(vars.len(), targs.len(), "type arity for {}", src.name);
        let subst: HashMap<TypeVarId, Type> =
            vars.into_iter().zip(targs.iter().copied()).collect();

        let new_id = MethodId(self.new_methods.len() as u32);
        self.method_map.insert((m, targs.clone()), new_id);
        // Reserve the slot NOW: instantiating the owner class below may
        // recursively create more methods.
        self.new_methods.push(Method {
            name: src.name.clone(),
            owner: None,
            is_private: src.is_private,
            kind: src.kind,
            type_params: vec![],
            param_count: 0,
            locals: vec![],
            ret: self.new_store.void,
            body: None,
            vtable_index: None,
        });

        let owner = src.owner.map(|c| {
            let class_param_count = self.src.class(c).type_params.len();
            let cargs: TypeArgs = targs[..class_param_count].to_vec();
            self.instance_class(c, cargs)
        });
        let locals: Vec<vgl_ir::Local> = src
            .locals
            .iter()
            .map(|l| {
                let sub = self.old_store.substitute(l.ty, &subst);
                vgl_ir::Local {
                    name: l.name.clone(),
                    ty: self.translate(sub),
                    mutable: l.mutable,
                }
            })
            .collect();
        let ret_sub = self.old_store.substitute(src.ret, &subst);
        let ret = self.translate(ret_sub);
        {
            let slot = &mut self.new_methods[new_id.index()];
            slot.owner = owner;
            slot.param_count = src.param_count;
            slot.locals = locals;
            slot.ret = ret;
        }
        if let Some(o) = owner {
            if src.kind != MethodKind::Ctor {
                self.new_classes[o.index()].methods.push(new_id);
            }
        }
        if src.body.is_some() {
            self.work.push((m, targs, new_id));
        }
        self.depth -= 1;
        new_id
    }

    fn rewrite_method_body(&mut self, old_m: MethodId, targs: &[Type], new_m: MethodId) {
        let src = self.src.method(old_m);
        let vars = self.src.all_type_params(old_m);
        let subst: HashMap<TypeVarId, Type> =
            vars.into_iter().zip(targs.iter().copied()).collect();
        let mut body = src.body.clone().expect("worklist only holds bodied methods");
        self.rewrite_body(&mut body, &subst);
        self.new_methods[new_m.index()].body = Some(body);
        if let Some(tx) = &self.stream {
            // Every fingerprint input except `vtable_index` is final once
            // the body is in place; `assign_slots` later touches only
            // owned, non-private, slotted source methods. Stream the rest
            // now so hashing overlaps the remaining discovery.
            let late_slot =
                src.owner.is_some() && !src.is_private && src.vtable_index.is_some();
            if late_slot {
                self.deferred.push(new_m.index());
            } else {
                let snapshot = self.new_methods[new_m.index()].clone();
                // A send fails only if every hash worker died — their panic
                // resurfaces at join, so just stop streaming here.
                let _ = tx.send((new_m.index(), snapshot));
            }
        }
    }

    /// Substitutes, translates, and re-links one body in place.
    fn rewrite_body(&mut self, body: &mut Body, subst: &HashMap<TypeVarId, Type>) {
        rewrite_exprs(body, &mut |mut e: Expr| {
            // 1. Substitute type variables (old store).
            let sub_ty = self.old_store.substitute(e.ty, subst);
            // 2. Rewrite the node.
            e.kind = self.rewrite_kind(e.kind, subst);
            // 3. Translate the node type.
            e.ty = self.translate(sub_ty);
            e
        });
    }

    fn sub_targs(&mut self, ts: &[Type], subst: &HashMap<TypeVarId, Type>) -> TypeArgs {
        ts.iter().map(|&t| self.old_store.substitute(t, subst)).collect()
    }

    fn rewrite_kind(&mut self, kind: ExprKind, subst: &HashMap<TypeVarId, Type>) -> ExprKind {
        match kind {
            ExprKind::New { class, type_args, args } => {
                let cargs = self.sub_targs(&type_args, subst);
                let nc = self.instance_class(class, cargs);
                ExprKind::New { class: nc, type_args: vec![], args }
            }
            ExprKind::CallStatic { method, type_args, args } => {
                let targs = self.sub_targs(&type_args, subst);
                let nm = self.instance_method(method, targs);
                ExprKind::CallStatic { method: nm, type_args: vec![], args }
            }
            ExprKind::CallVirtual { method, type_args, recv, args } => {
                let targs = self.sub_targs(&type_args, subst);
                let nm = self.virtual_instance(method, &targs);
                ExprKind::CallVirtual { method: nm, type_args: vec![], recv, args }
            }
            ExprKind::BindMethod { method, type_args, recv } => {
                let targs = self.sub_targs(&type_args, subst);
                let m = self.src.method(method);
                if m.owner.is_some() && !m.is_private && m.vtable_index.is_some() {
                    let nm = self.virtual_instance(method, &targs);
                    ExprKind::BindMethod { method: nm, type_args: vec![], recv }
                } else {
                    let nm = self.instance_method(method, targs);
                    ExprKind::BindMethod { method: nm, type_args: vec![], recv }
                }
            }
            ExprKind::FuncRef { method, type_args } => {
                let targs = self.sub_targs(&type_args, subst);
                let m = self.src.method(method);
                if m.owner.is_some() && !m.is_private && m.vtable_index.is_some() {
                    let nm = self.virtual_instance(method, &targs);
                    ExprKind::FuncRef { method: nm, type_args: vec![] }
                } else {
                    let nm = self.instance_method(method, targs);
                    ExprKind::FuncRef { method: nm, type_args: vec![] }
                }
            }
            ExprKind::CtorRef { class, type_args } => {
                let cargs = self.sub_targs(&type_args, subst);
                let nc = self.instance_class(class, cargs);
                ExprKind::CtorRef { class: nc, type_args: vec![] }
            }
            ExprKind::ArrayNewRef { elem } => {
                let sub = self.old_store.substitute(elem, subst);
                ExprKind::ArrayNewRef { elem: self.translate(sub) }
            }
            ExprKind::FieldGet(o, fref) => {
                let nf = self.translate_fieldref(fref, subst, &o);
                ExprKind::FieldGet(o, nf)
            }
            ExprKind::FieldSet(o, fref, v) => {
                let nf = self.translate_fieldref(fref, subst, &o);
                ExprKind::FieldSet(o, nf, v)
            }
            ExprKind::Apply(op, args) => ExprKind::Apply(self.rewrite_oper(op, subst), args),
            ExprKind::OpClosure(op) => ExprKind::OpClosure(self.rewrite_oper(op, subst)),
            other => other,
        }
    }

    fn translate_fieldref(
        &mut self,
        fref: FieldRef,
        subst: &HashMap<TypeVarId, Type>,
        obj: &Expr,
    ) -> FieldRef {
        // The receiver's type (already substituted via child-first rewrite,
        // and translated) names the specialized class; map the declaring
        // class through its chain.
        let _ = subst;
        let recv_ty = obj.ty;
        let new_class = match self.new_store.kind(recv_ty) {
            TypeKind::Class(c, _) => *c,
            _ => unreachable!("field access on non-class receiver after mono"),
        };
        // Find the specialized ancestor corresponding to fref.class.
        let mut cur = Some(new_class);
        while let Some(nc) = cur {
            // Which old class did nc come from?
            let (old_c, _, _) = self.class_instances[nc.index()];
            if old_c == fref.class {
                return FieldRef { class: nc, slot: fref.slot };
            }
            cur = self.new_classes[nc.index()].parent;
        }
        // Fallback: keep slot, point at the receiver's class.
        FieldRef { class: new_class, slot: fref.slot }
    }

    fn rewrite_oper(&mut self, op: Oper, subst: &HashMap<TypeVarId, Type>) -> Oper {
        match op {
            Oper::Eq(t) => {
                let s = self.old_store.substitute(t, subst);
                Oper::Eq(self.translate(s))
            }
            Oper::Ne(t) => {
                let s = self.old_store.substitute(t, subst);
                Oper::Ne(self.translate(s))
            }
            Oper::Cast { from, to } => {
                let f = self.old_store.substitute(from, subst);
                let t = self.old_store.substitute(to, subst);
                Oper::Cast { from: self.translate(f), to: self.translate(t) }
            }
            Oper::Query { from, to } => {
                let f = self.old_store.substitute(from, subst);
                let t = self.old_store.substitute(to, subst);
                Oper::Query { from: self.translate(f), to: self.translate(t) }
            }
            other => other,
        }
    }

    // ---- virtual dispatch -----------------------------------------------------------

    /// Instantiates the *declared* method of a virtual call and records the
    /// demand so every live override gets specialized too.
    fn virtual_instance(&mut self, declared: MethodId, targs: &[Type]) -> MethodId {
        let m = self.src.method(declared);
        let own_count = m.type_params.len();
        let own = targs[targs.len() - own_count..].to_vec();
        // Record the demand under the slot's root method.
        let owner = m.owner.expect("virtual methods are owned");
        let slot = m.vtable_index.expect("virtual methods have slots");
        let root = *self
            .slot_roots
            .get(&(owner, slot))
            .expect("slot root precomputed");
        self.vdemands.entry(root).or_default().insert(own, ());
        self.instance_method(declared, targs.to_vec())
    }

    /// Ensures every live class instance has specialized overrides for every
    /// demanded virtual slot. Returns true if new work was generated.
    fn expand_virtual_demands(&mut self) -> bool {
        let mut added = false;
        let demands: Vec<(MethodId, Vec<TypeArgs>)> = self
            .vdemands
            .iter()
            .map(|(&root, owns)| (root, owns.keys().cloned().collect()))
            .collect();
        let instances = self.class_instances.clone();
        for (old_c, cargs, _new_c) in instances {
            let vt = self.src.class(old_c).vtable.clone();
            for (slot, &impl_m) in vt.iter().enumerate() {
                let Some(&root) = self.slot_roots.get(&(old_c, slot)) else { continue };
                let Some((_, owns)) = demands.iter().find(|(r, _)| *r == root) else {
                    continue;
                };
                // Class args of the implementor's owner as seen from old_c.
                let impl_owner = self.src.method(impl_m).owner.expect("owned");
                let owner_args = self.class_args_for_old(old_c, &cargs, impl_owner);
                for own in owns {
                    let mut full = owner_args.clone();
                    full.extend(own.iter().copied());
                    if !self.method_map.contains_key(&(impl_m, full.clone())) {
                        self.instance_method(impl_m, full);
                        added = true;
                    }
                }
            }
        }
        added
    }

    fn class_args_for_old(&mut self, c: ClassId, args: &[Type], decl: ClassId) -> TypeArgs {
        let start = self.old_store.class(c, args.to_vec());
        let sups = self.src.hier.supertypes(&mut self.old_store, start);
        for s in sups {
            if let TypeKind::Class(sc, sargs) = self.old_store.kind(s).clone() {
                if sc == decl {
                    return sargs;
                }
            }
        }
        args.to_vec()
    }

    /// Computes the new vtable slot of a virtual method instance: original
    /// slots expand to one new slot per demanded own-type-argument list, in
    /// deterministic (BTreeMap) order; layout is identical along each chain
    /// because slot roots and demand sets are chain-invariant.
    fn new_slot_for(&self, old_m: MethodId, own: &[Type]) -> Option<usize> {
        let m = self.src.method(old_m);
        let owner = m.owner?;
        let slot = m.vtable_index?;
        let mut base = 0;
        for s in 0..slot {
            let root = self.slot_roots.get(&(owner, s))?;
            base += self.vdemands.get(root).map(|d| d.len()).unwrap_or(0);
        }
        let root = self.slot_roots.get(&(owner, slot))?;
        let within = self
            .vdemands
            .get(root)?
            .keys()
            .position(|k| k.as_slice() == own)?;
        Some(base + within)
    }

    /// Assigns vtable slots to every specialized virtual-method instance.
    fn assign_slots(&mut self) {
        let entries: Vec<((MethodId, TypeArgs), MethodId)> = self
            .method_map
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        for ((old_m, targs), new_m) in entries {
            let m = self.src.method(old_m);
            if m.owner.is_none() || m.is_private || m.vtable_index.is_none() {
                continue;
            }
            let own_count = m.type_params.len();
            let own = &targs[targs.len() - own_count..];
            self.new_methods[new_m.index()].vtable_index = self.new_slot_for(old_m, own);
        }
    }

    /// Builds specialized vtables: slot layout is (original slot, demanded
    /// own-type-args) in deterministic order, identical along each chain.
    fn build_vtables(&mut self) {
        self.assign_slots();
        // Topological order: parents first.
        let mut order: Vec<usize> = (0..self.new_classes.len()).collect();
        order.sort_by_key(|&i| {
            let mut d = 0;
            let mut cur = self.new_classes[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = self.new_classes[p.index()].parent;
            }
            d
        });
        for i in order {
            let (old_c, cargs, _) = self.class_instances[i].clone();
            let old_vt = self.src.class(old_c).vtable.clone();
            let mut vt: Vec<MethodId> = Vec::new();
            for (slot, &impl_m) in old_vt.iter().enumerate() {
                let Some(&root) = self.slot_roots.get(&(old_c, slot)) else {
                    continue;
                };
                let owns: Vec<TypeArgs> = self
                    .vdemands
                    .get(&root)
                    .map(|m| m.keys().cloned().collect())
                    .unwrap_or_default();
                for own in owns {
                    let impl_owner = self.src.method(impl_m).owner.expect("owned");
                    let owner_args = self.class_args_for_old(old_c, &cargs, impl_owner);
                    let mut full = owner_args;
                    full.extend(own.iter().copied());
                    let entry = *self
                        .method_map
                        .get(&(impl_m, full.clone()))
                        .unwrap_or_else(|| {
                            panic!(
                                "override instance missing for {} (demand expansion bug)",
                                self.src.method(impl_m).name
                            )
                        });
                    vt.push(entry);
                }
            }
            self.new_classes[i].vtable = vt;
        }
        // Any body instantiated lazily during vtable construction must still
        // be rewritten.
        while let Some((old_m, targs, new_m)) = self.work.pop() {
            self.rewrite_method_body(old_m, &targs, new_m);
        }
    }
}
