//! The per-instance pass cache: content-based identity for post-mono
//! method instances.
//!
//! Monomorphization copies a polymorphic method once per distinct
//! type-argument assignment (§4.3). When a type parameter does not actually
//! reach the method's signature, locals, or body — phantom parameters,
//! dead-branch-only uses that mono already resolved, or plain duplicated
//! helper bodies — the copies are **structurally identical**, and running
//! normalize/optimize on each is wasted work. Instance identity here is
//! content-based, not name-based: two methods are duplicates iff everything
//! *except their name* (owner, kind, privacy, signature, locals, body,
//! vtable slot) hashes equal under a 128-bit fingerprint.
//!
//! The fingerprint feeds the IR's `Debug` rendering through a
//! non-allocating `fmt::Write` adapter into two independent 64-bit streams
//! (FNV-1a and a 31-multiplier stream), so no intermediate strings are
//! built. Types print as interned ids (`ty#N`), which is exactly right:
//! the interner is deterministic, so structurally identical methods
//! reference identical ids.

use std::collections::HashMap;
use std::fmt::{self, Write};
use vgl_ir::{Method, Module};
use vgl_obs::WorkerSample;

use crate::sched;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Two independent 64-bit hash streams fed by `fmt::Write` — a 128-bit
/// combined key makes accidental collision between distinct instances
/// (which would silently merge their compiled bodies) a non-concern.
struct FingerprintWriter {
    a: u64,
    b: u64,
}

impl FingerprintWriter {
    fn new() -> FingerprintWriter {
        FingerprintWriter { a: FNV_OFFSET, b: 0x9e37_79b9_7f4a_7c15 }
    }
}

impl Write for FingerprintWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &byte in s.as_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = self.b.wrapping_mul(31).wrapping_add(u64::from(byte));
        }
        Ok(())
    }
}

/// 128-bit content fingerprint of a post-mono method, **excluding its
/// name**: two methods with equal fingerprints are interchangeable inputs
/// to normalize and optimize.
pub fn method_fingerprint(m: &Method) -> (u64, u64) {
    let mut h = FingerprintWriter::new();
    write!(
        h,
        "{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}",
        m.owner,
        m.is_private,
        m.kind,
        m.type_params,
        m.param_count,
        m.locals,
        m.ret,
        m.body,
        m.vtable_index
    )
    .expect("hash writer never fails");
    (h.a, h.b)
}

/// A single 64-bit content hash of a whole module — classes, methods
/// (names included this time), globals, and entry point. Used by the
/// determinism suite to compare `--jobs 1` vs `--jobs 8` compiles beyond
/// the disassembly text. The type interner itself is excluded (its map is
/// unordered); every type the program can observe is reachable through the
/// hashed items as interned ids.
pub fn module_fingerprint(m: &Module) -> u64 {
    let mut h = FingerprintWriter::new();
    write!(h, "{:?}|{:?}|{:?}|{:?}", m.classes, m.methods, m.globals, m.main)
        .expect("hash writer never fails");
    h.a ^ h.b.rotate_left(32)
}

/// Cache effectiveness counters for one pass over one module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Methods with bodies that were looked up.
    pub lookups: usize,
    /// Duplicates that skipped the pass (result copied from their
    /// representative).
    pub hits: usize,
    /// Unique representatives that did the work.
    pub unique: usize,
}

impl CacheStats {
    /// Hits per lookup, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Accumulates another pass's counters.
    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.unique += other.unique;
    }
}

/// The duplicate-instance map for one module: `rep[i]` is the index of the
/// first method whose fingerprint equals method `i`'s (`rep[i] == i` for
/// representatives and for methods without bodies).
#[derive(Clone, Debug, Default)]
pub struct DupMap {
    /// Representative index per method.
    pub rep: Vec<usize>,
    /// Lookup/hit counters from building the map.
    pub stats: CacheStats,
}

impl DupMap {
    /// The identity map (cache disabled): every method represents itself.
    pub fn identity(n: usize) -> DupMap {
        DupMap { rep: (0..n).collect(), stats: CacheStats::default() }
    }

    /// True if `i` is a duplicate of an earlier method.
    pub fn is_dup(&self, i: usize) -> bool {
        self.rep[i] != i
    }
}

/// Builds the duplicate map for `module`, fingerprinting method bodies on
/// up to `jobs` workers (hashing is read-only and order-independent; the
/// grouping itself is a deterministic first-seen scan in index order).
pub fn dup_groups(module: &Module, jobs: usize) -> (DupMap, Vec<WorkerSample>) {
    let (prints, workers) = sched::par_map_ctx(
        jobs,
        "hash",
        &module.methods,
        || (),
        |_, _, m: &Method| m.body.as_ref().map(|_| method_fingerprint(m)),
    );
    let mut rep: Vec<usize> = (0..module.methods.len()).collect();
    let mut stats = CacheStats::default();
    let mut first: HashMap<(u64, u64), usize> = HashMap::new();
    for (i, print) in prints.into_iter().enumerate() {
        let Some(key) = print else { continue };
        stats.lookups += 1;
        match first.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                rep[i] = *e.get();
                stats.hits += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
                stats.unique += 1;
            }
        }
    }
    (DupMap { rep, stats }, workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_streams_are_independent_and_stable() {
        let mut h1 = FingerprintWriter::new();
        write!(h1, "abc").unwrap();
        let mut h2 = FingerprintWriter::new();
        write!(h2, "a").unwrap();
        write!(h2, "bc").unwrap();
        // Chunking must not matter.
        assert_eq!((h1.a, h1.b), (h2.a, h2.b));
        let mut h3 = FingerprintWriter::new();
        write!(h3, "abd").unwrap();
        assert_ne!((h1.a, h1.b), (h3.a, h3.b));
    }

    #[test]
    fn identity_map_has_no_dups() {
        let m = DupMap::identity(5);
        for i in 0..5 {
            assert!(!m.is_dup(i));
        }
        assert_eq!(m.stats.hits, 0);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { lookups: 4, hits: 3, unique: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }
}
