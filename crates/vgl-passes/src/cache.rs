//! The per-instance pass cache: content-based identity for post-mono
//! method instances.
//!
//! Monomorphization copies a polymorphic method once per distinct
//! type-argument assignment (§4.3). When a type parameter does not actually
//! reach the method's signature, locals, or body — phantom parameters,
//! dead-branch-only uses that mono already resolved, or plain duplicated
//! helper bodies — the copies are **structurally identical**, and running
//! normalize/optimize on each is wasted work. Instance identity here is
//! content-based, not name-based: two methods are duplicates iff everything
//! *except their name* (owner, kind, privacy, signature, locals, body,
//! vtable slot) hashes equal under a 128-bit fingerprint.
//!
//! The fingerprint feeds the IR's `Debug` rendering through a
//! non-allocating `fmt::Write` adapter into two independent 64-bit streams
//! (FNV-1a and a 31-multiplier stream), so no intermediate strings are
//! built. Types print as interned ids (`ty#N`), which is exactly right:
//! the interner is deterministic, so structurally identical methods
//! reference identical ids.

use std::collections::HashMap;
use std::fmt::{self, Write};
use std::sync::Mutex;
use vgl_ir::{Method, Module};
use vgl_obs::WorkerSample;

use crate::sched;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Two independent 64-bit hash streams fed by `fmt::Write` — a 128-bit
/// combined key makes accidental collision between distinct instances
/// (which would silently merge their compiled bodies) a non-concern.
struct FingerprintWriter {
    a: u64,
    b: u64,
}

impl FingerprintWriter {
    fn new() -> FingerprintWriter {
        FingerprintWriter { a: FNV_OFFSET, b: 0x9e37_79b9_7f4a_7c15 }
    }
}

impl Write for FingerprintWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &byte in s.as_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = self.b.wrapping_mul(31).wrapping_add(u64::from(byte));
        }
        Ok(())
    }
}

/// The same two independent streams as [`FingerprintWriter`], fed
/// structurally through `std::hash::Hasher` instead of through `Debug`
/// rendering. Fingerprinting is on the hot path of every warm daemon
/// compile (every method of every request is fingerprinted before the
/// function store can answer), and formatting machinery was the dominant
/// cost — hashing the IR tree directly is several times faster and keyed
/// on exactly the same structure (derived `Hash` visits every field the
/// `Debug` rendering printed, types still as interned ids).
struct FingerprintHasher {
    a: u64,
    b: u64,
}

impl FingerprintHasher {
    fn new() -> FingerprintHasher {
        FingerprintHasher { a: FNV_OFFSET, b: 0x9e37_79b9_7f4a_7c15 }
    }
}

impl std::hash::Hasher for FingerprintHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = self.b.wrapping_mul(31).wrapping_add(u64::from(byte));
        }
    }

    fn finish(&self) -> u64 {
        self.a
    }
}

/// 128-bit content fingerprint of a post-mono method, **excluding its
/// name**: two methods with equal fingerprints are interchangeable inputs
/// to normalize and optimize.
pub fn method_fingerprint(m: &Method) -> (u64, u64) {
    use std::hash::Hash;
    let mut h = FingerprintHasher::new();
    m.owner.hash(&mut h);
    m.is_private.hash(&mut h);
    m.kind.hash(&mut h);
    m.type_params.hash(&mut h);
    m.param_count.hash(&mut h);
    m.locals.hash(&mut h);
    m.ret.hash(&mut h);
    m.body.hash(&mut h);
    m.vtable_index.hash(&mut h);
    (h.a, h.b)
}

/// A single 64-bit content hash of a whole module — classes, methods
/// (names included this time), globals, and entry point. Used by the
/// determinism suite to compare `--jobs 1` vs `--jobs 8` compiles beyond
/// the disassembly text. The type interner itself is excluded (its map is
/// unordered); every type the program can observe is reachable through the
/// hashed items as interned ids.
pub fn module_fingerprint(m: &Module) -> u64 {
    use std::hash::Hash;
    let mut h = FingerprintHasher::new();
    m.classes.hash(&mut h);
    m.methods.hash(&mut h);
    m.globals.hash(&mut h);
    m.main.hash(&mut h);
    h.a ^ h.b.rotate_left(32)
}

/// 128-bit digest of everything compiled bytecode can reference **by
/// index** across compiles: the full type-interner dump (id order), the
/// class hierarchy and layouts, the globals, the entry point, and every
/// method's *signature* (owner, kind, privacy, parameter types, return
/// type, vtable slot) — but **not** method names or bodies.
///
/// Two post-normalize modules with equal digests agree on every id space a
/// [`method_fingerprint`]-keyed artifact embeds — type ids, `MethodId` /
/// `FuncId`, `ClassId`, `GlobalId`, field slots, vtable slots — so a
/// function artifact cached under one module can be soundly reused in the
/// other wherever the fingerprints also match. Bodies are excluded (they
/// are what the fingerprints compare); names are excluded so renames stay
/// warm, the same policy as `method_fingerprint`.
pub fn context_digest(module: &Module) -> (u64, u64) {
    let mut h = FingerprintWriter::new();
    for k in module.store.kinds() {
        write!(h, "{k:?};").expect("hash writer never fails");
    }
    write!(h, "|{:?}|{:?}|{:?}|{:?}|{}", module.hier, module.classes, module.globals, module.main, module.methods.len())
        .expect("hash writer never fails");
    for m in &module.methods {
        write!(h, "|{:?}|{:?}|{:?}|{:?}|{}", m.owner, m.is_private, m.kind, m.type_params, m.param_count)
            .expect("hash writer never fails");
        for l in &m.locals[..m.param_count] {
            write!(h, ",{:?}", l.ty).expect("hash writer never fails");
        }
        write!(h, "|{:?}|{:?}", m.ret, m.vtable_index).expect("hash writer never fails");
    }
    (h.a, h.b)
}

/// Cache effectiveness counters for one pass over one module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Methods with bodies that were looked up.
    pub lookups: usize,
    /// Duplicates that skipped the pass (result copied from their
    /// representative).
    pub hits: usize,
    /// Unique representatives that did the work.
    pub unique: usize,
}

impl CacheStats {
    /// Hits per lookup, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Accumulates another pass's counters.
    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.unique += other.unique;
    }
}

/// The duplicate-instance map for one module: `rep[i]` is the index of the
/// first method whose fingerprint equals method `i`'s (`rep[i] == i` for
/// representatives and for methods without bodies).
#[derive(Clone, Debug, Default)]
pub struct DupMap {
    /// Representative index per method.
    pub rep: Vec<usize>,
    /// Lookup/hit counters from building the map.
    pub stats: CacheStats,
}

impl DupMap {
    /// The identity map (cache disabled): every method represents itself.
    pub fn identity(n: usize) -> DupMap {
        DupMap { rep: (0..n).collect(), stats: CacheStats::default() }
    }

    /// True if `i` is a duplicate of an earlier method.
    pub fn is_dup(&self, i: usize) -> bool {
        self.rep[i] != i
    }
}

/// Upper bound on the number of lock stripes in a [`ShardedIndex`]. More
/// stripes than this buys nothing: the pool is capped well below the point
/// where 16 mutexes see meaningful collision.
pub const MAX_SHARDS: usize = 16;

/// A lock-striped fingerprint → first-index map shared across pool workers.
///
/// The pre-sharding design funneled every fingerprint through one mutex,
/// which serialized the hash phase exactly when jobs was high. Keys are
/// spread over `min(16, jobs)` independent [`Mutex`]-guarded shards by the
/// fingerprint's **high byte** — the FNV stream diffuses content into the
/// high bits as well as the low ones, and taking bits the in-shard
/// `HashMap` doesn't also consume keeps the two levels independent.
///
/// Determinism does not come from locking order — it comes from
/// [`ShardedIndex::insert_min`]'s *minimum-index-wins* rule, which makes
/// the final map a pure function of the inserted set: whatever order
/// threads arrive in, each key ends up mapped to the smallest index ever
/// inserted for it, exactly what a serial first-seen scan in index order
/// would produce.
pub struct ShardedIndex {
    shards: Vec<Mutex<HashMap<(u64, u64), usize>>>,
}

impl ShardedIndex {
    /// Creates an index striped over `min(16, jobs)` shards (at least 1).
    pub fn new(jobs: usize) -> ShardedIndex {
        let n = jobs.clamp(1, MAX_SHARDS);
        ShardedIndex { shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: (u64, u64)) -> usize {
        ((key.0 >> 56) as usize) % self.shards.len()
    }

    /// Records that method `index` has fingerprint `key`, keeping the
    /// **minimum** index seen for the key, and returns that minimum.
    /// Commutative and idempotent, so concurrent insertion from any number
    /// of threads converges to the same map as a serial index-order scan.
    pub fn insert_min(&self, key: (u64, u64), index: usize) -> usize {
        let mut shard =
            self.shards[self.shard_of(key)].lock().expect("cache shard poisoned");
        let slot = shard.entry(key).or_insert(index);
        if index < *slot {
            *slot = index;
        }
        *slot
    }

    /// The representative (minimum inserted) index for `key`, if any.
    pub fn get(&self, key: (u64, u64)) -> Option<usize> {
        self.shards[self.shard_of(key)]
            .lock()
            .expect("cache shard poisoned")
            .get(&key)
            .copied()
    }

    /// Total number of distinct keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").len()).sum()
    }

    /// True when no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds the duplicate map for `module`: workers fingerprint method bodies
/// and publish `(fingerprint, index)` into a [`ShardedIndex`] concurrently;
/// a serial scan then resolves every method to its group's minimum index.
/// Both halves are order-independent (hashing is read-only, `insert_min`
/// is commutative), so the map is identical at every jobs count.
pub fn dup_groups(module: &Module, jobs: usize) -> (DupMap, Vec<WorkerSample>) {
    let index = ShardedIndex::new(jobs);
    let (prints, workers) = sched::par_map_ctx(
        jobs,
        "hash",
        &module.methods,
        || (),
        |_, i, m: &Method| {
            m.body.as_ref().map(|_| {
                let key = method_fingerprint(m);
                index.insert_min(key, i);
                key
            })
        },
    );
    let mut rep: Vec<usize> = (0..module.methods.len()).collect();
    let mut stats = CacheStats::default();
    for (i, print) in prints.into_iter().enumerate() {
        let Some(key) = print else { continue };
        stats.lookups += 1;
        let r = index.get(key).expect("fingerprint published during hashing");
        rep[i] = r;
        if r == i {
            stats.unique += 1;
        } else {
            stats.hits += 1;
        }
    }
    (DupMap { rep, stats }, workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_streams_are_independent_and_stable() {
        let mut h1 = FingerprintWriter::new();
        write!(h1, "abc").unwrap();
        let mut h2 = FingerprintWriter::new();
        write!(h2, "a").unwrap();
        write!(h2, "bc").unwrap();
        // Chunking must not matter.
        assert_eq!((h1.a, h1.b), (h2.a, h2.b));
        let mut h3 = FingerprintWriter::new();
        write!(h3, "abd").unwrap();
        assert_ne!((h1.a, h1.b), (h3.a, h3.b));
    }

    #[test]
    fn identity_map_has_no_dups() {
        let m = DupMap::identity(5);
        for i in 0..5 {
            assert!(!m.is_dup(i));
        }
        assert_eq!(m.stats.hits, 0);
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let s = CacheStats { lookups: 4, hits: 3, unique: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn sharded_index_shard_counts() {
        assert_eq!(ShardedIndex::new(0).shard_count(), 1);
        assert_eq!(ShardedIndex::new(1).shard_count(), 1);
        assert_eq!(ShardedIndex::new(8).shard_count(), 8);
        assert_eq!(ShardedIndex::new(64).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn insert_min_keeps_minimum_in_any_order() {
        let idx = ShardedIndex::new(4);
        let key = (0xAB00_0000_0000_0001, 7);
        assert_eq!(idx.insert_min(key, 9), 9);
        assert_eq!(idx.insert_min(key, 3), 3);
        assert_eq!(idx.insert_min(key, 5), 3);
        assert_eq!(idx.get(key), Some(3));
        assert_eq!(idx.get((0, 0)), None);
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
    }

    /// Deterministic op stream for the stress test: `(key, index)` pairs
    /// drawn from a small key pool whose fingerprints all share one high
    /// byte, so every operation lands on the **same shard** — the worst
    /// case for stripe contention.
    fn stress_op(thread: u64, step: u64) -> ((u64, u64), usize) {
        // xorshift-style mix, pure function of (thread, step).
        let mut x = thread.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ step;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // 64 distinct keys, identical top byte 0xCC → one shard for all.
        let key = (0xCC00_0000_0000_0000 | (x % 64), 0x5EED ^ (x % 64));
        (key, (x >> 8) as usize % 10_000)
    }

    #[test]
    fn sharded_index_stress_matches_serial_replay() {
        const THREADS: u64 = 8;
        const OPS: u64 = 10_000;
        let idx = ShardedIndex::new(8);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let idx = &idx;
                s.spawn(move || {
                    for step in 0..OPS {
                        let (key, i) = stress_op(t, step);
                        if step % 3 == 2 {
                            // Mixed lookup: whatever is present must never
                            // exceed any index this thread already
                            // inserted for the key (minimum only falls).
                            if let Some(r) = idx.get(key) {
                                assert!(r < 10_000);
                            }
                        } else {
                            let r = idx.insert_min(key, i);
                            assert!(r <= i, "returned rep above inserted index");
                        }
                    }
                });
            }
        });
        // Serial replay: the final map must equal the plain min over every
        // inserted pair — no lost inserts, no stale minima.
        let mut expect: HashMap<(u64, u64), usize> = HashMap::new();
        for t in 0..THREADS {
            for step in 0..OPS {
                if step % 3 == 2 {
                    continue;
                }
                let (key, i) = stress_op(t, step);
                let slot = expect.entry(key).or_insert(i);
                *slot = (*slot).min(i);
            }
        }
        assert_eq!(idx.len(), expect.len());
        for (key, min) in expect {
            assert_eq!(idx.get(key), Some(min), "lost or wrong insert for {key:?}");
        }
    }
}
