//! Persistent cross-request content-addressed store with bounded LRU
//! eviction — the per-invocation pass cache ([`crate::cache`]) promoted to
//! daemon lifetime.
//!
//! [`crate::cache::ShardedIndex`] answers "which method in *this* compile
//! is the representative for this fingerprint"; it lives and dies with one
//! `compile()` call. A compile server wants the complement: artifacts that
//! outlive the request that produced them, keyed by the same
//! content-addressed fingerprints, shared between concurrent sessions, and
//! bounded so a long-lived daemon cannot grow without limit.
//!
//! [`ShardedLru`] is that store: lock-striped like `ShardedIndex` (a shard
//! per high byte of the key hash, capped at [`MAX_SHARDS`]), each shard an
//! LRU map holding `Arc<V>` values. Publication is first-writer-wins —
//! values are content-addressed, so two racing publishers for one key are
//! by construction publishing interchangeable values, and keeping the
//! incumbent maximizes sharing (the loser's allocation is dropped, exactly
//! like `insert_min` discards the higher index). Recency is tracked per
//! shard: a `get` or re-`insert` refreshes the entry, and inserting into a
//! full shard evicts that shard's least-recently-used entry. The size
//! bound is therefore per-shard (`capacity` total spread over the shards);
//! pressure on one shard never evicts another shard's hot entries.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use crate::cache::MAX_SHARDS;

/// Aggregate counters across all shards of a [`ShardedLru`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` calls.
    pub lookups: usize,
    /// `get` calls that found a live entry.
    pub hits: usize,
    /// `insert` calls that created a new entry (not counting refreshes).
    pub inserts: usize,
    /// Entries evicted by capacity pressure.
    pub evictions: usize,
}

impl StoreStats {
    /// Hits per lookup, 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// One lock-striped shard: key → (value, recency tick), plus a recency
/// index (tick → key) so eviction is O(log n), not a scan.
struct LruShard<K, V> {
    map: HashMap<K, (Arc<V>, u64)>,
    order: BTreeMap<u64, K>,
    tick: u64,
    stats: StoreStats,
}

impl<K: Eq + Hash + Clone, V> LruShard<K, V> {
    fn new() -> LruShard<K, V> {
        LruShard {
            map: HashMap::new(),
            order: BTreeMap::new(),
            tick: 0,
            stats: StoreStats::default(),
        }
    }

    fn touch(&mut self, key: &K) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, t)) = self.map.get_mut(key) {
            self.order.remove(t);
            *t = tick;
            self.order.insert(tick, key.clone());
        }
    }

    fn get(&mut self, key: &K) -> Option<Arc<V>> {
        self.stats.lookups += 1;
        if self.map.contains_key(key) {
            self.touch(key);
            self.stats.hits += 1;
            self.map.get(key).map(|(v, _)| Arc::clone(v))
        } else {
            None
        }
    }

    fn insert(&mut self, key: K, value: V, capacity: usize) -> Arc<V> {
        if self.map.contains_key(&key) {
            // First writer wins: the incumbent is content-equal (the store
            // is content-addressed), and keeping it maximizes Arc sharing.
            self.touch(&key);
            return Arc::clone(&self.map[&key].0);
        }
        while self.map.len() >= capacity.max(1) {
            let Some((_, victim)) = self.order.pop_first() else { break };
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
        self.tick += 1;
        let value = Arc::new(value);
        self.map.insert(key.clone(), (Arc::clone(&value), self.tick));
        self.order.insert(self.tick, key);
        self.stats.inserts += 1;
        value
    }
}

/// A bounded, sharded, content-addressed LRU store. See the module docs.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    per_shard: usize,
}

impl<K: Eq + Hash + Clone, V> ShardedLru<K, V> {
    /// A store holding at most `capacity` entries, striped over
    /// `min(shards, MAX_SHARDS)` locks. Each shard holds at most
    /// `ceil(capacity / shards)` entries, so the total bound is exact when
    /// `shards` divides `capacity` and within `shards - 1` otherwise.
    pub fn with_shards(capacity: usize, shards: usize) -> ShardedLru<K, V> {
        let n = shards.clamp(1, MAX_SHARDS);
        let per_shard = capacity.div_ceil(n).max(1);
        ShardedLru {
            shards: (0..n).map(|_| Mutex::new(LruShard::new())).collect(),
            per_shard,
        }
    }

    /// A store holding at most `capacity` entries with the default stripe
    /// count ([`MAX_SHARDS`], the `ShardedIndex` layout).
    pub fn new(capacity: usize) -> ShardedLru<K, V> {
        ShardedLru::with_shards(capacity, MAX_SHARDS)
    }

    fn shard_of(&self, key: &K) -> &Mutex<LruShard<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let i = (h.finish() >> 56) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        self.shard_of(key).lock().expect("lru shard poisoned").get(key)
    }

    /// Publishes `value` under `key`. If the key is already present the
    /// incumbent value wins (its recency refreshed) and `value` is
    /// dropped; otherwise the shard's least-recently-used entry is evicted
    /// first when the shard is full. Returns the stored `Arc`.
    pub fn insert(&self, key: K, value: V) -> Arc<V> {
        self.shard_of(&key)
            .lock()
            .expect("lru shard poisoned")
            .insert(key, value, self.per_shard)
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("lru shard poisoned").map.len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries the store can hold (per-shard cap × shard count).
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Aggregated counters across shards.
    pub fn stats(&self) -> StoreStats {
        let mut out = StoreStats::default();
        for s in &self.shards {
            let s = s.lock().expect("lru shard poisoned");
            out.lookups += s.stats.lookups;
            out.hits += s.stats.hits;
            out.inserts += s.stats.inserts;
            out.evictions += s.stats.evictions;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_one_keeps_only_the_latest() {
        let lru: ShardedLru<u32, u32> = ShardedLru::with_shards(1, 1);
        lru.insert(1, 10);
        assert_eq!(lru.get(&1).as_deref(), Some(&10));
        lru.insert(2, 20);
        assert_eq!(lru.len(), 1, "capacity-1 store holds one entry");
        assert_eq!(lru.get(&1), None, "old entry evicted");
        assert_eq!(lru.get(&2).as_deref(), Some(&20));
        assert_eq!(lru.stats().evictions, 1);
    }

    #[test]
    fn reinsertion_refreshes_recency() {
        let lru: ShardedLru<u32, u32> = ShardedLru::with_shards(2, 1);
        lru.insert(1, 10);
        lru.insert(2, 20);
        // Re-inserting 1 refreshes it; inserting 3 must now evict 2.
        lru.insert(1, 99);
        lru.insert(3, 30);
        assert_eq!(lru.get(&1).as_deref(), Some(&10), "incumbent value wins, entry survives");
        assert_eq!(lru.get(&2), None, "LRU entry 2 evicted");
        assert_eq!(lru.get(&3).as_deref(), Some(&30));
    }

    #[test]
    fn get_refreshes_recency() {
        let lru: ShardedLru<u32, u32> = ShardedLru::with_shards(2, 1);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.get(&1);
        lru.insert(3, 30);
        assert_eq!(lru.get(&1).as_deref(), Some(&10), "touched entry survives");
        assert_eq!(lru.get(&2), None, "untouched entry evicted");
    }

    #[test]
    fn first_writer_wins_shares_the_incumbent_arc() {
        let lru: ShardedLru<u32, String> = ShardedLru::with_shards(4, 1);
        let a = lru.insert(7, "seven".to_string());
        let b = lru.insert(7, "seven".to_string());
        assert!(Arc::ptr_eq(&a, &b), "second publish returns the incumbent");
        assert_eq!(lru.stats().inserts, 1);
    }

    /// Deterministic op mix, same idiom as the `ShardedIndex` stress test:
    /// 8 threads × 10k ops of interleaved publishes and lookups under
    /// heavy eviction pressure (capacity far below the key range). The
    /// store is content-addressed (value is derived from the key), so
    /// every hit must return exactly the value its key maps to, the size
    /// bound must hold at every step a thread can observe, and the
    /// counters must reconcile.
    #[test]
    fn sharded_lru_stress_under_eviction_pressure() {
        const THREADS: usize = 8;
        const OPS: usize = 10_000;
        let lru: ShardedLru<u64, u64> = ShardedLru::with_shards(64, 8);
        let bound = lru.capacity();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let lru = &lru;
                s.spawn(move || {
                    // xorshift64*, seeded per thread — deterministic run.
                    let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ (t as u64 + 1);
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 512; // 512 keys over capacity 64+
                        if x & 1 == 0 {
                            let v = lru.insert(key, key.wrapping_mul(0x5bd1_e995));
                            assert_eq!(*v, key.wrapping_mul(0x5bd1_e995));
                        } else if let Some(v) = lru.get(&key) {
                            assert_eq!(
                                *v,
                                key.wrapping_mul(0x5bd1_e995),
                                "content-addressed hit returned a foreign value"
                            );
                        }
                        assert!(lru.len() <= bound, "size bound violated");
                    }
                });
            }
        });
        let st = lru.stats();
        assert!(st.hits <= st.lookups);
        assert!(st.evictions > 0, "eviction pressure was real");
        assert!(lru.len() <= bound);
    }
}
