//! # vgl-passes
//!
//! The compiler passes of virgil-rs, reproducing Section 4 of the paper:
//!
//! * [`monomorphize`] — §4.3: specialize every polymorphic class and method
//!   per distinct type-argument assignment; afterwards **no type parameters
//!   appear in the program** ([`vgl_ir::check_monomorphic`] verifies).
//! * [`normalize`] — §4.2: flatten every tuple to scalars across parameters,
//!   returns, locals, fields, arrays; afterwards the program needs **no
//!   implicit heap allocation** and no dynamic calling-convention checks
//!   ([`vgl_ir::check_normalized`] verifies).
//! * [`optimize`] — the §3.3 claim: statically decide type queries/casts,
//!   fold the resulting branches, remove dead code, devirtualize.
//!
//! The composition `monomorphize → normalize → optimize` is the paper's
//! static compilation pipeline; [`compile_pipeline`] packages it.

#![warn(missing_docs)]

pub mod cache;
mod mono;
mod normalize;
mod optimize;
pub mod sched;
pub mod store;

pub use cache::{context_digest, module_fingerprint, CacheStats};
pub use mono::{monomorphize, monomorphize_streamed, MonoStats};
pub use normalize::{normalize, normalize_cfg, NormStats};
pub use optimize::{optimize, optimize_cfg, optimize_cfg_masked, OptStats};
pub use store::{ShardedLru, StoreStats};

use std::time::Duration;
use vgl_ir::Module;
use vgl_obs::{FieldValue, PhaseTrace, Tracer, WorkerSample};

/// Configuration for the parallel, cached back-end passes (normalize,
/// optimize, fuse). `jobs` is the *effective* worker count — resolve a
/// user request (0 = auto) through [`sched::resolve_jobs`] first.
///
/// Determinism contract: no field changes compiled output. `jobs` moves
/// work between threads; `cache` skips recomputation whose result is
/// copied from a content-identical representative instead; `chunking`
/// switches the pool between per-item claiming and cost-balanced
/// chunk-granular claiming (same items, same merge order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendConfig {
    /// Worker threads for the parallel phases (>= 1).
    pub jobs: usize,
    /// Enable the per-instance pass cache.
    pub cache: bool,
    /// Schedule parallel phases in cost-balanced chunks
    /// ([`sched::plan_chunks`]) instead of one atomic claim per item.
    pub chunking: bool,
}

impl Default for BackendConfig {
    fn default() -> BackendConfig {
        BackendConfig { jobs: 1, cache: true, chunking: true }
    }
}

/// What the back end did beyond the module itself: cache effectiveness per
/// pass and worker-attributed spans for `vgl-obs`.
#[derive(Clone, Debug, Default)]
pub struct BackendReport {
    /// Effective worker count the passes ran with.
    pub jobs: usize,
    /// Instance-cache counters from normalize.
    pub norm_cache: CacheStats,
    /// Instance-cache counters from optimize (per-pipeline, counted once at
    /// grouping, not per fixpoint round).
    pub opt_cache: CacheStats,
    /// Per-worker spans from every parallel phase, in commit order.
    pub workers: Vec<WorkerSample>,
    /// The duplicate-instance map normalize discovered, handed forward so
    /// optimize fingerprints the module at most once per pipeline.
    /// Normalize copies each duplicate's flattened result from its
    /// representative, so the grouping stays exact across the pass; methods
    /// appended later (synthesized wrappers) are treated as unique. Only
    /// valid for the module the same report was passed through.
    pub dup_map: Option<cache::DupMap>,
}

/// Wall-clock durations of the three pipeline passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassTimes {
    /// Monomorphization time.
    pub mono: Duration,
    /// Normalization time.
    pub norm: Duration,
    /// Optimization time.
    pub opt: Duration,
}

impl PassTimes {
    /// Total pipeline pass time.
    pub fn total(&self) -> Duration {
        self.mono + self.norm + self.opt
    }
}

/// Combined statistics from a full pipeline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Monomorphization statistics.
    pub mono: MonoStats,
    /// Normalization statistics.
    pub norm: NormStats,
    /// Optimizer statistics.
    pub opt: OptStats,
    /// IR size before any pass.
    pub size_before: vgl_ir::ModuleSize,
    /// IR size after monomorphization.
    pub size_after_mono: vgl_ir::ModuleSize,
    /// IR size after the full pipeline.
    pub size_after: vgl_ir::ModuleSize,
    /// Per-pass wall-clock durations.
    pub times: PassTimes,
}

/// [`monomorphize`] under a [`BackendConfig`]: with the cache enabled,
/// instance expansion streams each finished method to hash workers over a
/// bounded channel ([`monomorphize_streamed`]), so the duplicate-instance
/// map normalize needs is ready the moment mono returns — it lands in
/// `report.dup_map` and [`normalize_cfg`] picks it up instead of
/// re-fingerprinting. Output module and map are identical at every jobs
/// count and to the unstreamed path.
pub fn monomorphize_cfg(
    module: &Module,
    cfg: &BackendConfig,
    report: &mut BackendReport,
) -> (Module, MonoStats) {
    if cfg.cache {
        let (m, stats, dup, workers) = monomorphize_streamed(module, cfg.jobs);
        report.workers.extend(workers);
        // The stats ride with the map; normalize_cfg counts them into
        // `norm_cache` when it consumes it (no double count here).
        report.dup_map = Some(dup);
        (m, stats)
    } else {
        monomorphize(module)
    }
}

/// Runs the full static pipeline (mono → norm → opt), verifying the §4
/// invariants along the way.
///
/// # Panics
/// Panics if a pass breaks its invariant — that is a compiler bug, not a
/// user error.
pub fn compile_pipeline(module: &Module) -> (Module, PipelineStats) {
    compile_pipeline_traced(module, &mut Tracer::disabled())
}

/// [`compile_pipeline`], emitting one span per pass (with IR node counts
/// in/out and per-pass statistics) into `tracer`. With a disabled tracer the
/// only overhead is six `Instant::now()` reads for [`PassTimes`].
pub fn compile_pipeline_traced(
    module: &Module,
    tracer: &mut Tracer<'_>,
) -> (Module, PipelineStats) {
    let mut trace = PhaseTrace::new();
    let mut stats = PipelineStats {
        size_before: vgl_ir::measure(module),
        ..PipelineStats::default()
    };
    let nodes_before = stats.size_before.expr_nodes;

    let (mut m, mono_stats) =
        trace.time("mono", nodes_before, || monomorphize(module), |(m, _)| {
            vgl_ir::measure(m).expr_nodes
        });
    stats.mono = mono_stats;
    stats.size_after_mono = vgl_ir::measure(&m);
    let violations = vgl_ir::check_monomorphic(&m);
    assert!(
        violations.is_empty(),
        "monomorphization left type parameters: {violations:#?}"
    );

    let nodes_mono = stats.size_after_mono.expr_nodes;
    stats.norm = trace.time("normalize", nodes_mono, || normalize(&mut m), |_| 0);
    let nodes_norm = vgl_ir::measure(&m).expr_nodes;
    trace.set_items_out("normalize", nodes_norm);
    let violations = vgl_ir::check_normalized(&m);
    assert!(
        violations.is_empty(),
        "normalization left tuples: {violations:#?}"
    );

    stats.opt = trace.time("optimize", nodes_norm, || optimize(&mut m), |_| 0);
    stats.size_after = vgl_ir::measure(&m);
    trace.set_items_out("optimize", stats.size_after.expr_nodes);
    let violations = vgl_ir::check_normalized(&m);
    assert!(
        violations.is_empty(),
        "optimizer broke normalization invariants: {violations:#?}"
    );

    stats.times = PassTimes {
        mono: trace.phases[0].duration,
        norm: trace.phases[1].duration,
        opt: trace.phases[2].duration,
    };
    if tracer.enabled() {
        emit_pass_spans(&trace, &stats, tracer);
    }
    (m, stats)
}

fn emit_pass_spans(trace: &PhaseTrace, stats: &PipelineStats, tracer: &mut Tracer<'_>) {
    for p in &trace.phases {
        let span = tracer.start(p.name);
        let mut fields = vec![
            ("nodes_in", FieldValue::UInt(p.items_in as u64)),
            ("nodes_out", FieldValue::UInt(p.items_out as u64)),
            ("dur_us", FieldValue::Float(p.duration.as_secs_f64() * 1e6)),
        ];
        match p.name {
            "mono" => fields.push((
                "method_instances",
                FieldValue::UInt(stats.mono.method_instances as u64),
            )),
            "normalize" => fields.push((
                "tuple_exprs_removed",
                FieldValue::UInt(stats.norm.tuple_exprs_removed as u64),
            )),
            "optimize" => fields.push((
                "queries_folded",
                FieldValue::UInt(stats.opt.queries_folded as u64),
            )),
            _ => {}
        }
        tracer.finish(span, &fields);
    }
}
