//! # vgl-passes
//!
//! The compiler passes of virgil-rs, reproducing Section 4 of the paper:
//!
//! * [`monomorphize`] — §4.3: specialize every polymorphic class and method
//!   per distinct type-argument assignment; afterwards **no type parameters
//!   appear in the program** ([`vgl_ir::check_monomorphic`] verifies).
//! * [`normalize`] — §4.2: flatten every tuple to scalars across parameters,
//!   returns, locals, fields, arrays; afterwards the program needs **no
//!   implicit heap allocation** and no dynamic calling-convention checks
//!   ([`vgl_ir::check_normalized`] verifies).
//! * [`optimize`] — the §3.3 claim: statically decide type queries/casts,
//!   fold the resulting branches, remove dead code, devirtualize.
//!
//! The composition `monomorphize → normalize → optimize` is the paper's
//! static compilation pipeline; [`compile_pipeline`] packages it.

#![warn(missing_docs)]

mod mono;
mod normalize;
mod optimize;

pub use mono::{monomorphize, MonoStats};
pub use normalize::{normalize, NormStats};
pub use optimize::{optimize, OptStats};

use vgl_ir::Module;

/// Combined statistics from a full pipeline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Monomorphization statistics.
    pub mono: MonoStats,
    /// Normalization statistics.
    pub norm: NormStats,
    /// Optimizer statistics.
    pub opt: OptStats,
    /// IR size before any pass.
    pub size_before: vgl_ir::ModuleSize,
    /// IR size after monomorphization.
    pub size_after_mono: vgl_ir::ModuleSize,
    /// IR size after the full pipeline.
    pub size_after: vgl_ir::ModuleSize,
}

/// Runs the full static pipeline (mono → norm → opt), verifying the §4
/// invariants along the way.
///
/// # Panics
/// Panics if a pass breaks its invariant — that is a compiler bug, not a
/// user error.
pub fn compile_pipeline(module: &Module) -> (Module, PipelineStats) {
    let mut stats = PipelineStats {
        size_before: vgl_ir::measure(module),
        ..PipelineStats::default()
    };
    let (mut m, mono_stats) = monomorphize(module);
    stats.mono = mono_stats;
    stats.size_after_mono = vgl_ir::measure(&m);
    let violations = vgl_ir::check_monomorphic(&m);
    assert!(
        violations.is_empty(),
        "monomorphization left type parameters: {violations:#?}"
    );
    stats.norm = normalize(&mut m);
    let violations = vgl_ir::check_normalized(&m);
    assert!(
        violations.is_empty(),
        "normalization left tuples: {violations:#?}"
    );
    stats.opt = optimize(&mut m);
    let violations = vgl_ir::check_normalized(&m);
    assert!(
        violations.is_empty(),
        "optimizer broke normalization invariants: {violations:#?}"
    );
    stats.size_after = vgl_ir::measure(&m);
    (m, stats)
}
