//! The optimizer: constant folding, type-query/cast folding, branch folding,
//! dead-statement elimination, and devirtualization.
//!
//! This realizes the §3.3 claim: "the compiler will specialize the
//! parameterized method for each unique type argument, then optimize each
//! version independently. The type queries and casts in each version can be
//! decided statically, the chain of if statements will be folded away, and
//! only a call to the corresponding version remains" — after
//! monomorphization, `int.?(a: int)` folds to `true`, `bool.?(a: int)` to
//! `false`, and the `if` chain collapses to a direct call.
//!
//! The optimizer is designed to run on normalized modules, where argument
//! pieces are effect-free, making identity-cast removal and branch folding
//! sound without effect analysis.

use crate::cache::{self, DupMap};
use crate::{sched, BackendConfig, BackendReport};
use vgl_ir::ops::{self, Exception};
use vgl_ir::visit::rewrite_exprs;
use vgl_ir::{Expr, ExprKind, Method, MethodId, MethodKind, Module, Oper, Stmt};
use vgl_obs::WorkerSample;
use vgl_types::{CastRelation, ClassId, Hierarchy, TypeKind, TypeStore};

/// Optimizer statistics (experiment E3 narrates these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Constant operations folded.
    pub consts_folded: usize,
    /// Type queries decided statically.
    pub queries_folded: usize,
    /// Casts removed (subsumption) or turned into traps (impossible).
    pub casts_folded: usize,
    /// `if`/ternary/short-circuit branches decided statically.
    pub branches_folded: usize,
    /// Statements removed as dead.
    pub dead_stmts_removed: usize,
    /// Virtual calls rewritten to direct calls.
    pub devirtualized: usize,
    /// Small leaf methods inlined at direct call sites.
    pub inlined: usize,
}

/// Runs the optimizer in place until a fixpoint (bounded), serially with
/// the instance cache on. Equivalent to [`optimize_cfg`] with the default
/// [`BackendConfig`] — the output is identical at any jobs count.
pub fn optimize(module: &mut Module) -> OptStats {
    optimize_cfg(module, &BackendConfig::default(), &mut BackendReport::default())
}

/// [`optimize`] with explicit parallelism and caching.
///
/// Each fixpoint round snapshots the devirt/inline tables, rewrites every
/// *representative* method body on `cfg.jobs` workers (each with a private
/// clone of the type store — interning is the only store mutation folding
/// performs, and fold decisions never depend on ids interned mid-round),
/// then commits results in method-index order and copies duplicates from
/// their representatives. Statistics count work actually performed, so a
/// cache hit reduces the counters; cache effectiveness is reported
/// separately in `report.opt_cache`.
pub fn optimize_cfg(
    module: &mut Module,
    cfg: &BackendConfig,
    report: &mut BackendReport,
) -> OptStats {
    optimize_cfg_masked(module, cfg, report, None)
}

/// [`optimize_cfg`] with an external skip mask: methods with `skip[i]`
/// true are neither rewritten nor copied into. The daemon's warm path uses
/// this for methods whose **post-optimize** bodies were already spliced in
/// from the persistent store (same context digest + fingerprint), so
/// re-optimizing them would be wasted work; their spliced bodies still
/// participate in the devirtualization/inline tables other methods fold
/// against, which is what keeps warm output byte-identical to cold.
///
/// The mask must be duplicate-consistent: a method and its representative
/// share a fingerprint, so they must share a mask bit (debug-asserted).
pub fn optimize_cfg_masked(
    module: &mut Module,
    cfg: &BackendConfig,
    report: &mut BackendReport,
    skip: Option<&[bool]>,
) -> OptStats {
    let dup = if cfg.cache {
        match report.dup_map.take() {
            // Normalize already grouped this module; extend the map over
            // any methods appended since (synthesized wrappers, each
            // unique) instead of re-fingerprinting everything.
            Some(mut dup) if dup.rep.len() <= module.methods.len() => {
                for i in dup.rep.len()..module.methods.len() {
                    dup.rep.push(i);
                    if module.methods[i].body.is_some() {
                        dup.stats.lookups += 1;
                        dup.stats.unique += 1;
                    }
                }
                dup
            }
            _ => {
                let (dup, hash_workers) = cache::dup_groups(module, cfg.jobs);
                report.workers.extend(hash_workers);
                dup
            }
        }
    } else {
        DupMap::identity(module.methods.len())
    };
    report.opt_cache.merge(&dup.stats);
    if let Some(mask) = skip {
        debug_assert_eq!(mask.len(), module.methods.len(), "mask covers every method");
        debug_assert!(
            (0..module.methods.len()).all(|i| mask[dup.rep[i]] == mask[i]),
            "skip mask must be duplicate-consistent"
        );
    }
    let mut stats = OptStats::default();
    for _ in 0..8 {
        let before = stats;
        one_round(module, cfg, &dup, skip, &mut stats, &mut report.workers);
        if stats == before {
            break;
        }
    }
    stats
}

/// Everything `fold_expr` needs from the module, split so parallel workers
/// can fold against a shared read-only method/hierarchy view with a
/// worker-private type store (the only part folding mutates, via
/// `cast_relation` interning).
struct FoldCx<'a> {
    store: &'a mut TypeStore,
    hier: &'a Hierarchy,
    methods: &'a [Method],
}

fn add_stats(dst: &mut OptStats, s: &OptStats) {
    dst.consts_folded += s.consts_folded;
    dst.queries_folded += s.queries_folded;
    dst.casts_folded += s.casts_folded;
    dst.branches_folded += s.branches_folded;
    dst.dead_stmts_removed += s.dead_stmts_removed;
    dst.devirtualized += s.devirtualized;
    dst.inlined += s.inlined;
}

fn one_round(
    module: &mut Module,
    cfg: &BackendConfig,
    dup: &DupMap,
    skip: Option<&[bool]>,
    stats: &mut OptStats,
    worker_log: &mut Vec<WorkerSample>,
) {
    let skipped = |i: usize| skip.is_some_and(|m| m[i]);
    // Devirtualization table: (declared method slot) → unique target if any.
    let devirt = build_devirt_table(module);
    // Inline candidates: single-`Return(expr)` leaf bodies referencing only
    // their parameters ("only a call to the corresponding version remains,
    // which the compiler may then inline" — §3.3).
    let inline = build_inline_table(module);
    // Rewrite representative bodies only; duplicates are copied afterwards.
    let items: Vec<usize> = (0..module.methods.len())
        .filter(|&i| module.methods[i].body.is_some() && !dup.is_dup(i) && !skipped(i))
        .collect();
    let m_ref: &Module = module;
    let run_item = |store: &mut TypeStore, _: usize, &i: &usize| {
        let m = &m_ref.methods[i];
        let mut body = m.body.clone().expect("scheduled method has a body");
        let mut locals = m.locals.clone();
        let mut st = OptStats::default();
        let mut cx = FoldCx { store, hier: &m_ref.hier, methods: &m_ref.methods };
        rewrite_exprs(&mut body, &mut |e| {
            let e = fold_expr(&mut cx, e, &devirt, &mut st);
            inline_expr(e, MethodId(i as u32), &inline, &mut locals, &mut st)
        });
        fold_stmts(&mut body.stmts, &mut st);
        (body, locals, st)
    };
    let mk_ctx = || m_ref.store.clone();
    let (results, samples) = if cfg.chunking {
        let costs: Vec<u64> = items
            .iter()
            .map(|&i| {
                vgl_ir::method_cost(&m_ref.methods[i])
                    * vgl_ir::metrics::pass_weight::OPTIMIZE
            })
            .collect();
        let plan = sched::plan_chunks(&costs, cfg.jobs);
        sched::par_map_chunks(cfg.jobs, "optimize", &items, &plan, mk_ctx, run_item)
    } else {
        sched::par_map_ctx(cfg.jobs, "optimize", &items, mk_ctx, run_item)
    };
    worker_log.extend(samples);
    // Commit in stable method-index order (items is ascending).
    for (&i, (body, locals, st)) in items.iter().zip(results) {
        module.methods[i].body = Some(body);
        module.methods[i].locals = locals;
        add_stats(stats, &st);
    }
    // Duplicates take their representative's result (reps always precede
    // their dups, so the source is already this round's output). Skipped
    // methods keep their spliced bodies (their reps are skipped too).
    for i in 0..module.methods.len() {
        if skipped(i) {
            continue;
        }
        let r = dup.rep[i];
        if r != i {
            let (body, locals) =
                (module.methods[r].body.clone(), module.methods[r].locals.clone());
            module.methods[i].body = body;
            module.methods[i].locals = locals;
        }
    }
    // Globals' initializers too (serial: there are few, and they may read
    // each other in declaration order anyway).
    let Module { store, hier, methods, globals, .. } = &mut *module;
    let mut cx = FoldCx { store, hier, methods };
    for g in globals.iter_mut() {
        let Some(init) = g.init.take() else { continue };
        let mut body = vgl_ir::Body { stmts: vec![Stmt::Expr(init)] };
        rewrite_exprs(&mut body, &mut |e| fold_expr(&mut cx, e, &devirt, stats));
        let Some(Stmt::Expr(e)) = body.stmts.pop() else { unreachable!() };
        g.init = Some(e);
    }
}

/// Maximum expression nodes in an inlinable leaf body.
const INLINE_LIMIT: usize = 16;

/// An inline candidate: parameter count and the returned expression.
#[derive(Clone)]
struct InlineBody {
    param_count: usize,
    expr: Expr,
}

/// Finds single-return leaf methods whose body references only parameters.
fn build_inline_table(module: &Module) -> Vec<Option<InlineBody>> {
    module
        .methods
        .iter()
        .enumerate()
        .map(|(i, m)| {
            if module.main == Some(MethodId(i as u32)) {
                return None;
            }
            let body = m.body.as_ref()?;
            let [Stmt::Return(Some(e))] = body.stmts.as_slice() else {
                return None;
            };
            // Multi-value returns are a boundary form (Return(Tuple)); they
            // cannot be spliced into expression position.
            if matches!(e.kind, ExprKind::Tuple(_))
                || matches!(module.store.kind(e.ty), TypeKind::Tuple(_))
            {
                return None;
            }
            let mut nodes = 0;
            let mut ok = true;
            count_expr(e, &mut |x: &Expr| {
                nodes += 1;
                match &x.kind {
                    // No nested calls (keeps inlining one level and cheap),
                    // no local writes, no Lets.
                    ExprKind::CallStatic { .. }
                    | ExprKind::CallVirtual { .. }
                    | ExprKind::CallClosure { .. }
                    | ExprKind::CallBuiltin(..)
                    | ExprKind::New { .. }
                    | ExprKind::LocalSet(..)
                    | ExprKind::GlobalSet(..)
                    | ExprKind::Let { .. } => ok = false,
                    ExprKind::Local(l) if l.index() >= m.param_count => ok = false,
                    _ => {}
                }
            });
            if !ok || nodes > INLINE_LIMIT {
                return None;
            }
            Some(InlineBody { param_count: m.param_count, expr: e.clone() })
        })
        .collect()
}

fn count_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    for c in vgl_ir::visit::children(e) {
        count_expr(c, f);
    }
}

/// Rewrites a direct call to an inline candidate into a Let-chain.
fn inline_expr(
    e: Expr,
    caller: MethodId,
    table: &[Option<InlineBody>],
    caller_locals: &mut Vec<vgl_ir::Local>,
    stats: &mut OptStats,
) -> Expr {
    let ty = e.ty;
    let ExprKind::CallStatic { method, args, .. } = e.kind else {
        return e;
    };
    let candidate = if method == caller { None } else { table[method.index()].as_ref() };
    let Some(ib) = candidate else {
        return Expr::new(
            ExprKind::CallStatic { method, type_args: vec![], args },
            ty,
        );
    };
    debug_assert_eq!(args.len(), ib.param_count);
    // Fresh caller locals for the parameters.
    let base = caller_locals.len();
    for (j, a) in args.iter().enumerate() {
        caller_locals.push(vgl_ir::Local {
            name: format!("$in{}", base + j),
            ty: a.ty,
            mutable: true,
        });
    }
    // Body with parameter reads remapped.
    let mut body = ib.expr.clone();
    remap_locals(&mut body, base);
    // Wrap in Lets, innermost-first so evaluation order is left-to-right.
    let mut result = body;
    for (j, a) in args.into_iter().enumerate().rev() {
        let rty = result.ty;
        result = Expr::new(
            ExprKind::Let {
                local: vgl_ir::LocalId((base + j) as u32),
                value: Box::new(a),
                body: Box::new(result),
            },
            rty,
        );
    }
    stats.inlined += 1;
    result
}

/// Replaces every read of `local` in `e` with `value` (a constant).
fn subst_local(e: &mut Expr, local: vgl_ir::LocalId, value: &Expr) {
    if matches!(e.kind, ExprKind::Local(l) if l == local) {
        *e = value.clone();
        return;
    }
    vgl_ir::visit::for_each_child_mut(e, &mut |c| subst_local(c, local, value));
}

fn remap_locals(e: &mut Expr, base: usize) {
    if let ExprKind::Local(l) = &mut e.kind {
        *l = vgl_ir::LocalId((l.index() + base) as u32);
    }
    vgl_ir::visit::for_each_child_mut(e, &mut |c| remap_locals(c, base));
}

/// For each virtual slot, the unique implementing method across instantiable
/// classes, or `None` when several exist.
fn build_devirt_table(module: &Module) -> Vec<Option<MethodId>> {
    // Indexed by (declared method id): unique target considering every
    // non-abstract class whose vtable covers the slot of that method and
    // which is a subclass of the declaring owner.
    let n = module.methods.len();
    let mut unique: Vec<Option<Option<MethodId>>> = vec![None; n];
    for (mi, m) in module.methods.iter().enumerate() {
        let (Some(owner), Some(slot)) = (m.owner, m.vtable_index) else { continue };
        if m.is_private {
            continue;
        }
        let mut target: Option<Option<MethodId>> = None;
        for (ci, c) in module.classes.iter().enumerate() {
            if c.is_abstract || slot >= c.vtable.len() {
                continue;
            }
            if !module.hier.is_subclass(ClassId(ci as u32), owner) {
                continue;
            }
            let t = c.vtable[slot];
            if module.method(t).kind == MethodKind::Abstract {
                continue;
            }
            target = match target {
                None => Some(Some(t)),
                Some(Some(prev)) if prev == t => Some(Some(t)),
                _ => Some(None),
            };
        }
        unique[mi] = target;
    }
    unique.into_iter().map(|t| t.flatten()).collect()
}

fn as_const_int(e: &Expr) -> Option<i32> {
    match e.kind {
        ExprKind::Int(v) => Some(v),
        _ => None,
    }
}

fn as_const_bool(e: &Expr) -> Option<bool> {
    match e.kind {
        ExprKind::Bool(v) => Some(v),
        _ => None,
    }
}

fn is_pure(e: &Expr) -> bool {
    use ExprKind::*;
    match &e.kind {
        Int(_) | Byte(_) | Bool(_) | Unit | Null | Local(_) | Global(_) | OpClosure(_)
        | FuncRef { .. } | CtorRef { .. } | ArrayNewRef { .. } | BuiltinRef(_) => true,
        Apply(op, args) => {
            !matches!(op, Oper::IntDiv | Oper::IntMod | Oper::Cast { .. })
                && args.iter().all(is_pure)
        }
        And(a, b) | Or(a, b) => is_pure(a) && is_pure(b),
        Ternary { cond, then, els } => is_pure(cond) && is_pure(then) && is_pure(els),
        TupleIndex(b, _) => is_pure(b),
        Tuple(es) => es.iter().all(is_pure),
        _ => false,
    }
}

fn fold_expr(
    cx: &mut FoldCx<'_>,
    e: Expr,
    devirt: &[Option<MethodId>],
    stats: &mut OptStats,
) -> Expr {
    let ty = e.ty;
    match e.kind {
        ExprKind::Apply(op, args) => fold_apply(cx, op, args, ty, stats),
        ExprKind::And(a, b) => match as_const_bool(&a) {
            Some(true) => {
                stats.branches_folded += 1;
                *b
            }
            Some(false) => {
                stats.branches_folded += 1;
                Expr::new(ExprKind::Bool(false), ty)
            }
            None => match as_const_bool(&b) {
                // `x && true` == x (b is pure by constancy).
                Some(true) => {
                    stats.branches_folded += 1;
                    *a
                }
                _ => Expr::new(ExprKind::And(a, b), ty),
            },
        },
        ExprKind::Or(a, b) => match as_const_bool(&a) {
            Some(false) => {
                stats.branches_folded += 1;
                *b
            }
            Some(true) => {
                stats.branches_folded += 1;
                Expr::new(ExprKind::Bool(true), ty)
            }
            None => match as_const_bool(&b) {
                Some(false) => {
                    stats.branches_folded += 1;
                    *a
                }
                _ => Expr::new(ExprKind::Or(a, b), ty),
            },
        },
        ExprKind::Ternary { cond, then, els } => match as_const_bool(&cond) {
            Some(true) => {
                stats.branches_folded += 1;
                *then
            }
            Some(false) => {
                stats.branches_folded += 1;
                *els
            }
            None => Expr::new(ExprKind::Ternary { cond, then, els }, ty),
        },
        ExprKind::CallVirtual { method, type_args, recv, args } => {
            if let Some(target) = devirt[method.index()] {
                stats.devirtualized += 1;
                let checked = Expr::new(ExprKind::CheckNull(recv), ty_of(cx, target));
                let mut all = vec![checked];
                all.extend(args);
                Expr::new(
                    ExprKind::CallStatic { method: target, type_args, args: all },
                    ty,
                )
            } else {
                Expr::new(ExprKind::CallVirtual { method, type_args, recv, args }, ty)
            }
        }
        ExprKind::Let { local, value, body } => {
            // Constant propagation through compiler temps: Let locals are
            // single-assignment, so a constant binding substitutes directly.
            let is_const = matches!(
                value.kind,
                ExprKind::Int(_) | ExprKind::Byte(_) | ExprKind::Bool(_) | ExprKind::Null
            );
            if is_const {
                stats.consts_folded += 1;
                let mut b = *body;
                subst_local(&mut b, local, &value);
                b
            } else {
                Expr::new(ExprKind::Let { local, value, body }, ty)
            }
        }
        ExprKind::CheckNull(v) => {
            // A CheckNull over a definitely-non-null value folds away.
            match v.kind {
                ExprKind::New { .. } | ExprKind::String(_) | ExprKind::ArrayLit(_) => *v,
                _ => Expr::new(ExprKind::CheckNull(v), ty),
            }
        }
        other => Expr::new(other, ty),
    }
}

fn ty_of(cx: &FoldCx<'_>, m: MethodId) -> vgl_types::Type {
    cx.methods[m.index()].locals[0].ty
}

fn fold_apply(
    cx: &mut FoldCx<'_>,
    op: Oper,
    args: Vec<Expr>,
    ty: vgl_types::Type,
    stats: &mut OptStats,
) -> Expr {
    use Oper::*;
    let int2 = |args: &[Expr]| Some((as_const_int(&args[0])?, as_const_int(&args[1])?));
    let fold_int = |v: i32, stats: &mut OptStats| {
        stats.consts_folded += 1;
        Expr::new(ExprKind::Int(v), ty)
    };
    let fold_bool = |v: bool, stats: &mut OptStats| {
        stats.consts_folded += 1;
        Expr::new(ExprKind::Bool(v), ty)
    };
    match op {
        IntAdd | IntSub | IntMul | IntAnd | IntOr | IntXor | IntShl | IntShr => {
            if let Some((a, b)) = int2(&args) {
                let v = match op {
                    IntAdd => ops::int_add(a, b),
                    IntSub => ops::int_sub(a, b),
                    IntMul => ops::int_mul(a, b),
                    IntAnd => a & b,
                    IntOr => a | b,
                    IntXor => a ^ b,
                    IntShl => ops::int_shl(a, b),
                    IntShr => ops::int_shr(a, b),
                    _ => unreachable!(),
                };
                return fold_int(v, stats);
            }
        }
        IntDiv | IntMod => {
            if let Some((a, b)) = int2(&args) {
                let r = if op == IntDiv { ops::int_div(a, b) } else { ops::int_mod(a, b) };
                return match r {
                    Ok(v) => fold_int(v, stats),
                    Err(x) => {
                        stats.consts_folded += 1;
                        Expr::new(ExprKind::Trap(x), ty)
                    }
                };
            }
        }
        IntLt | IntLe | IntGt | IntGe => {
            if let Some((a, b)) = int2(&args) {
                let v = match op {
                    IntLt => a < b,
                    IntLe => a <= b,
                    IntGt => a > b,
                    IntGe => a >= b,
                    _ => unreachable!(),
                };
                return fold_bool(v, stats);
            }
        }
        IntNeg => {
            if let Some(a) = as_const_int(&args[0]) {
                return fold_int(ops::int_sub(0, a), stats);
            }
        }
        BoolNot => {
            if let Some(b) = as_const_bool(&args[0]) {
                return fold_bool(!b, stats);
            }
        }
        Eq(_) | Ne(_) => {
            let negate = matches!(op, Ne(_));
            let cmp = match (&args[0].kind, &args[1].kind) {
                (ExprKind::Int(a), ExprKind::Int(b)) => Some(a == b),
                (ExprKind::Bool(a), ExprKind::Bool(b)) => Some(a == b),
                (ExprKind::Byte(a), ExprKind::Byte(b)) => Some(a == b),
                (ExprKind::Null, ExprKind::Null) => Some(true),
                (ExprKind::Unit, ExprKind::Unit) => Some(true),
                _ => None,
            };
            if let Some(eq) = cmp {
                return fold_bool(eq != negate, stats);
            }
        }
        Query { from, to } => {
            // The §3.3 folding: decide statically where possible. `null`
            // makes nullable sources undecidable-to-true, but `Unrelated`
            // is always false.
            let rel = vgl_types::cast_relation(cx.store, cx.hier, from, to);
            match rel {
                CastRelation::Unrelated => {
                    stats.queries_folded += 1;
                    return Expr::new(ExprKind::Bool(false), ty);
                }
                CastRelation::Subsumption => {
                    if !cx.store.is_nullable(from) {
                        stats.queries_folded += 1;
                        return Expr::new(ExprKind::Bool(true), ty);
                    }
                    // Nullable: query is `arg != null`.
                    if is_pure(&args[0]) {
                        stats.queries_folded += 1;
                        let arg = args.into_iter().next().expect("one arg");
                        let fty = arg.ty;
                        let null = Expr::new(ExprKind::Null, fty);
                        return Expr::new(
                            ExprKind::Apply(Oper::Ne(fty), vec![arg, null]),
                            ty,
                        );
                    }
                }
                CastRelation::Checked => {
                    // Same-class-constructor queries with different args can
                    // still be decided when types are exactly equal.
                    if from == to && !cx.store.is_nullable(from) {
                        stats.queries_folded += 1;
                        return Expr::new(ExprKind::Bool(true), ty);
                    }
                    // Queries are type-based: `int.?(x: byte)` is always
                    // false even though the *cast* would convert.
                    let prim = |k: &TypeKind| {
                        matches!(k, TypeKind::Int | TypeKind::Byte | TypeKind::Bool | TypeKind::Void)
                    };
                    let fk0 = cx.store.kind(from).clone();
                    let tk0 = cx.store.kind(to).clone();
                    if prim(&fk0) && prim(&tk0) && from != to {
                        stats.queries_folded += 1;
                        return Expr::new(ExprKind::Bool(false), ty);
                    }
                    // Distinct instantiations of the same class never
                    // overlap (invariance): List<int> vs List<bool>.
                    let fk = cx.store.kind(from).clone();
                    let tk = cx.store.kind(to).clone();
                    if let (TypeKind::Class(c1, a1), TypeKind::Class(c2, a2)) = (fk, tk) {
                        if c1 == c2 && a1 != a2 {
                            stats.queries_folded += 1;
                            return Expr::new(ExprKind::Bool(false), ty);
                        }
                    }
                }
            }
        }
        Cast { from, to } => {
            let rel = vgl_types::cast_relation(cx.store, cx.hier, from, to);
            match rel {
                CastRelation::Subsumption => {
                    stats.casts_folded += 1;
                    let v = args.into_iter().next().expect("one arg");
                    return v;
                }
                CastRelation::Unrelated => {
                    stats.casts_folded += 1;
                    return Expr::new(ExprKind::Trap(Exception::TypeCheck), ty);
                }
                CastRelation::Checked => {
                    // Constant byte/int conversions.
                    match (&args[0].kind, cx.store.kind(to).clone()) {
                        (ExprKind::Int(i), TypeKind::Byte) => {
                            stats.casts_folded += 1;
                            return match ops::int_to_byte(*i) {
                                Ok(b) => Expr::new(ExprKind::Byte(b), ty),
                                Err(x) => Expr::new(ExprKind::Trap(x), ty),
                            };
                        }
                        (ExprKind::Byte(b), TypeKind::Int) => {
                            stats.casts_folded += 1;
                            return Expr::new(ExprKind::Int(ops::byte_to_int(*b)), ty);
                        }
                        _ => {}
                    }
                }
            }
        }
        _ => {}
    }
    Expr::new(ExprKind::Apply(op, args), ty)
}

/// Statement-level folding: constant branches, dead pure statements, and
/// `while (false)` loops.
fn fold_stmts(stmts: &mut Vec<Stmt>, stats: &mut OptStats) {
    let old = std::mem::take(stmts);
    for mut s in old {
        match &mut s {
            Stmt::If(c, t, e) => {
                fold_stmts(t, stats);
                fold_stmts(e, stats);
                match as_const_bool(c) {
                    Some(true) => {
                        stats.branches_folded += 1;
                        stmts.push(Stmt::Block(std::mem::take(t)));
                        continue;
                    }
                    Some(false) => {
                        stats.branches_folded += 1;
                        stmts.push(Stmt::Block(std::mem::take(e)));
                        continue;
                    }
                    None => {}
                }
            }
            Stmt::While(c, b) => {
                fold_stmts(b, stats);
                if as_const_bool(c) == Some(false) {
                    stats.dead_stmts_removed += 1;
                    continue;
                }
            }
            Stmt::Block(b) => {
                fold_stmts(b, stats);
                if b.is_empty() {
                    stats.dead_stmts_removed += 1;
                    continue;
                }
            }
            Stmt::Expr(e) if is_pure(e) => {
                stats.dead_stmts_removed += 1;
                continue;
            }
            _ => {}
        }
        stmts.push(s);
    }
}
