//! A dependency-free work-stealing pool for per-function compiler work.
//!
//! Built on `std::thread::scope` — no external crates, no global state.
//! Two granularities share one merge rule:
//!
//! * [`par_map_ctx`] — workers claim **single item indices** from an atomic
//!   counter. Fine for coarse items; on per-function compiler work the
//!   claim traffic itself dominates (BENCH_compile.json's pre-chunking rows
//!   showed jobs=8 *losing* to jobs=1 on a 96-instance fan-out).
//! * [`plan_chunks`] + [`par_map_chunks`] — items are packed up front into
//!   contiguous, cost-balanced chunks (targeting `total/(CHUNKS_PER_JOB ×
//!   jobs)` estimated cost each, from `vgl_ir::metrics::method_cost`-style
//!   estimates) and workers steal **whole chunks**. One atomic claim
//!   amortizes over a chunk's worth of work, and chunk boundaries are a
//!   pure integer function of the cost vector — identical on every
//!   platform, every run, every thread count.
//!
//! In both modes results are merged back **in stable item-index order**.
//! That ordering rule is the whole determinism story: the jobs count (and
//! the chunking mode) changes which thread computes an item and nothing
//! else, so `--jobs 1` and `--jobs 8` produce bit-identical output.
//! (jobs=1 runs inline on the caller's thread through the same worker body
//! — there is no separate sequential algorithm to drift.)
//!
//! Each worker reports a [`WorkerSample`] (items claimed + busy time) for
//! `vgl-obs`; those spans are telemetry, not part of the determinism
//! contract.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use vgl_obs::WorkerSample;

/// Upper bound on the pool size; beyond this, per-thread overhead dwarfs any
/// conceivable win on per-function compiler work.
pub const MAX_JOBS: usize = 64;

/// Resolves a requested jobs count to an effective one: an explicit request
/// (`n > 0`) wins, else the `VGL_JOBS` environment variable, else the
/// machine's available parallelism, else 1. Always in `1..=MAX_JOBS`.
///
/// The environment is re-read on every call so tests (and CI's
/// `VGL_JOBS=1` / `VGL_JOBS=8` lanes) can steer the default per-process.
pub fn resolve_jobs(requested: usize) -> usize {
    let n = if requested > 0 {
        requested
    } else if let Some(n) = std::env::var("VGL_JOBS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            n
        } else {
            1
        }
    } else {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    };
    n.clamp(1, MAX_JOBS)
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, each with
/// its own context from `mk_ctx`, and returns the results **in item order**
/// plus one [`WorkerSample`] per worker that ran.
///
/// `f` receives the worker's context, the item's index, and the item; it
/// must be a pure function of those (plus immutable captures) for the
/// output to be jobs-invariant. With `jobs <= 1` (or fewer than two items)
/// everything runs inline on the caller's thread as worker 0 — same code
/// path, no spawn.
pub fn par_map_ctx<T, C, R>(
    jobs: usize,
    phase: &'static str,
    items: &[T],
    mk_ctx: impl Fn() -> C + Sync,
    f: impl Fn(&mut C, usize, &T) -> R + Sync,
) -> (Vec<R>, Vec<WorkerSample>)
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    let workers = jobs.clamp(1, MAX_JOBS).min(n.max(1));
    let next = AtomicUsize::new(0);
    let pool_start = Instant::now();
    // The worker body: claim indices until the queue is dry. Identical for
    // the inline and the threaded path.
    let work = |worker: usize| -> (Vec<(usize, R)>, WorkerSample) {
        let mut cx = mk_ctx();
        let mut out = Vec::new();
        let start = Instant::now();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            out.push((i, f(&mut cx, i, &items[i])));
        }
        let sample = WorkerSample {
            phase,
            worker,
            items: out.len(),
            start: start.duration_since(pool_start),
            duration: start.elapsed(),
        };
        (out, sample)
    };

    let mut per_worker: Vec<(Vec<(usize, R)>, WorkerSample)> = if workers <= 1 || n < 2 {
        vec![work(0)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..workers).map(|w| s.spawn(move || work(w))).collect();
            handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
        })
    };

    // Merge in stable item-index order, independent of which worker
    // computed what.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut samples = Vec::with_capacity(per_worker.len());
    for (results, sample) in per_worker.drain(..) {
        for (i, r) in results {
            debug_assert!(slots[i].is_none(), "item {i} claimed twice");
            slots[i] = Some(r);
        }
        samples.push(sample);
    }
    let results =
        slots.into_iter().map(|r| r.expect("pool left an item unprocessed")).collect();
    (results, samples)
}

/// How many chunks the planner aims to produce per worker. More chunks
/// means better load balance when cost estimates are off; fewer means less
/// claim traffic. 4 keeps the worst-case idle tail under ~1/4 of a worker's
/// share while leaving chunks coarse enough that the atomic claim is noise.
pub const CHUNKS_PER_JOB: u64 = 4;

/// A deterministic, cost-balanced partition of `n` work items into
/// contiguous index ranges. Produced by [`plan_chunks`], consumed by
/// [`par_map_chunks`] — and pinned by the golden chunk-map regression test,
/// so the plan is part of the scheduler's stable contract: it depends only
/// on the cost vector and the jobs count, never on the platform, the run,
/// or which threads execute it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Half-open `[start, end)` item-index ranges, in order, covering
    /// `0..n` exactly. Empty iff there are no items.
    pub ranges: Vec<(usize, usize)>,
    /// Sum of all (clamped-to-1) item costs.
    pub total_cost: u64,
    /// The per-chunk cost target the planner packed toward.
    pub target_cost: u64,
}

impl ChunkPlan {
    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the plan covers no items.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Packs items into contiguous chunks of roughly `total/(CHUNKS_PER_JOB ×
/// jobs)` estimated cost each: walk items in index order, accumulate until
/// the running cost reaches the target, cut. Contiguity keeps the stable
/// commit a range copy and preserves whatever locality the item order has;
/// greedy accumulation is the unique deterministic answer once the target
/// is fixed. Zero costs are clamped to 1 so no chunk is unbounded.
pub fn plan_chunks(costs: &[u64], jobs: usize) -> ChunkPlan {
    let jobs = jobs.clamp(1, MAX_JOBS) as u64;
    let total_cost: u64 = costs.iter().map(|&c| c.max(1)).sum();
    let target_cost = (total_cost / (CHUNKS_PER_JOB * jobs)).max(1);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &c) in costs.iter().enumerate() {
        acc += c.max(1);
        if acc >= target_cost {
            ranges.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < costs.len() {
        ranges.push((start, costs.len()));
    }
    ChunkPlan { ranges, total_cost, target_cost }
}

/// [`par_map_ctx`] with chunk-granular stealing: workers claim whole
/// [`ChunkPlan`] ranges from the shared counter and process each range's
/// items in index order. Results are merged back in item order, so the
/// output is identical to `par_map_ctx` (and to a serial loop) — the plan
/// only changes how claim traffic amortizes.
///
/// # Panics
/// Debug-asserts that `plan` covers `items` exactly.
pub fn par_map_chunks<T, C, R>(
    jobs: usize,
    phase: &'static str,
    items: &[T],
    plan: &ChunkPlan,
    mk_ctx: impl Fn() -> C + Sync,
    f: impl Fn(&mut C, usize, &T) -> R + Sync,
) -> (Vec<R>, Vec<WorkerSample>)
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    debug_assert_eq!(
        plan.ranges.iter().map(|&(s, e)| e - s).sum::<usize>(),
        n,
        "chunk plan does not cover the item slice"
    );
    let n_chunks = plan.ranges.len();
    let workers = jobs.clamp(1, MAX_JOBS).min(n_chunks.max(1));
    let next = AtomicUsize::new(0);
    let pool_start = Instant::now();
    let work = |worker: usize| -> (Vec<(usize, Vec<R>)>, WorkerSample) {
        let mut cx = mk_ctx();
        let mut out = Vec::new();
        let mut claimed = 0usize;
        let start = Instant::now();
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            let (lo, hi) = plan.ranges[c];
            let mut results = Vec::with_capacity(hi - lo);
            for (i, item) in items.iter().enumerate().take(hi).skip(lo) {
                results.push(f(&mut cx, i, item));
            }
            claimed += hi - lo;
            out.push((lo, results));
        }
        let sample = WorkerSample {
            phase,
            worker,
            items: claimed,
            start: start.duration_since(pool_start),
            duration: start.elapsed(),
        };
        (out, sample)
    };

    // One worker's output: result blocks keyed by chunk start, plus a span.
    type WorkerOut<R> = (Vec<(usize, Vec<R>)>, WorkerSample);
    let mut per_worker: Vec<WorkerOut<R>> =
        if workers <= 1 || n_chunks < 2 {
            vec![work(0)]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> =
                    (0..workers).map(|w| s.spawn(move || work(w))).collect();
                handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
            })
        };

    // Merge chunk result blocks back in item order.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut samples = Vec::with_capacity(per_worker.len());
    for (blocks, sample) in per_worker.drain(..) {
        for (lo, results) in blocks {
            for (off, r) in results.into_iter().enumerate() {
                debug_assert!(slots[lo + off].is_none(), "item {} claimed twice", lo + off);
                slots[lo + off] = Some(r);
            }
        }
        samples.push(sample);
    }
    let results =
        slots.into_iter().map(|r| r.expect("pool left an item unprocessed")).collect();
    (results, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_at_any_jobs() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8] {
            let (got, samples) =
                par_map_ctx(jobs, "test", &items, || (), |_, _, &x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
            assert_eq!(samples.iter().map(|s| s.items).sum::<usize>(), items.len());
            assert!(samples.len() <= jobs);
        }
    }

    #[test]
    fn index_is_passed_through() {
        let items = vec!["a", "b", "c"];
        let (got, _) = par_map_ctx(2, "test", &items, || (), |_, i, &s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn context_is_per_worker() {
        // Each worker counts its own items in its context; totals must cover
        // every item exactly once.
        let items: Vec<u32> = (0..100).collect();
        let (got, samples) = par_map_ctx(
            4,
            "test",
            &items,
            || 0usize,
            |count, _, &x| {
                *count += 1;
                x
            },
        );
        assert_eq!(got, items);
        assert_eq!(samples.iter().map(|s| s.items).sum::<usize>(), 100);
    }

    #[test]
    fn empty_and_single_item_inline() {
        let (got, samples) = par_map_ctx(8, "test", &[] as &[u32], || (), |_, _, &x| x);
        assert!(got.is_empty());
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].worker, 0);
        let (got, samples) = par_map_ctx(8, "test", &[5u32], || (), |_, _, &x| x + 1);
        assert_eq!(got, [6]);
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn plan_covers_all_items_in_order() {
        for n in [0usize, 1, 7, 256, 1000] {
            for jobs in [1usize, 2, 8, 64] {
                let costs: Vec<u64> = (0..n as u64).map(|i| (i * 7) % 23).collect();
                let plan = plan_chunks(&costs, jobs);
                let mut expect = 0;
                for &(s, e) in &plan.ranges {
                    assert_eq!(s, expect, "n={n} jobs={jobs}");
                    assert!(e > s, "empty chunk at n={n} jobs={jobs}");
                    expect = e;
                }
                assert_eq!(expect, n, "n={n} jobs={jobs}");
            }
        }
    }

    #[test]
    fn plan_is_cost_balanced() {
        // Uniform costs: every chunk except possibly the last lands within
        // one item of the target.
        let costs = vec![10u64; 320];
        let plan = plan_chunks(&costs, 8);
        // target = 3200 / 32 = 100 → 10 items per chunk, 32 chunks.
        assert_eq!(plan.target_cost, 100);
        assert_eq!(plan.len(), 32);
        for &(s, e) in &plan.ranges {
            assert_eq!(e - s, 10);
        }
        // One huge item gets its own chunk; neighbors are not dragged in.
        let mut costs = vec![1u64; 64];
        costs[10] = 1_000_000;
        let plan = plan_chunks(&costs, 8);
        let big = plan.ranges.iter().find(|&&(s, e)| (s..e).contains(&10)).unwrap();
        assert!(big.1 - big.0 <= 11, "big item chunk is {big:?}");
    }

    #[test]
    fn plan_is_jobs_dependent_but_platform_pure() {
        let costs: Vec<u64> = (0..100).map(|i| 1 + (i % 5) as u64).collect();
        let p1 = plan_chunks(&costs, 1);
        let p8 = plan_chunks(&costs, 8);
        assert!(p8.len() >= p1.len());
        // Re-planning is bit-identical (pure function of inputs).
        assert_eq!(p1, plan_chunks(&costs, 1));
        assert_eq!(p8, plan_chunks(&costs, 8));
    }

    #[test]
    fn chunked_map_matches_item_map_at_any_jobs() {
        let items: Vec<usize> = (0..257).collect();
        let costs: Vec<u64> = items.iter().map(|&x| 1 + (x % 9) as u64).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 16] {
            let plan = plan_chunks(&costs, jobs);
            let (got, samples) =
                par_map_chunks(jobs, "test", &items, &plan, || (), |_, _, &x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
            assert_eq!(samples.iter().map(|s| s.items).sum::<usize>(), items.len());
            assert!(samples.len() <= jobs);
        }
    }

    #[test]
    fn chunked_map_empty_and_single() {
        let plan = plan_chunks(&[], 8);
        assert!(plan.is_empty());
        let (got, _) =
            par_map_chunks(8, "test", &[] as &[u32], &plan, || (), |_, _, &x| x);
        assert!(got.is_empty());
        let plan = plan_chunks(&[5], 8);
        let (got, _) = par_map_chunks(8, "test", &[5u32], &plan, || (), |_, _, &x| x + 1);
        assert_eq!(got, [6]);
    }

    #[test]
    fn chunked_map_passes_global_item_index() {
        let items = vec!["a", "b", "c", "d", "e"];
        let plan = plan_chunks(&[1, 1, 1, 1, 1], 2);
        let (got, _) =
            par_map_chunks(2, "test", &items, &plan, || (), |_, i, &s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn resolve_jobs_explicit_wins_and_clamps() {
        assert_eq!(resolve_jobs(3), 3);
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(10_000), MAX_JOBS);
        // 0 = auto: whatever it resolves to, it is in range.
        let auto = resolve_jobs(0);
        assert!((1..=MAX_JOBS).contains(&auto));
    }
}
