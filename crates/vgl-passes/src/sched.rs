//! A dependency-free work-stealing pool for per-function compiler work.
//!
//! Built on `std::thread::scope` — no external crates, no global state.
//! Workers self-schedule by claiming item indices from a shared atomic
//! counter, compute into worker-local buffers, and the results are merged
//! back **in stable item-index order**. That ordering rule is the whole
//! determinism story: the jobs count changes which thread computes an item
//! and nothing else, so `--jobs 1` and `--jobs 8` produce bit-identical
//! output. (jobs=1 runs inline on the caller's thread through the same
//! worker body — there is no separate sequential algorithm to drift.)
//!
//! Each worker reports a [`WorkerSample`] (items claimed + busy time) for
//! `vgl-obs`; those spans are telemetry, not part of the determinism
//! contract.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use vgl_obs::WorkerSample;

/// Upper bound on the pool size; beyond this, per-thread overhead dwarfs any
/// conceivable win on per-function compiler work.
pub const MAX_JOBS: usize = 64;

/// Resolves a requested jobs count to an effective one: an explicit request
/// (`n > 0`) wins, else the `VGL_JOBS` environment variable, else the
/// machine's available parallelism, else 1. Always in `1..=MAX_JOBS`.
///
/// The environment is re-read on every call so tests (and CI's
/// `VGL_JOBS=1` / `VGL_JOBS=8` lanes) can steer the default per-process.
pub fn resolve_jobs(requested: usize) -> usize {
    let n = if requested > 0 {
        requested
    } else if let Some(n) = std::env::var("VGL_JOBS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            n
        } else {
            1
        }
    } else {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    };
    n.clamp(1, MAX_JOBS)
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, each with
/// its own context from `mk_ctx`, and returns the results **in item order**
/// plus one [`WorkerSample`] per worker that ran.
///
/// `f` receives the worker's context, the item's index, and the item; it
/// must be a pure function of those (plus immutable captures) for the
/// output to be jobs-invariant. With `jobs <= 1` (or fewer than two items)
/// everything runs inline on the caller's thread as worker 0 — same code
/// path, no spawn.
pub fn par_map_ctx<T, C, R>(
    jobs: usize,
    phase: &'static str,
    items: &[T],
    mk_ctx: impl Fn() -> C + Sync,
    f: impl Fn(&mut C, usize, &T) -> R + Sync,
) -> (Vec<R>, Vec<WorkerSample>)
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    let workers = jobs.clamp(1, MAX_JOBS).min(n.max(1));
    let next = AtomicUsize::new(0);
    let pool_start = Instant::now();
    // The worker body: claim indices until the queue is dry. Identical for
    // the inline and the threaded path.
    let work = |worker: usize| -> (Vec<(usize, R)>, WorkerSample) {
        let mut cx = mk_ctx();
        let mut out = Vec::new();
        let start = Instant::now();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            out.push((i, f(&mut cx, i, &items[i])));
        }
        let sample = WorkerSample {
            phase,
            worker,
            items: out.len(),
            start: start.duration_since(pool_start),
            duration: start.elapsed(),
        };
        (out, sample)
    };

    let mut per_worker: Vec<(Vec<(usize, R)>, WorkerSample)> = if workers <= 1 || n < 2 {
        vec![work(0)]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..workers).map(|w| s.spawn(move || work(w))).collect();
            handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
        })
    };

    // Merge in stable item-index order, independent of which worker
    // computed what.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut samples = Vec::with_capacity(per_worker.len());
    for (results, sample) in per_worker.drain(..) {
        for (i, r) in results {
            debug_assert!(slots[i].is_none(), "item {i} claimed twice");
            slots[i] = Some(r);
        }
        samples.push(sample);
    }
    let results =
        slots.into_iter().map(|r| r.expect("pool left an item unprocessed")).collect();
    (results, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_at_any_jobs() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8] {
            let (got, samples) =
                par_map_ctx(jobs, "test", &items, || (), |_, _, &x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
            assert_eq!(samples.iter().map(|s| s.items).sum::<usize>(), items.len());
            assert!(samples.len() <= jobs);
        }
    }

    #[test]
    fn index_is_passed_through() {
        let items = vec!["a", "b", "c"];
        let (got, _) = par_map_ctx(2, "test", &items, || (), |_, i, &s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn context_is_per_worker() {
        // Each worker counts its own items in its context; totals must cover
        // every item exactly once.
        let items: Vec<u32> = (0..100).collect();
        let (got, samples) = par_map_ctx(
            4,
            "test",
            &items,
            || 0usize,
            |count, _, &x| {
                *count += 1;
                x
            },
        );
        assert_eq!(got, items);
        assert_eq!(samples.iter().map(|s| s.items).sum::<usize>(), 100);
    }

    #[test]
    fn empty_and_single_item_inline() {
        let (got, samples) = par_map_ctx(8, "test", &[] as &[u32], || (), |_, _, &x| x);
        assert!(got.is_empty());
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].worker, 0);
        let (got, samples) = par_map_ctx(8, "test", &[5u32], || (), |_, _, &x| x + 1);
        assert_eq!(got, [6]);
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn resolve_jobs_explicit_wins_and_clamps() {
        assert_eq!(resolve_jobs(3), 3);
        assert_eq!(resolve_jobs(1), 1);
        assert_eq!(resolve_jobs(10_000), MAX_JOBS);
        // 0 = auto: whatever it resolves to, it is in range.
        let auto = resolve_jobs(0);
        assert!((1..=MAX_JOBS).contains(&auto));
    }
}
