//! Best-effort type-argument inference (paper §2.4).
//!
//! Virgil uses "a best-effort type inference algorithm for type arguments to
//! both classes and methods" driven by a bidirectional typechecking approach.
//! The workhorse here is *structural matching with variance*: given a
//! parameter type containing inference variables and the concrete type of the
//! supplied argument, bind each variable consistently. Inference may fail —
//! the user then supplies explicit `<...>` arguments.

use crate::hierarchy::Hierarchy;
use crate::relations::is_subtype;
use crate::store::{Type, TypeKind, TypeStore, TypeVarId};
use std::collections::HashMap;

/// Accumulates variable bindings during inference.
#[derive(Clone, Debug, Default)]
pub struct InferCtx {
    /// Variables eligible for binding.
    bindable: Vec<TypeVarId>,
    /// Current solution.
    pub bindings: HashMap<TypeVarId, Type>,
}

impl InferCtx {
    /// Creates a context that may bind exactly `vars`.
    pub fn new(vars: &[TypeVarId]) -> InferCtx {
        InferCtx { bindable: vars.to_vec(), bindings: HashMap::new() }
    }

    /// True if `v` may be bound by this inference.
    pub fn is_bindable(&self, v: TypeVarId) -> bool {
        self.bindable.contains(&v)
    }

    /// The solution for `v`, if any.
    pub fn get(&self, v: TypeVarId) -> Option<Type> {
        self.bindings.get(&v).copied()
    }

    /// True if every bindable variable has a solution.
    pub fn is_complete(&self) -> bool {
        self.bindable.iter().all(|v| self.bindings.contains_key(v))
    }

    /// The solutions in declaration order; `None` entries are unsolved.
    pub fn solutions(&self) -> Vec<Option<Type>> {
        self.bindable.iter().map(|v| self.bindings.get(v).copied()).collect()
    }
}

/// Matches the concrete `actual` type against `expected` (which may contain
/// bindable variables), updating `ctx`. Returns `false` if the shapes are
/// incompatible under the variance of each position.
///
/// In covariant position an existing binding is widened when the new
/// candidate is a supertype; in invariant position bindings must agree
/// exactly.
pub fn match_types(
    store: &mut TypeStore,
    hier: &Hierarchy,
    expected: Type,
    actual: Type,
    ctx: &mut InferCtx,
) -> bool {
    match_var(store, hier, expected, actual, ctx, Polarity::Co)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Polarity {
    Co,
    Contra,
    Inv,
}

impl Polarity {
    fn flip(self) -> Polarity {
        match self {
            Polarity::Co => Polarity::Contra,
            Polarity::Contra => Polarity::Co,
            Polarity::Inv => Polarity::Inv,
        }
    }
}

fn bind(
    store: &mut TypeStore,
    hier: &Hierarchy,
    v: TypeVarId,
    actual: Type,
    ctx: &mut InferCtx,
    pol: Polarity,
) -> bool {
    match ctx.get(v) {
        None => {
            ctx.bindings.insert(v, actual);
            true
        }
        Some(prev) if prev == actual => true,
        Some(prev) => match pol {
            Polarity::Inv => false,
            Polarity::Co => {
                // Widen toward a common supertype if one side subsumes.
                if is_subtype(store, hier, actual, prev) {
                    true
                } else if is_subtype(store, hier, prev, actual) {
                    ctx.bindings.insert(v, actual);
                    true
                } else {
                    false
                }
            }
            Polarity::Contra => {
                // Narrow toward a common subtype if one side subsumes.
                if is_subtype(store, hier, prev, actual) {
                    true
                } else if is_subtype(store, hier, actual, prev) {
                    ctx.bindings.insert(v, actual);
                    true
                } else {
                    false
                }
            }
        },
    }
}

fn match_var(
    store: &mut TypeStore,
    hier: &Hierarchy,
    expected: Type,
    actual: Type,
    ctx: &mut InferCtx,
    pol: Polarity,
) -> bool {
    // The poisoned error type matches anything without binding: the error it
    // stands for was already reported.
    if matches!(store.kind(expected), TypeKind::Error)
        || matches!(store.kind(actual), TypeKind::Error)
    {
        return true;
    }
    if let TypeKind::Var(v) = *store.kind(expected) {
        if ctx.is_bindable(v) {
            return bind(store, hier, v, actual, ctx, pol);
        }
    }
    if expected == actual {
        // Identity match — but any bindable variables inside must still be
        // solved (to themselves). This is exactly what a recursive call like
        // `map(list.tail, f)` inside `map<A, B>` needs: A ↦ A, B ↦ B.
        let mut vars = Vec::new();
        store.collect_vars(expected, &mut vars);
        for v in vars {
            if ctx.is_bindable(v) {
                let tv = store.var(v);
                if !bind(store, hier, v, tv, ctx, Polarity::Inv) {
                    return false;
                }
            }
        }
        return true;
    }
    match (store.kind(expected).clone(), store.kind(actual).clone()) {
        (TypeKind::Tuple(xs), TypeKind::Tuple(ys)) if xs.len() == ys.len() => xs
            .iter()
            .zip(ys.iter())
            .all(|(&x, &y)| match_var(store, hier, x, y, ctx, pol)),
        (TypeKind::Array(x), TypeKind::Array(y)) => {
            match_var(store, hier, x, y, ctx, Polarity::Inv)
        }
        (TypeKind::Function(p1, r1), TypeKind::Function(p2, r2)) => {
            match_var(store, hier, p1, p2, ctx, pol.flip())
                && match_var(store, hier, r1, r2, ctx, pol)
        }
        (TypeKind::Class(c1, args1), TypeKind::Class(..)) => {
            // Walk the actual's supertype chain to find the same class head
            // (handles an argument of a subclass of the expected class).
            for sup in hier.supertypes(store, actual) {
                if let TypeKind::Class(c2, args2) = store.kind(sup).clone() {
                    if c1 == c2 {
                        return args1
                            .iter()
                            .zip(args2.iter())
                            .all(|(&x, &y)| match_var(store, hier, x, y, ctx, Polarity::Inv));
                    }
                }
            }
            false
        }
        (_, TypeKind::Null) => {
            // `null` matches any nullable expected type without binding info.
            matches!(
                store.kind(expected),
                TypeKind::Class(..) | TypeKind::Array(_) | TypeKind::Function(..) | TypeKind::Var(_)
            )
        }
        _ => {
            // No vars to bind below: fall back to plain subtyping in the
            // direction demanded by the polarity.
            if store.is_polymorphic(expected) {
                return false;
            }
            match pol {
                Polarity::Co => is_subtype(store, hier, actual, expected),
                Polarity::Contra => is_subtype(store, hier, expected, actual),
                Polarity::Inv => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ClassInfo;

    fn setup() -> (TypeStore, Hierarchy) {
        (TypeStore::new(), Hierarchy::new())
    }

    #[test]
    fn bind_simple_var() {
        let (mut s, h) = setup();
        let v = TypeVarId(0);
        let tv = s.var(v);
        let mut ctx = InferCtx::new(&[v]);
        { let __t = s.int; assert!(match_types(&mut s, &h, tv, __t, &mut ctx)); }
        assert_eq!(ctx.get(v), Some(s.int));
        assert!(ctx.is_complete());
    }

    #[test]
    fn bind_through_tuple() {
        // time<A, B>(func: A -> B, a: A): matching (int -> bool, int).
        let (mut s, h) = setup();
        let (a, b) = (TypeVarId(0), TypeVarId(1));
        let (ta, tb) = (s.var(a), s.var(b));
        let f_expected = s.function(ta, tb);
        let f_actual = s.function(s.int, s.bool_);
        let mut ctx = InferCtx::new(&[a, b]);
        assert!(match_types(&mut s, &h, f_expected, f_actual, &mut ctx));
        { let __t = s.int; assert!(match_types(&mut s, &h, ta, __t, &mut ctx)); }
        assert_eq!(ctx.get(a), Some(s.int));
        assert_eq!(ctx.get(b), Some(s.bool_));
    }

    #[test]
    fn bind_var_to_tuple_type() {
        // Listing (d11'): List.new((3, 4), null) infers T = (int, int).
        let (mut s, h) = setup();
        let v = TypeVarId(0);
        let tv = s.var(v);
        let pair = s.tuple(vec![s.int, s.int]);
        let mut ctx = InferCtx::new(&[v]);
        assert!(match_types(&mut s, &h, tv, pair, &mut ctx));
        assert_eq!(ctx.get(v), Some(pair));
    }

    #[test]
    fn conflicting_bindings_fail_when_unrelated() {
        let (mut s, h) = setup();
        let v = TypeVarId(0);
        let tv = s.var(v);
        let pair = s.tuple(vec![tv, tv]);
        let actual = s.tuple(vec![s.int, s.bool_]);
        let mut ctx = InferCtx::new(&[v]);
        assert!(!match_types(&mut s, &h, pair, actual, &mut ctx));
    }

    #[test]
    fn covariant_widening_to_superclass() {
        let (mut s, mut h) = setup();
        let animal_id = h.add_class(ClassInfo { name: "Animal".into(), type_params: vec![], parent: None });
        let bat_id = h.add_class(ClassInfo { name: "Bat".into(), type_params: vec![], parent: Some((animal_id, vec![])) });
        let animal = s.class(animal_id, vec![]);
        let bat = s.class(bat_id, vec![]);
        let v = TypeVarId(0);
        let tv = s.var(v);
        let pair = s.tuple(vec![tv, tv]);
        let actual = s.tuple(vec![bat, animal]);
        let mut ctx = InferCtx::new(&[v]);
        assert!(match_types(&mut s, &h, pair, actual, &mut ctx));
        assert_eq!(ctx.get(v), Some(animal));
    }

    #[test]
    fn class_head_matching_through_subclass() {
        // apply<A>(list: List<A>, ...) given a SubList<int> argument.
        let (mut s, mut h) = setup();
        let list_tv = TypeVarId(0);
        let list_id = h.add_class(ClassInfo { name: "List".into(), type_params: vec![list_tv], parent: None });
        let sub_tv = TypeVarId(1);
        let sub_parent_arg = s.var(sub_tv);
        let sub_id = h.add_class(ClassInfo {
            name: "SubList".into(),
            type_params: vec![sub_tv],
            parent: Some((list_id, vec![sub_parent_arg])),
        });
        let a = TypeVarId(10);
        let ta = s.var(a);
        let expected = s.class(list_id, vec![ta]);
        let actual = s.class(sub_id, vec![s.int]);
        let mut ctx = InferCtx::new(&[a]);
        assert!(match_types(&mut s, &h, expected, actual, &mut ctx));
        assert_eq!(ctx.get(a), Some(s.int));
    }

    #[test]
    fn null_matches_class_without_binding() {
        let (mut s, mut h) = setup();
        let tv = TypeVarId(0);
        let list_id = h.add_class(ClassInfo { name: "List".into(), type_params: vec![tv], parent: None });
        let a = TypeVarId(1);
        let ta = s.var(a);
        let expected = s.class(list_id, vec![ta]);
        let mut ctx = InferCtx::new(&[a]);
        { let __t = s.null; assert!(match_types(&mut s, &h, expected, __t, &mut ctx)); }
        assert!(!ctx.is_complete()); // null alone does not determine A
    }

    #[test]
    fn contravariant_position_narrows() {
        // Matching parameter types of functions flips polarity.
        let (mut s, mut h) = setup();
        let animal_id = h.add_class(ClassInfo { name: "Animal".into(), type_params: vec![], parent: None });
        let bat_id = h.add_class(ClassInfo { name: "Bat".into(), type_params: vec![], parent: Some((animal_id, vec![])) });
        let animal = s.class(animal_id, vec![]);
        let bat = s.class(bat_id, vec![]);
        let v = TypeVarId(0);
        let tv = s.var(v);
        // expected: (T -> void, T -> void); actual: (Animal -> void, Bat -> void)
        let f_t = s.function(tv, s.void);
        let expected = s.tuple(vec![f_t, f_t]);
        let f_a = s.function(animal, s.void);
        let f_b = s.function(bat, s.void);
        let actual = s.tuple(vec![f_a, f_b]);
        let mut ctx = InferCtx::new(&[v]);
        assert!(match_types(&mut s, &h, expected, actual, &mut ctx));
        // T must be the common subtype usable with both: Bat.
        assert_eq!(ctx.get(v), Some(bat));
    }

    #[test]
    fn non_bindable_var_must_match_exactly() {
        let (mut s, h) = setup();
        let outer = TypeVarId(0);
        let tv = s.var(outer);
        let mut ctx = InferCtx::new(&[TypeVarId(1)]);
        // `outer` is not bindable: only an identical var matches.
        assert!(match_types(&mut s, &h, tv, tv, &mut ctx));
        { let __t = s.int; assert!(!match_types(&mut s, &h, tv, __t, &mut ctx)); }
    }

    #[test]
    fn error_type_matches_without_binding() {
        let (mut s, h) = setup();
        let v = TypeVarId(0);
        let tv = s.var(v);
        let mut ctx = InferCtx::new(&[v]);
        // The poisoned error type matches any expected type — including an
        // unbound inference var, which must stay unbound (no `<error>` leaks
        // into inferred type arguments).
        let err = s.error;
        assert!(match_types(&mut s, &h, tv, err, &mut ctx));
        assert_eq!(ctx.get(v), None);
        let int = s.int;
        assert!(match_types(&mut s, &h, err, int, &mut ctx));
    }
}
