//! # vgl-types
//!
//! The Virgil III type system (paper §2): an interning [`TypeStore`] for the
//! five kinds of type constructors, the single-inheritance class
//! [`Hierarchy`] (with no universal supertype), subtyping with the paper's
//! variance rules (covariant tuples, contra/covariant functions, invariant
//! arrays and classes), static cast/query legality, substitution, tuple
//! flattening support, and best-effort type-argument inference.
//!
//! ```
//! use vgl_types::{TypeStore, Hierarchy, is_subtype};
//!
//! let mut store = TypeStore::new();
//! let hier = Hierarchy::new();
//! // Tuples are covariant; () == void and (T) == T by construction.
//! let unit = store.tuple(vec![]);
//! assert_eq!(unit, store.void);
//! let pair = store.tuple(vec![store.int, store.bool_]);
//! assert!(is_subtype(&mut store, &hier, pair, pair));
//! ```

#![warn(missing_docs)]

mod hierarchy;
mod infer;
mod relations;
mod store;

pub use hierarchy::{ClassInfo, Hierarchy};
pub use infer::{match_types, InferCtx};
pub use relations::{
    cast_relation, constructor_summary, display_type, is_subtype, CastRelation,
    ConstructorRow, Variance,
};
pub use store::{ClassId, Type, TypeKind, TypeStore, TypeVarId};
