//! Subtyping, variance, and the static legality of casts and queries.
//!
//! The variance rules are exactly the paper's §2.5 table:
//!
//! | constructor | type parameters | variance |
//! |---|---|---|
//! | primitive | — | — |
//! | `Array<T>` | `T` | invariant |
//! | tuple | `T0..Tn` | covariant |
//! | function | `Tp -> Tr` | contravariant in `Tp`, covariant in `Tr` |
//! | class `X<T0..Tn>` | `T0..Tn` | invariant |

use crate::hierarchy::Hierarchy;
use crate::store::{Type, TypeKind, TypeStore};

/// Variance of a type-constructor parameter.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Variance {
    /// Position admits no subtyping.
    Invariant,
    /// Subtyping flows in the same direction (paper symbol ▽).
    Covariant,
    /// Subtyping flows in the opposite direction (paper symbol △).
    Contravariant,
}

/// One row of the paper's §2.5 type-constructor summary table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstructorRow {
    /// Constructor family name.
    pub constructor: &'static str,
    /// Variance of each type parameter (empty for primitives).
    pub params: Vec<Variance>,
    /// Concrete syntax sketch.
    pub syntax: &'static str,
}

/// The §2.5 table, as data. The `class` row shows the general n-ary invariant
/// case with two parameters.
pub fn constructor_summary() -> Vec<ConstructorRow> {
    use Variance::*;
    vec![
        ConstructorRow {
            constructor: "Primitive",
            params: vec![],
            syntax: "void|int|byte|bool",
        },
        ConstructorRow {
            constructor: "Array",
            params: vec![Invariant],
            syntax: "Array<T>",
        },
        ConstructorRow {
            constructor: "Tuple",
            params: vec![Covariant, Covariant],
            syntax: "([T (, T)*])",
        },
        ConstructorRow {
            constructor: "Function",
            params: vec![Contravariant, Covariant],
            syntax: "T -> T",
        },
        ConstructorRow {
            constructor: "class X",
            params: vec![Invariant, Invariant],
            syntax: "X[<T (, T)*>]",
        },
    ]
}

/// True if `a <: b`.
///
/// Subtyping is reflexive; the null type is a subtype of every class, array,
/// and function type; tuples are covariant element-wise with equal lengths
/// ("too much static checking would be lost" otherwise — §2.3 footnote);
/// functions are contravariant/covariant; class subtyping follows the
/// `extends` chain with invariant type arguments.
pub fn is_subtype(store: &mut TypeStore, hier: &Hierarchy, a: Type, b: Type) -> bool {
    if a == b {
        return true;
    }
    // The poisoned error type unifies with everything: a diagnostic has
    // already been reported wherever it was produced, so no relation check
    // involving it should generate a second, cascading error.
    if matches!(store.kind(a), TypeKind::Error) || matches!(store.kind(b), TypeKind::Error) {
        return true;
    }
    match (store.kind(a).clone(), store.kind(b).clone()) {
        (TypeKind::Null, _) => store.is_nullable(b),
        (TypeKind::Tuple(xs), TypeKind::Tuple(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|(&x, &y)| is_subtype(store, hier, x, y))
        }
        (TypeKind::Function(p1, r1), TypeKind::Function(p2, r2)) => {
            // Contravariant parameter, covariant return.
            is_subtype(store, hier, p2, p1) && is_subtype(store, hier, r1, r2)
        }
        (TypeKind::Class(..), TypeKind::Class(..)) => {
            hier.supertypes(store, a).contains(&b)
        }
        _ => false,
    }
}

/// The static relationship of a cast `T.!(e: F)` or query `T.?(e: F)` from
/// source type `F` to target type `T`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CastRelation {
    /// Always succeeds with the same value (`F <: T`).
    Subsumption,
    /// Requires a runtime check that may fail (related types).
    Checked,
    /// Statically known to be impossible; the compiler rejects it
    /// ("the compiler rejects casts and queries between unrelated types
    /// wherever possible" — §2.2).
    Unrelated,
}

/// Classifies a cast/query from `from` to `to`.
///
/// When either side mentions a type variable the decision is deferred to
/// runtime (`Checked`) — parameterized casts are the paper's "intentional
/// violation of parametricity" that powers the §3.3/§3.4 patterns.
pub fn cast_relation(
    store: &mut TypeStore,
    hier: &Hierarchy,
    from: Type,
    to: Type,
) -> CastRelation {
    if is_subtype(store, hier, from, to) {
        return CastRelation::Subsumption;
    }
    if store.is_polymorphic(from) || store.is_polymorphic(to) {
        return CastRelation::Checked;
    }
    match (store.kind(from).clone(), store.kind(to).clone()) {
        // int <-> byte value conversions are checked (b12: "conversions
        // between primitive values").
        (TypeKind::Int, TypeKind::Byte) | (TypeKind::Byte, TypeKind::Int) => {
            CastRelation::Checked
        }
        (TypeKind::Class(c1, _), TypeKind::Class(c2, _)) => {
            // Legal between *related class constructors* regardless of type
            // arguments: `List<bool>.?(a: List<int>)` is a legal (false)
            // query in listing (d13), and downcasts need runtime checks.
            if hier.is_subclass(c1, c2) || hier.is_subclass(c2, c1) {
                CastRelation::Checked
            } else {
                CastRelation::Unrelated
            }
        }
        (TypeKind::Tuple(xs), TypeKind::Tuple(ys)) => {
            if xs.len() != ys.len() {
                return CastRelation::Unrelated;
            }
            let mut worst = CastRelation::Subsumption;
            for (&x, &y) in xs.iter().zip(ys.iter()) {
                match cast_relation(store, hier, x, y) {
                    CastRelation::Unrelated => return CastRelation::Unrelated,
                    CastRelation::Checked => worst = CastRelation::Checked,
                    CastRelation::Subsumption => {}
                }
            }
            worst
        }
        (TypeKind::Function(..), TypeKind::Function(..)) => CastRelation::Checked,
        (TypeKind::Array(x), TypeKind::Array(y)) => {
            // Arrays are invariant: a cast can only succeed when the element
            // types are identical, which subsumption already covered, or when
            // polymorphism hides the answer (handled above).
            let _ = (x, y);
            CastRelation::Unrelated
        }
        (TypeKind::Null, _) if store.is_nullable(to) => CastRelation::Subsumption,
        _ => CastRelation::Unrelated,
    }
}

/// Renders a type for diagnostics, e.g. `List<(int, bool)> -> void`.
pub fn display_type(store: &TypeStore, hier: &Hierarchy, t: Type) -> String {
    match store.kind(t) {
        TypeKind::Void => "void".into(),
        TypeKind::Bool => "bool".into(),
        TypeKind::Byte => "byte".into(),
        TypeKind::Int => "int".into(),
        TypeKind::Null => "null".into(),
        TypeKind::Array(e) => format!("Array<{}>", display_type(store, hier, *e)),
        TypeKind::Tuple(es) => {
            let inner: Vec<String> = es
                .iter()
                .map(|&e| display_type(store, hier, e))
                .collect();
            format!("({})", inner.join(", "))
        }
        TypeKind::Function(p, r) => {
            let ps = display_type(store, hier, *p);
            let rs = display_type(store, hier, *r);
            if matches!(store.kind(*p), TypeKind::Function(..)) {
                format!("({ps}) -> {rs}")
            } else {
                format!("{ps} -> {rs}")
            }
        }
        TypeKind::Class(c, args) => {
            let name = &hier.info(*c).name;
            if args.is_empty() {
                name.clone()
            } else {
                let inner: Vec<String> = args
                    .iter()
                    .map(|&a| display_type(store, hier, a))
                    .collect();
                format!("{name}<{}>", inner.join(", "))
            }
        }
        TypeKind::Var(v) => format!("#{}", v.0),
        TypeKind::Error => "<error>".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ClassInfo;
    use crate::store::TypeVarId;

    struct Fix {
        store: TypeStore,
        hier: Hierarchy,
        animal: Type,
        bat: Type,
    }

    fn fix() -> Fix {
        let mut store = TypeStore::new();
        let mut hier = Hierarchy::new();
        let animal_id = hier.add_class(ClassInfo {
            name: "Animal".into(),
            type_params: vec![],
            parent: None,
        });
        let bat_id = hier.add_class(ClassInfo {
            name: "Bat".into(),
            type_params: vec![],
            parent: Some((animal_id, vec![])),
        });
        let animal = store.class(animal_id, vec![]);
        let bat = store.class(bat_id, vec![]);
        Fix { store, hier, animal, bat }
    }

    #[test]
    fn reflexive() {
        let mut f = fix();
        let types = [f.store.int, f.store.void, f.animal, f.bat];
        for t in types {
            assert!(is_subtype(&mut f.store, &f.hier, t, t));
        }
    }

    #[test]
    fn class_subtyping_follows_extends() {
        let mut f = fix();
        assert!(is_subtype(&mut f.store, &f.hier, f.bat, f.animal));
        assert!(!is_subtype(&mut f.store, &f.hier, f.animal, f.bat));
    }

    #[test]
    fn no_universal_supertype() {
        // Two parentless classes are unrelated (paper §2.1).
        let mut f = fix();
        let other_id = f.hier.add_class(ClassInfo {
            name: "Other".into(),
            type_params: vec![],
            parent: None,
        });
        let other = f.store.class(other_id, vec![]);
        assert!(!is_subtype(&mut f.store, &f.hier, other, f.animal));
        assert!(!is_subtype(&mut f.store, &f.hier, f.animal, other));
    }

    #[test]
    fn primitives_unrelated() {
        let mut f = fix();
        { let __byte = f.store.byte; let __int = f.store.int; assert!(!is_subtype(&mut f.store, &f.hier, __int, __byte)); }
        { let __byte = f.store.byte; let __int = f.store.int; assert!(!is_subtype(&mut f.store, &f.hier, __byte, __int)); }
        { let __bool_ = f.store.bool_; let __int = f.store.int; assert!(!is_subtype(&mut f.store, &f.hier, __bool_, __int)); }
    }

    #[test]
    fn tuples_covariant_same_length() {
        // Paper §2.3: (T0..Tm) <: (S0..Sn) iff m == n and Ti <: Si.
        let mut f = fix();
        let tb = f.store.tuple(vec![f.bat, f.store.int]);
        let ta = f.store.tuple(vec![f.animal, f.store.int]);
        assert!(is_subtype(&mut f.store, &f.hier, tb, ta));
        assert!(!is_subtype(&mut f.store, &f.hier, ta, tb));
        // Longer tuples are NOT subtypes of shorter ones.
        let t3 = f.store.tuple(vec![f.bat, f.store.int, f.store.int]);
        assert!(!is_subtype(&mut f.store, &f.hier, t3, ta));
    }

    #[test]
    fn functions_contra_co() {
        // Paper §3.6: Animal -> void <: Bat -> void.
        let mut f = fix();
        let a2v = f.store.function(f.animal, f.store.void);
        let b2v = f.store.function(f.bat, f.store.void);
        assert!(is_subtype(&mut f.store, &f.hier, a2v, b2v));
        assert!(!is_subtype(&mut f.store, &f.hier, b2v, a2v));
        // Covariant return.
        let v2b = f.store.function(f.store.void, f.bat);
        let v2a = f.store.function(f.store.void, f.animal);
        assert!(is_subtype(&mut f.store, &f.hier, v2b, v2a));
        assert!(!is_subtype(&mut f.store, &f.hier, v2a, v2b));
    }

    #[test]
    fn function_variance_composes_with_tuples() {
        // (Animal, Animal) -> Bat <: (Bat, Bat) -> Animal.
        let mut f = fix();
        let pa = f.store.tuple(vec![f.animal, f.animal]);
        let pb = f.store.tuple(vec![f.bat, f.bat]);
        let f1 = f.store.function(pa, f.bat);
        let f2 = f.store.function(pb, f.animal);
        assert!(is_subtype(&mut f.store, &f.hier, f1, f2));
        assert!(!is_subtype(&mut f.store, &f.hier, f2, f1));
    }

    #[test]
    fn classes_invariant_in_type_params() {
        // Paper §3.6 (o6): List<Bat> is NOT a subtype of List<Animal>.
        let mut f = fix();
        let tv = TypeVarId(0);
        let list_id = f.hier.add_class(ClassInfo {
            name: "List".into(),
            type_params: vec![tv],
            parent: None,
        });
        let lb = f.store.class(list_id, vec![f.bat]);
        let la = f.store.class(list_id, vec![f.animal]);
        assert!(!is_subtype(&mut f.store, &f.hier, lb, la));
        assert!(!is_subtype(&mut f.store, &f.hier, la, lb));
    }

    #[test]
    fn arrays_invariant() {
        let mut f = fix();
        let ab = f.store.array(f.bat);
        let aa = f.store.array(f.animal);
        assert!(!is_subtype(&mut f.store, &f.hier, ab, aa));
    }

    #[test]
    fn null_subtype_of_reference_types() {
        let mut f = fix();
        let n = f.store.null;
        let arr = f.store.array(f.store.int);
        let fun = f.store.function(f.store.int, f.store.int);
        assert!(is_subtype(&mut f.store, &f.hier, n, f.animal));
        assert!(is_subtype(&mut f.store, &f.hier, n, arr));
        assert!(is_subtype(&mut f.store, &f.hier, n, fun));
        { let __int = f.store.int; assert!(!is_subtype(&mut f.store, &f.hier, n, __int)); }
        { let __void = f.store.void; assert!(!is_subtype(&mut f.store, &f.hier, n, __void)); }
    }

    #[test]
    fn subtyping_is_transitive_over_hierarchy() {
        let mut f = fix();
        let vampire_id = f.hier.add_class(ClassInfo {
            name: "Vampire".into(),
            type_params: vec![],
            parent: Some((
                match f.store.kind(f.bat) {
                    TypeKind::Class(c, _) => *c,
                    _ => unreachable!(),
                },
                vec![],
            )),
        });
        let vampire = f.store.class(vampire_id, vec![]);
        assert!(is_subtype(&mut f.store, &f.hier, vampire, f.animal));
    }

    #[test]
    fn cast_upcast_is_subsumption() {
        let mut f = fix();
        assert_eq!(
            cast_relation(&mut f.store, &f.hier, f.bat, f.animal),
            CastRelation::Subsumption
        );
    }

    #[test]
    fn cast_downcast_is_checked() {
        let mut f = fix();
        assert_eq!(
            cast_relation(&mut f.store, &f.hier, f.animal, f.bat),
            CastRelation::Checked
        );
    }

    #[test]
    fn cast_unrelated_classes_rejected() {
        let mut f = fix();
        let other_id = f.hier.add_class(ClassInfo {
            name: "Other".into(),
            type_params: vec![],
            parent: None,
        });
        let other = f.store.class(other_id, vec![]);
        assert_eq!(
            cast_relation(&mut f.store, &f.hier, other, f.animal),
            CastRelation::Unrelated
        );
    }

    #[test]
    fn cast_function_to_primitive_rejected() {
        // §2.2: "the compiler rejects casts and queries between unrelated
        // types ... such as between a function type and a primitive type".
        let mut f = fix();
        let fun = f.store.function(f.store.int, f.store.int);
        assert_eq!(
            { let __int = f.store.int; cast_relation(&mut f.store, &f.hier, fun, __int) },
            CastRelation::Unrelated
        );
    }

    #[test]
    fn cast_int_byte_checked_both_ways() {
        let mut f = fix();
        assert_eq!(
            { let __byte = f.store.byte; let __int = f.store.int; cast_relation(&mut f.store, &f.hier, __int, __byte) },
            CastRelation::Checked
        );
        assert_eq!(
            { let __byte = f.store.byte; let __int = f.store.int; cast_relation(&mut f.store, &f.hier, __byte, __int) },
            CastRelation::Checked
        );
    }

    #[test]
    fn cast_with_type_var_deferred() {
        let mut f = fix();
        let v = f.store.var(TypeVarId(9));
        assert_eq!(
            { let __int = f.store.int; cast_relation(&mut f.store, &f.hier, v, __int) },
            CastRelation::Checked
        );
        assert_eq!(
            { let __int = f.store.int; cast_relation(&mut f.store, &f.hier, __int, v) },
            CastRelation::Checked
        );
    }

    #[test]
    fn cast_tuples_elementwise() {
        let mut f = fix();
        let t_ab = f.store.tuple(vec![f.animal, f.store.int]);
        let t_bb = f.store.tuple(vec![f.bat, f.store.int]);
        assert_eq!(
            cast_relation(&mut f.store, &f.hier, t_ab, t_bb),
            CastRelation::Checked
        );
        let t2 = f.store.tuple(vec![f.store.int, f.store.int]);
        let t3 = f.store.tuple(vec![f.store.int, f.store.int, f.store.int]);
        assert_eq!(
            cast_relation(&mut f.store, &f.hier, t2, t3),
            CastRelation::Unrelated
        );
        let t_bool = f.store.tuple(vec![f.store.bool_, f.store.bool_]);
        assert_eq!(
            cast_relation(&mut f.store, &f.hier, t2, t_bool),
            CastRelation::Unrelated
        );
    }

    #[test]
    fn constructor_summary_matches_paper_table() {
        let rows = constructor_summary();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[3].params, vec![Variance::Contravariant, Variance::Covariant]);
        assert!(rows[2].params.iter().all(|&v| v == Variance::Covariant));
        assert!(rows[4].params.iter().all(|&v| v == Variance::Invariant));
    }

    #[test]
    fn display_renders_nested_types() {
        let mut f = fix();
        let t = f.store.tuple(vec![f.store.int, f.store.bool_]);
        let fun = f.store.function(t, f.store.void);
        assert_eq!(display_type(&f.store, &f.hier, fun), "(int, bool) -> void");
        let hof_param = f.store.function(f.store.int, f.store.int);
        let hof = f.store.function(hof_param, f.store.int);
        assert_eq!(display_type(&f.store, &f.hier, hof), "(int -> int) -> int");
    }

    #[test]
    fn error_type_unifies_with_everything() {
        let mut f = fix();
        let err = f.store.error;
        assert!(f.store.is_error(err));
        // Bidirectional subtyping with every shape of type.
        let tup = f.store.tuple(vec![f.store.int, f.store.bool_]);
        let fun = f.store.function(f.store.int, f.store.void);
        for t in [f.store.int, f.store.bool_, f.store.void, tup, fun, err] {
            assert!(is_subtype(&mut f.store, &f.hier, err, t));
            assert!(is_subtype(&mut f.store, &f.hier, t, err));
        }
        // Casting to/from the error type never introduces a second failure.
        let int = f.store.int;
        assert_eq!(
            cast_relation(&mut f.store, &f.hier, err, int),
            CastRelation::Subsumption
        );
        assert_eq!(
            cast_relation(&mut f.store, &f.hier, int, err),
            CastRelation::Subsumption
        );
        assert_eq!(display_type(&f.store, &f.hier, err), "<error>");
    }
}
