//! The class hierarchy: single inheritance, no universal supertype.
//!
//! Semantic analysis registers every class here; subtyping and cast/query
//! decisions consult the hierarchy. A class declared without a parent "begins
//! a new hierarchy which is unrelated to other class hierarchies" (paper
//! §2.1) — there is no `Object`.

use crate::store::{ClassId, Type, TypeStore, TypeVarId};
use std::collections::HashMap;

/// Metadata for one class, as needed by the type system.
#[derive(Clone, Debug)]
pub struct ClassInfo {
    /// Class name (for display).
    pub name: String,
    /// The class's type parameters, in declaration order.
    pub type_params: Vec<TypeVarId>,
    /// Parent class and the type arguments supplied to it, expressed in terms
    /// of this class's own type parameters. `None` for a hierarchy root.
    pub parent: Option<(ClassId, Vec<Type>)>,
}

/// All classes in a program.
#[derive(Clone, Debug, Default)]
pub struct Hierarchy {
    classes: Vec<ClassInfo>,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new() -> Hierarchy {
        Hierarchy::default()
    }

    /// Registers a class and returns its id.
    pub fn add_class(&mut self, info: ClassInfo) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(info);
        id
    }

    /// Metadata for `c`.
    ///
    /// # Panics
    /// Panics if `c` was not produced by this hierarchy.
    pub fn info(&self, c: ClassId) -> &ClassInfo {
        &self.classes[c.index()]
    }

    /// Mutable metadata for `c` (used while declaring classes).
    pub fn info_mut(&mut self, c: ClassId) -> &mut ClassInfo {
        &mut self.classes[c.index()]
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassInfo)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, info)| (ClassId(i as u32), info))
    }

    /// True if `c` is `d` or transitively extends `d`.
    pub fn is_subclass(&self, c: ClassId, d: ClassId) -> bool {
        let mut cur = c;
        loop {
            if cur == d {
                return true;
            }
            match self.info(cur).parent {
                Some((p, _)) => cur = p,
                None => return false,
            }
        }
    }

    /// The depth of `c` in its hierarchy (roots have depth 0).
    pub fn depth(&self, c: ClassId) -> usize {
        let mut n = 0;
        let mut cur = c;
        while let Some((p, _)) = self.info(cur).parent {
            n += 1;
            cur = p;
        }
        n
    }

    /// Given the class type `C<args>`, returns the *substituted* parent class
    /// type, or `None` for a root.
    pub fn parent_type(
        &self,
        store: &mut TypeStore,
        class: ClassId,
        args: &[Type],
    ) -> Option<Type> {
        let info = self.info(class);
        let (p, pargs) = info.parent.clone()?;
        let subst: HashMap<TypeVarId, Type> = info
            .type_params
            .iter()
            .copied()
            .zip(args.iter().copied())
            .collect();
        let sub_args: Vec<Type> = pargs.iter().map(|&a| store.substitute(a, &subst)).collect();
        Some(store.class(p, sub_args))
    }

    /// Walks the supertype chain of `C<args>` (inclusive), yielding each class
    /// type with type arguments substituted.
    pub fn supertypes(&self, store: &mut TypeStore, mut ty: Type) -> Vec<Type> {
        let mut out = Vec::new();
        loop {
            out.push(ty);
            let (c, args) = match store.kind(ty) {
                crate::store::TypeKind::Class(c, args) => (*c, args.clone()),
                _ => return out,
            };
            match self.parent_type(store, c, &args) {
                Some(p) => ty = p,
                None => return out,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_hierarchy() -> (TypeStore, Hierarchy, ClassId, ClassId) {
        // class Animal { }  class Bat extends Animal { }
        let store = TypeStore::new();
        let mut h = Hierarchy::new();
        let animal = h.add_class(ClassInfo {
            name: "Animal".into(),
            type_params: vec![],
            parent: None,
        });
        let bat = h.add_class(ClassInfo {
            name: "Bat".into(),
            type_params: vec![],
            parent: Some((animal, vec![])),
        });
        (store, h, animal, bat)
    }

    #[test]
    fn subclass_relation() {
        let (_s, h, animal, bat) = simple_hierarchy();
        assert!(h.is_subclass(bat, animal));
        assert!(h.is_subclass(bat, bat));
        assert!(!h.is_subclass(animal, bat));
    }

    #[test]
    fn depth_counts_ancestors() {
        let (_s, h, animal, bat) = simple_hierarchy();
        assert_eq!(h.depth(animal), 0);
        assert_eq!(h.depth(bat), 1);
    }

    #[test]
    fn generic_parent_substitution() {
        // class Box<T> extends Any { }  (paper §3.4)
        let mut store = TypeStore::new();
        let mut h = Hierarchy::new();
        let any = h.add_class(ClassInfo {
            name: "Any".into(),
            type_params: vec![],
            parent: None,
        });
        let tv = TypeVarId(0);
        let boxc = h.add_class(ClassInfo {
            name: "Box".into(),
            type_params: vec![tv],
            parent: Some((any, vec![])),
        });
        let b_int = store.class(boxc, vec![store.int]);
        let sups = h.supertypes(&mut store, b_int);
        let any_t = store.class(any, vec![]);
        assert_eq!(sups, vec![b_int, any_t]);
    }

    #[test]
    fn generic_parent_passes_args_through() {
        // class Sub<T> extends Super<(T, int)> { }
        let mut store = TypeStore::new();
        let mut h = Hierarchy::new();
        let sup_tv = TypeVarId(0);
        let sup = h.add_class(ClassInfo {
            name: "Super".into(),
            type_params: vec![sup_tv],
            parent: None,
        });
        let sub_tv = TypeVarId(1);
        let sub_tv_ty = store.var(sub_tv);
        let parent_arg = store.tuple(vec![sub_tv_ty, store.int]);
        let sub = h.add_class(ClassInfo {
            name: "Sub".into(),
            type_params: vec![sub_tv],
            parent: Some((sup, vec![parent_arg])),
        });
        let sub_bool = store.class(sub, vec![store.bool_]);
        let sups = h.supertypes(&mut store, sub_bool);
        let expect_arg = store.tuple(vec![store.bool_, store.int]);
        let expect = store.class(sup, vec![expect_arg]);
        assert_eq!(sups[1], expect);
    }
}
