//! The type store: a hash-consing interner for Virgil types.
//!
//! Virgil III's type system has exactly five kinds of type constructors
//! (paper §2.5): primitives, arrays, tuples, functions, and one class type
//! constructor per user-defined class. Types are interned so that structural
//! equality is pointer (id) equality; a [`Type`] is a `Copy` index.
//!
//! The *degenerate tuple rules* of §2.3 are enforced at construction time:
//! `()` **is** `void` and `(T)` **is** `T`, so neither ever exists as a
//! distinct interned type.

use std::collections::HashMap;
use std::fmt;

/// An interned type; cheap to copy and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Type(u32);

impl Type {
    /// The raw index (for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty#{}", self.0)
    }
}

/// Identifies a user-defined class (assigned by semantic analysis).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a type parameter declaration. Each `<T>` in the program gets a
/// globally unique id, so a class's `T` never collides with a method's `T`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TypeVarId(pub u32);

impl TypeVarId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The structure of a type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TypeKind {
    /// `void`: exactly one value, `()`.
    Void,
    /// `bool`.
    Bool,
    /// `byte`: an unsigned 8-bit integer.
    Byte,
    /// `int`: a signed 32-bit integer.
    Int,
    /// The type of the `null` literal; a subtype of every class, array, and
    /// function type.
    Null,
    /// `Array<T>`; invariant in `T`.
    Array(Type),
    /// A tuple `(T0, ..., Tn)` with `n >= 2` elements (degenerate forms are
    /// normalized away); covariant in every element.
    Tuple(Vec<Type>),
    /// A function `P -> R`; contravariant in `P`, covariant in `R`.
    Function(Type, Type),
    /// A class type `C<T0, ..., Tn>`; invariant in its type parameters.
    Class(ClassId, Vec<Type>),
    /// A reference to a type parameter.
    Var(TypeVarId),
    /// The poisoned error type, produced only after a diagnostic has been
    /// reported. It unifies with every type so one error does not cascade
    /// into dozens of follow-on mismatches; a module containing it is never
    /// handed to later pipeline stages.
    Error,
}

/// Interner for [`Type`]s plus pre-made primitives.
#[derive(Debug, Clone)]
pub struct TypeStore {
    kinds: Vec<TypeKind>,
    map: HashMap<TypeKind, Type>,
    /// `void`.
    pub void: Type,
    /// `bool`.
    pub bool_: Type,
    /// `byte`.
    pub byte: Type,
    /// `int`.
    pub int: Type,
    /// The null type.
    pub null: Type,
    /// `string`, an alias for `Array<byte>`.
    pub string: Type,
    /// The poisoned error type (see [`TypeKind::Error`]).
    pub error: Type,
}

impl Default for TypeStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeStore {
    /// Creates a store with the primitives interned.
    pub fn new() -> TypeStore {
        let mut s = TypeStore {
            kinds: Vec::new(),
            map: HashMap::new(),
            void: Type(0),
            bool_: Type(0),
            byte: Type(0),
            int: Type(0),
            null: Type(0),
            string: Type(0),
            error: Type(0),
        };
        s.void = s.intern(TypeKind::Void);
        s.bool_ = s.intern(TypeKind::Bool);
        s.byte = s.intern(TypeKind::Byte);
        s.int = s.intern(TypeKind::Int);
        s.null = s.intern(TypeKind::Null);
        s.string = s.array(s.byte);
        s.error = s.intern(TypeKind::Error);
        s
    }

    /// True if `t` is the poisoned error type.
    pub fn is_error(&self, t: Type) -> bool {
        t == self.error
    }

    fn intern(&mut self, kind: TypeKind) -> Type {
        if let Some(&t) = self.map.get(&kind) {
            return t;
        }
        let t = Type(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        self.map.insert(kind, t);
        t
    }

    /// The structure of `t`.
    pub fn kind(&self, t: Type) -> &TypeKind {
        &self.kinds[t.index()]
    }

    /// All interned kinds in id order (`ty#0`, `ty#1`, …). Two stores with
    /// equal iteration sequences assign every interned id identically, so
    /// IR that prints types as ids means the same thing under both — the
    /// cross-compile context check the persistent pass store relies on.
    pub fn kinds(&self) -> impl Iterator<Item = &TypeKind> {
        self.kinds.iter()
    }

    /// Number of distinct types interned so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True if only primitives exist (never in practice).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Interns `Array<elem>`.
    pub fn array(&mut self, elem: Type) -> Type {
        self.intern(TypeKind::Array(elem))
    }

    /// Interns a tuple type, applying the degenerate rules: zero elements is
    /// `void`, one element is the element itself.
    pub fn tuple(&mut self, elems: Vec<Type>) -> Type {
        match elems.len() {
            0 => self.void,
            1 => elems[0],
            _ => self.intern(TypeKind::Tuple(elems)),
        }
    }

    /// Interns `param -> ret`.
    pub fn function(&mut self, param: Type, ret: Type) -> Type {
        self.intern(TypeKind::Function(param, ret))
    }

    /// Interns a class type `C<args>`.
    pub fn class(&mut self, class: ClassId, args: Vec<Type>) -> Type {
        self.intern(TypeKind::Class(class, args))
    }

    /// Interns a type-variable reference.
    pub fn var(&mut self, v: TypeVarId) -> Type {
        self.intern(TypeKind::Var(v))
    }

    /// True if `t` is `void`.
    pub fn is_void(&self, t: Type) -> bool {
        t == self.void
    }

    /// True if `t` is a class, array, function, or null type — i.e. a type
    /// whose values may be `null`.
    pub fn is_nullable(&self, t: Type) -> bool {
        matches!(
            self.kind(t),
            TypeKind::Class(..)
                | TypeKind::Array(_)
                | TypeKind::Function(..)
                | TypeKind::Null
                | TypeKind::Error
        )
    }

    /// True if `t` contains any type variable.
    pub fn is_polymorphic(&self, t: Type) -> bool {
        match self.kind(t) {
            TypeKind::Var(_) => true,
            TypeKind::Array(e) => self.is_polymorphic(*e),
            TypeKind::Tuple(es) => {
                let es = es.clone();
                es.iter().any(|&e| self.is_polymorphic(e))
            }
            TypeKind::Function(p, r) => {
                let (p, r) = (*p, *r);
                self.is_polymorphic(p) || self.is_polymorphic(r)
            }
            TypeKind::Class(_, args) => {
                let args = args.clone();
                args.iter().any(|&a| self.is_polymorphic(a))
            }
            _ => false,
        }
    }

    /// True if `t` contains a tuple type anywhere (used to verify the
    /// post-normalization invariant that tuples are gone).
    pub fn contains_tuple(&self, t: Type) -> bool {
        match self.kind(t) {
            TypeKind::Tuple(_) => true,
            TypeKind::Array(e) => self.contains_tuple(*e),
            TypeKind::Function(p, r) => {
                let (p, r) = (*p, *r);
                self.contains_tuple(p) || self.contains_tuple(r)
            }
            TypeKind::Class(_, args) => {
                let args = args.clone();
                args.iter().any(|&a| self.contains_tuple(a))
            }
            _ => false,
        }
    }

    /// Flattens a type into the scalar types that represent it after
    /// normalization (paper §4.2): tuples flatten recursively, `void`
    /// disappears, every other type is one scalar.
    pub fn flatten(&self, t: Type) -> Vec<Type> {
        let mut out = Vec::new();
        self.flatten_into(t, &mut out);
        out
    }

    fn flatten_into(&self, t: Type, out: &mut Vec<Type>) {
        match self.kind(t) {
            TypeKind::Void => {}
            TypeKind::Tuple(es) => {
                for e in es.clone() {
                    self.flatten_into(e, out);
                }
            }
            _ => out.push(t),
        }
    }

    /// Number of scalar slots `t` occupies after normalization.
    pub fn scalar_width(&self, t: Type) -> usize {
        match self.kind(t) {
            TypeKind::Void => 0,
            TypeKind::Tuple(es) => {
                es.clone().iter().map(|&e| self.scalar_width(e)).sum()
            }
            _ => 1,
        }
    }

    /// Substitutes type variables in `t` according to `subst` (var → type).
    /// Variables not in the map are left in place.
    pub fn substitute(&mut self, t: Type, subst: &HashMap<TypeVarId, Type>) -> Type {
        if subst.is_empty() || !self.is_polymorphic(t) {
            return t;
        }
        match self.kind(t).clone() {
            TypeKind::Var(v) => subst.get(&v).copied().unwrap_or(t),
            TypeKind::Array(e) => {
                let e = self.substitute(e, subst);
                self.array(e)
            }
            TypeKind::Tuple(es) => {
                let es = es.iter().map(|&e| self.substitute(e, subst)).collect();
                self.tuple(es)
            }
            TypeKind::Function(p, r) => {
                let p = self.substitute(p, subst);
                let r = self.substitute(r, subst);
                self.function(p, r)
            }
            TypeKind::Class(c, args) => {
                let args = args.iter().map(|&a| self.substitute(a, subst)).collect();
                self.class(c, args)
            }
            _ => t,
        }
    }

    /// Collects every type variable occurring in `t` into `out`.
    pub fn collect_vars(&self, t: Type, out: &mut Vec<TypeVarId>) {
        match self.kind(t) {
            TypeKind::Var(v) if !out.contains(v) => out.push(*v),
            TypeKind::Var(_) => {}
            TypeKind::Array(e) => self.collect_vars(*e, out),
            TypeKind::Tuple(es) => {
                for e in es.clone() {
                    self.collect_vars(e, out);
                }
            }
            TypeKind::Function(p, r) => {
                let (p, r) = (*p, *r);
                self.collect_vars(p, out);
                self.collect_vars(r, out);
            }
            TypeKind::Class(_, args) => {
                for a in args.clone() {
                    self.collect_vars(a, out);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_distinct() {
        let s = TypeStore::new();
        let all = [s.void, s.bool_, s.byte, s.int, s.null];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }

    #[test]
    fn interning_gives_equal_ids() {
        let mut s = TypeStore::new();
        let t1 = s.tuple(vec![s.int, s.bool_]);
        let t2 = s.tuple(vec![s.int, s.bool_]);
        assert_eq!(t1, t2);
        let f1 = s.function(t1, s.void);
        let f2 = s.function(t2, s.void);
        assert_eq!(f1, f2);
    }

    #[test]
    fn degenerate_tuple_rules() {
        // Paper §2.3: () is void; (T) is T.
        let mut s = TypeStore::new();
        assert_eq!(s.tuple(vec![]), s.void);
        let i = s.int;
        assert_eq!(s.tuple(vec![i]), i);
    }

    #[test]
    fn string_is_array_of_byte() {
        let mut s = TypeStore::new();
        let b = s.byte;
        let ab = s.array(b);
        assert_eq!(s.string, ab);
    }

    #[test]
    fn flatten_recursively() {
        let mut s = TypeStore::new();
        let inner = s.tuple(vec![s.int, s.bool_]);
        let outer = s.tuple(vec![inner, s.byte]);
        assert_eq!(s.flatten(outer), vec![s.int, s.bool_, s.byte]);
        assert_eq!(s.scalar_width(outer), 3);
    }

    #[test]
    fn flatten_void_disappears() {
        let mut s = TypeStore::new();
        assert_eq!(s.flatten(s.void), vec![]);
        assert_eq!(s.scalar_width(s.void), 0);
        let t = s.tuple(vec![s.void, s.int]);
        // (void, int) is a 2-tuple; it flattens to just [int].
        assert_eq!(s.flatten(t), vec![s.int]);
    }

    #[test]
    fn substitution_replaces_vars() {
        let mut s = TypeStore::new();
        let v = TypeVarId(0);
        let tv = s.var(v);
        let list_t = s.tuple(vec![tv, s.int]);
        let mut sub = HashMap::new();
        sub.insert(v, s.bool_);
        let r = s.substitute(list_t, &sub);
        let expect = s.tuple(vec![s.bool_, s.int]);
        assert_eq!(r, expect);
    }

    #[test]
    fn substitution_under_function_and_array() {
        let mut s = TypeStore::new();
        let v = TypeVarId(7);
        let tv = s.var(v);
        let arr = s.array(tv);
        let f = s.function(arr, tv);
        let mut sub = HashMap::new();
        sub.insert(v, s.byte);
        let r = s.substitute(f, &sub);
        let ab = s.array(s.byte);
        let expect = s.function(ab, s.byte);
        assert_eq!(r, expect);
    }

    #[test]
    fn polymorphic_detection() {
        let mut s = TypeStore::new();
        let v = s.var(TypeVarId(1));
        assert!(s.is_polymorphic(v));
        let t = s.tuple(vec![s.int, v]);
        assert!(s.is_polymorphic(t));
        let m = s.tuple(vec![s.int, s.bool_]);
        assert!(!s.is_polymorphic(m));
    }

    #[test]
    fn contains_tuple_detection() {
        let mut s = TypeStore::new();
        let tup = s.tuple(vec![s.int, s.int]);
        let arr = s.array(tup);
        assert!(s.contains_tuple(arr));
        let f = s.function(s.int, s.int);
        assert!(!s.contains_tuple(f));
    }

    #[test]
    fn collect_vars_finds_all() {
        let mut s = TypeStore::new();
        let a = s.var(TypeVarId(0));
        let b = s.var(TypeVarId(1));
        let f = s.function(a, b);
        let mut vars = Vec::new();
        s.collect_vars(f, &mut vars);
        assert_eq!(vars, vec![TypeVarId(0), TypeVarId(1)]);
    }
}
