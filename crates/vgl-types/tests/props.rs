//! Property tests over the type system: subtyping laws, degenerate tuple
//! rules, flattening invariants, and cast-relation coherence over randomly
//! generated types.
//!
//! Types are generated from a seeded in-tree xorshift PRNG (deterministic,
//! dependency-free); failures print the seed. `VGL_PROP_CASES` overrides the
//! default 128 cases.

use vgl_types::{
    cast_relation, is_subtype, CastRelation, ClassInfo, Hierarchy, Type, TypeStore,
};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn cases() -> u64 {
    std::env::var("VGL_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// A recipe for building a random type in a fresh store (recipes cannot
/// carry the store itself).
#[derive(Clone, Debug)]
enum TyRecipe {
    Void,
    Bool,
    Byte,
    Int,
    /// One of the fixture classes (0 = Animal, 1 = Bat, 2 = Vampire, 3 = Other).
    Class(u8),
    Array(Box<TyRecipe>),
    Tuple(Vec<TyRecipe>),
    Function(Box<TyRecipe>, Box<TyRecipe>),
}

fn gen_ty(rng: &mut Rng, depth: u32) -> TyRecipe {
    let leaf = |rng: &mut Rng| match rng.below(5) {
        0 => TyRecipe::Void,
        1 => TyRecipe::Bool,
        2 => TyRecipe::Byte,
        3 => TyRecipe::Int,
        _ => TyRecipe::Class(rng.below(4) as u8),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(4) {
        0 => leaf(rng),
        1 => TyRecipe::Array(Box::new(gen_ty(rng, depth - 1))),
        2 => {
            let n = rng.below(4);
            TyRecipe::Tuple((0..n).map(|_| gen_ty(rng, depth - 1)).collect())
        }
        _ => TyRecipe::Function(
            Box::new(gen_ty(rng, depth - 1)),
            Box::new(gen_ty(rng, depth - 1)),
        ),
    }
}

struct Fixture {
    store: TypeStore,
    hier: Hierarchy,
    classes: Vec<Type>,
}

fn fixture() -> Fixture {
    let mut store = TypeStore::new();
    let mut hier = Hierarchy::new();
    let animal = hier.add_class(ClassInfo { name: "Animal".into(), type_params: vec![], parent: None });
    let bat = hier.add_class(ClassInfo { name: "Bat".into(), type_params: vec![], parent: Some((animal, vec![])) });
    let vampire = hier.add_class(ClassInfo { name: "Vampire".into(), type_params: vec![], parent: Some((bat, vec![])) });
    let other = hier.add_class(ClassInfo { name: "Other".into(), type_params: vec![], parent: None });
    let classes = vec![
        store.class(animal, vec![]),
        store.class(bat, vec![]),
        store.class(vampire, vec![]),
        store.class(other, vec![]),
    ];
    Fixture { store, hier, classes }
}

fn build(f: &mut Fixture, r: &TyRecipe) -> Type {
    match r {
        TyRecipe::Void => f.store.void,
        TyRecipe::Bool => f.store.bool_,
        TyRecipe::Byte => f.store.byte,
        TyRecipe::Int => f.store.int,
        TyRecipe::Class(i) => f.classes[*i as usize % f.classes.len()],
        TyRecipe::Array(e) => {
            let t = build(f, e);
            f.store.array(t)
        }
        TyRecipe::Tuple(es) => {
            let ts: Vec<Type> = es.iter().map(|e| build(f, e)).collect();
            f.store.tuple(ts)
        }
        TyRecipe::Function(p, ret) => {
            let pt = build(f, p);
            let rt = build(f, ret);
            f.store.function(pt, rt)
        }
    }
}

/// Runs `body` once per case with a per-test seed stream.
fn for_cases(tag: u64, mut body: impl FnMut(u64, &mut Rng)) {
    for case in 0..cases() {
        let seed = (tag << 32) | case;
        let mut rng = Rng::new(seed);
        body(seed, &mut rng);
    }
}

#[test]
fn subtyping_is_reflexive() {
    for_cases(0x01, |seed, rng| {
        let r = gen_ty(rng, 3);
        let mut f = fixture();
        let t = build(&mut f, &r);
        assert!(is_subtype(&mut f.store, &f.hier, t, t), "seed {seed}: {r:?}");
    });
}

#[test]
fn subtyping_is_transitive() {
    for_cases(0x02, |seed, rng| {
        let (a, b, c) = (gen_ty(rng, 3), gen_ty(rng, 3), gen_ty(rng, 3));
        let mut f = fixture();
        let (ta, tb, tc) = (build(&mut f, &a), build(&mut f, &b), build(&mut f, &c));
        if is_subtype(&mut f.store, &f.hier, ta, tb)
            && is_subtype(&mut f.store, &f.hier, tb, tc)
        {
            assert!(
                is_subtype(&mut f.store, &f.hier, ta, tc),
                "seed {seed}: {a:?} <: {b:?} <: {c:?}"
            );
        }
    });
}

#[test]
fn subtyping_is_antisymmetric() {
    for_cases(0x03, |seed, rng| {
        let (a, b) = (gen_ty(rng, 3), gen_ty(rng, 3));
        let mut f = fixture();
        let (ta, tb) = (build(&mut f, &a), build(&mut f, &b));
        if is_subtype(&mut f.store, &f.hier, ta, tb)
            && is_subtype(&mut f.store, &f.hier, tb, ta)
        {
            // Interning makes structural equality id equality.
            assert_eq!(ta, tb, "seed {seed}: {a:?} / {b:?}");
        }
    });
}

#[test]
fn interning_is_canonical() {
    for_cases(0x04, |seed, rng| {
        // Building the same recipe twice yields the same id.
        let r = gen_ty(rng, 3);
        let mut f = fixture();
        let t1 = build(&mut f, &r);
        let t2 = build(&mut f, &r);
        assert_eq!(t1, t2, "seed {seed}: {r:?}");
    });
}

#[test]
fn subsumption_implies_legal_cast() {
    for_cases(0x05, |seed, rng| {
        let (a, b) = (gen_ty(rng, 3), gen_ty(rng, 3));
        let mut f = fixture();
        let (ta, tb) = (build(&mut f, &a), build(&mut f, &b));
        if is_subtype(&mut f.store, &f.hier, ta, tb) {
            assert_eq!(
                cast_relation(&mut f.store, &f.hier, ta, tb),
                CastRelation::Subsumption,
                "seed {seed}: {a:?} <: {b:?}"
            );
        }
    });
}

#[test]
fn flatten_has_no_tuples_or_voids() {
    for_cases(0x06, |seed, rng| {
        let r = gen_ty(rng, 3);
        let mut f = fixture();
        let t = build(&mut f, &r);
        for p in f.store.flatten(t) {
            assert!(
                !matches!(f.store.kind(p), vgl_types::TypeKind::Tuple(_)),
                "seed {seed}: {r:?}"
            );
            assert!(!f.store.is_void(p), "seed {seed}: {r:?}");
        }
    });
}

#[test]
fn scalar_width_matches_flatten() {
    for_cases(0x07, |seed, rng| {
        let r = gen_ty(rng, 3);
        let mut f = fixture();
        let t = build(&mut f, &r);
        assert_eq!(
            f.store.scalar_width(t),
            f.store.flatten(t).len(),
            "seed {seed}: {r:?}"
        );
    });
}

#[test]
fn function_variance_law() {
    for_cases(0x08, |seed, rng| {
        // (P1 -> R1) <: (P2 -> R2)  iff  P2 <: P1 and R1 <: R2.
        let (p1, r1, p2, r2) =
            (gen_ty(rng, 3), gen_ty(rng, 3), gen_ty(rng, 3), gen_ty(rng, 3));
        let mut f = fixture();
        let (tp1, tr1) = (build(&mut f, &p1), build(&mut f, &r1));
        let (tp2, tr2) = (build(&mut f, &p2), build(&mut f, &r2));
        let f1 = f.store.function(tp1, tr1);
        let f2 = f.store.function(tp2, tr2);
        let lhs = is_subtype(&mut f.store, &f.hier, f1, f2);
        let rhs = is_subtype(&mut f.store, &f.hier, tp2, tp1)
            && is_subtype(&mut f.store, &f.hier, tr1, tr2);
        assert_eq!(lhs, rhs, "seed {seed}: ({p1:?} -> {r1:?}) vs ({p2:?} -> {r2:?})");
    });
}

#[test]
fn tuple_covariance_law() {
    for_cases(0x09, |seed, rng| {
        let xs: Vec<TyRecipe> = (0..2 + rng.below(2)).map(|_| gen_ty(rng, 3)).collect();
        let ys: Vec<TyRecipe> = (0..2 + rng.below(2)).map(|_| gen_ty(rng, 3)).collect();
        let mut f = fixture();
        let tx: Vec<Type> = xs.iter().map(|r| build(&mut f, r)).collect();
        let ty: Vec<Type> = ys.iter().map(|r| build(&mut f, r)).collect();
        let tt = f.store.tuple(tx.clone());
        let ts = f.store.tuple(ty.clone());
        let lhs = is_subtype(&mut f.store, &f.hier, tt, ts);
        let rhs = tx.len() == ty.len()
            && tx.iter().zip(ty.iter()).all(|(&x, &y)| {
                is_subtype(&mut f.store, &f.hier, x, y)
            });
        assert_eq!(lhs, rhs, "seed {seed}: {xs:?} vs {ys:?}");
    });
}
