//! Property tests over the type system: subtyping laws, degenerate tuple
//! rules, flattening invariants, and cast-relation coherence over randomly
//! generated types.

use proptest::prelude::*;
use vgl_types::{
    cast_relation, is_subtype, CastRelation, ClassInfo, Hierarchy, Type, TypeStore,
};

/// A recipe for building a random type in a fresh store (strategies cannot
/// carry the store itself).
#[derive(Clone, Debug)]
enum TyRecipe {
    Void,
    Bool,
    Byte,
    Int,
    /// One of the fixture classes (0 = Animal, 1 = Bat, 2 = Vampire, 3 = Other).
    Class(u8),
    Array(Box<TyRecipe>),
    Tuple(Vec<TyRecipe>),
    Function(Box<TyRecipe>, Box<TyRecipe>),
}

fn arb_ty() -> impl Strategy<Value = TyRecipe> {
    let leaf = prop_oneof![
        Just(TyRecipe::Void),
        Just(TyRecipe::Bool),
        Just(TyRecipe::Byte),
        Just(TyRecipe::Int),
        (0u8..4).prop_map(TyRecipe::Class),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|t| TyRecipe::Array(Box::new(t))),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(TyRecipe::Tuple),
            (inner.clone(), inner).prop_map(|(p, r)| TyRecipe::Function(Box::new(p), Box::new(r))),
        ]
    })
}

struct Fixture {
    store: TypeStore,
    hier: Hierarchy,
    classes: Vec<Type>,
}

fn fixture() -> Fixture {
    let mut store = TypeStore::new();
    let mut hier = Hierarchy::new();
    let animal = hier.add_class(ClassInfo { name: "Animal".into(), type_params: vec![], parent: None });
    let bat = hier.add_class(ClassInfo { name: "Bat".into(), type_params: vec![], parent: Some((animal, vec![])) });
    let vampire = hier.add_class(ClassInfo { name: "Vampire".into(), type_params: vec![], parent: Some((bat, vec![])) });
    let other = hier.add_class(ClassInfo { name: "Other".into(), type_params: vec![], parent: None });
    let classes = vec![
        store.class(animal, vec![]),
        store.class(bat, vec![]),
        store.class(vampire, vec![]),
        store.class(other, vec![]),
    ];
    Fixture { store, hier, classes }
}

fn build(f: &mut Fixture, r: &TyRecipe) -> Type {
    match r {
        TyRecipe::Void => f.store.void,
        TyRecipe::Bool => f.store.bool_,
        TyRecipe::Byte => f.store.byte,
        TyRecipe::Int => f.store.int,
        TyRecipe::Class(i) => f.classes[*i as usize % f.classes.len()],
        TyRecipe::Array(e) => {
            let t = build(f, e);
            f.store.array(t)
        }
        TyRecipe::Tuple(es) => {
            let ts: Vec<Type> = es.iter().map(|e| build(f, e)).collect();
            f.store.tuple(ts)
        }
        TyRecipe::Function(p, ret) => {
            let pt = build(f, p);
            let rt = build(f, ret);
            f.store.function(pt, rt)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(128),
        ..ProptestConfig::default()
    })]

    #[test]
    fn subtyping_is_reflexive(r in arb_ty()) {
        let mut f = fixture();
        let t = build(&mut f, &r);
        prop_assert!(is_subtype(&mut f.store, &f.hier, t, t));
    }

    #[test]
    fn subtyping_is_transitive(a in arb_ty(), b in arb_ty(), c in arb_ty()) {
        let mut f = fixture();
        let (ta, tb, tc) = (build(&mut f, &a), build(&mut f, &b), build(&mut f, &c));
        if is_subtype(&mut f.store, &f.hier, ta, tb)
            && is_subtype(&mut f.store, &f.hier, tb, tc)
        {
            prop_assert!(is_subtype(&mut f.store, &f.hier, ta, tc));
        }
    }

    #[test]
    fn subtyping_is_antisymmetric(a in arb_ty(), b in arb_ty()) {
        let mut f = fixture();
        let (ta, tb) = (build(&mut f, &a), build(&mut f, &b));
        if is_subtype(&mut f.store, &f.hier, ta, tb)
            && is_subtype(&mut f.store, &f.hier, tb, ta)
        {
            // Interning makes structural equality id equality.
            prop_assert_eq!(ta, tb);
        }
    }

    #[test]
    fn interning_is_canonical(r in arb_ty()) {
        // Building the same recipe twice yields the same id.
        let mut f = fixture();
        let t1 = build(&mut f, &r);
        let t2 = build(&mut f, &r);
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn subsumption_implies_legal_cast(a in arb_ty(), b in arb_ty()) {
        let mut f = fixture();
        let (ta, tb) = (build(&mut f, &a), build(&mut f, &b));
        if is_subtype(&mut f.store, &f.hier, ta, tb) {
            prop_assert_eq!(
                cast_relation(&mut f.store, &f.hier, ta, tb),
                CastRelation::Subsumption
            );
        }
    }

    #[test]
    fn flatten_has_no_tuples_or_voids(r in arb_ty()) {
        let mut f = fixture();
        let t = build(&mut f, &r);
        for p in f.store.flatten(t) {
            prop_assert!(!matches!(f.store.kind(p), vgl_types::TypeKind::Tuple(_)));
            prop_assert!(!f.store.is_void(p));
        }
    }

    #[test]
    fn scalar_width_matches_flatten(r in arb_ty()) {
        let mut f = fixture();
        let t = build(&mut f, &r);
        prop_assert_eq!(f.store.scalar_width(t), f.store.flatten(t).len());
    }

    #[test]
    fn function_variance_law(p1 in arb_ty(), r1 in arb_ty(), p2 in arb_ty(), r2 in arb_ty()) {
        // (P1 -> R1) <: (P2 -> R2)  iff  P2 <: P1 and R1 <: R2.
        let mut f = fixture();
        let (tp1, tr1) = (build(&mut f, &p1), build(&mut f, &r1));
        let (tp2, tr2) = (build(&mut f, &p2), build(&mut f, &r2));
        let f1 = f.store.function(tp1, tr1);
        let f2 = f.store.function(tp2, tr2);
        let lhs = is_subtype(&mut f.store, &f.hier, f1, f2);
        let rhs = is_subtype(&mut f.store, &f.hier, tp2, tp1)
            && is_subtype(&mut f.store, &f.hier, tr1, tr2);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn tuple_covariance_law(xs in proptest::collection::vec(arb_ty(), 2..4),
                            ys in proptest::collection::vec(arb_ty(), 2..4)) {
        let mut f = fixture();
        let tx: Vec<Type> = xs.iter().map(|r| build(&mut f, r)).collect();
        let ty: Vec<Type> = ys.iter().map(|r| build(&mut f, r)).collect();
        let tt = f.store.tuple(tx.clone());
        let ts = f.store.tuple(ty.clone());
        let lhs = is_subtype(&mut f.store, &f.hier, tt, ts);
        let rhs = tx.len() == ty.len()
            && tx.iter().zip(ty.iter()).all(|(&x, &y)| {
                is_subtype(&mut f.store, &f.hier, x, y)
            });
        prop_assert_eq!(lhs, rhs);
    }
}
