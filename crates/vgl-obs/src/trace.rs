//! Chrome trace-event JSON builder.
//!
//! Renders the [trace-event format] consumed by `chrome://tracing` and
//! Perfetto's legacy importer: a single JSON object with a `traceEvents`
//! array of `X` (complete), `i` (instant), `C` (counter), and `M`
//! (metadata) events. Everything is hand-rolled on [`crate::json`] — no
//! serde, no new dependencies — so `vglc trace` output round-trips through
//! the in-tree parser and can be validated in CI with nothing but this
//! crate.
//!
//! Timestamps (`ts`) and durations (`dur`) are microseconds, as the format
//! requires. Lanes are addressed by `(pid, tid)` pairs; use
//! [`ChromeTrace::name_process`] / [`ChromeTrace::name_thread`] so viewers
//! show meaningful labels instead of raw numbers.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::Json;

/// An accumulating Chrome trace. Events render in insertion order, which
/// viewers accept regardless of timestamp order.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

/// Extra `args` entries for an event: key/value pairs shown in the viewer's
/// detail panel when the event is selected.
pub type Args<'a> = &'a [(&'a str, Json)];

fn base(name: &str, ph: &str, pid: u64, tid: u64, ts_us: f64) -> Json {
    let mut o = Json::object();
    o.set("name", Json::Str(name.to_string()));
    o.set("ph", Json::Str(ph.to_string()));
    o.set("ts", Json::Num(ts_us));
    o.set("pid", Json::from(pid));
    o.set("tid", Json::from(tid));
    o
}

fn with_args(mut o: Json, args: Args<'_>) -> Json {
    if !args.is_empty() {
        let mut a = Json::object();
        for (k, v) in args {
            a.set(k, v.clone());
        }
        o.set("args", a);
    }
    o
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Labels a process lane (`M`/`process_name` metadata event).
    pub fn name_process(&mut self, pid: u64, name: &str) {
        let mut o = base("process_name", "M", pid, 0, 0.0);
        let mut a = Json::object();
        a.set("name", Json::Str(name.to_string()));
        o.set("args", a);
        self.events.push(o);
    }

    /// Labels a thread lane (`M`/`thread_name` metadata event).
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        let mut o = base("thread_name", "M", pid, tid, 0.0);
        let mut a = Json::object();
        a.set("name", Json::Str(name.to_string()));
        o.set("args", a);
        self.events.push(o);
    }

    /// A complete (`X`) event: a span from `ts_us` lasting `dur_us`.
    pub fn complete(
        &mut self,
        name: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: Args<'_>,
    ) {
        let mut o = base(name, "X", pid, tid, ts_us);
        o.set("dur", Json::Num(dur_us));
        self.events.push(with_args(o, args));
    }

    /// An instant (`i`) event with thread scope — a vertical tick on the
    /// lane at `ts_us`.
    pub fn instant(&mut self, name: &str, pid: u64, tid: u64, ts_us: f64, args: Args<'_>) {
        let mut o = base(name, "i", pid, tid, ts_us);
        o.set("s", Json::Str("t".to_string()));
        self.events.push(with_args(o, args));
    }

    /// A counter (`C`) event: each `(series, value)` pair becomes one
    /// stacked series in the viewer's counter track. Used for the
    /// heap-occupancy curve.
    pub fn counter(&mut self, name: &str, pid: u64, ts_us: f64, series: &[(&str, f64)]) {
        let mut o = base(name, "C", pid, 0, ts_us);
        let mut a = Json::object();
        for (k, v) in series {
            a.set(k, Json::Num(*v));
        }
        o.set("args", a);
        self.events.push(o);
    }

    /// The whole trace as a JSON value: `{"traceEvents": [...],
    /// "displayTimeUnit": "ms"}`.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.set("traceEvents", Json::Arr(self.events.clone()));
        root.set("displayTimeUnit", Json::Str("ms".to_string()));
        root
    }

    /// Renders the trace to its on-disk JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn trace_round_trips_through_the_parser() {
        let mut t = ChromeTrace::new();
        t.name_process(1, "compile");
        t.name_thread(1, 3, "worker 3");
        t.complete("mono", 1, 0, 10.0, 250.5, &[("instances", Json::from(7u64))]);
        t.instant("gc", 2, 0, 400.0, &[("live_slots", Json::from(128u64))]);
        t.counter("heap", 2, 400.0, &[("occupancy", 0.42)]);
        assert_eq!(t.len(), 5);

        let parsed = parse(&t.render()).expect("valid trace JSON");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(parsed.get("displayTimeUnit").unwrap().as_str(), Some("ms"));

        let span = &events[2];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("name").unwrap().as_str(), Some("mono"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(10.0));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(250.5));
        assert_eq!(
            span.get("args").unwrap().get("instances").unwrap().as_f64(),
            Some(7.0)
        );

        let inst = &events[3];
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(inst.get("s").unwrap().as_str(), Some("t"));

        let ctr = &events[4];
        assert_eq!(ctr.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            ctr.get("args").unwrap().get("occupancy").unwrap().as_f64(),
            Some(0.42)
        );
    }

    #[test]
    fn metadata_events_carry_lane_names() {
        let mut t = ChromeTrace::new();
        t.name_thread(7, 2, "vm");
        let parsed = parse(&t.render()).unwrap();
        let e = &parsed.get("traceEvents").unwrap().as_arr().unwrap()[0];
        assert_eq!(e.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(e.get("name").unwrap().as_str(), Some("thread_name"));
        assert_eq!(e.get("pid").unwrap().as_f64(), Some(7.0));
        assert_eq!(e.get("tid").unwrap().as_f64(), Some(2.0));
        assert_eq!(e.get("args").unwrap().get("name").unwrap().as_str(), Some("vm"));
    }

    #[test]
    fn names_with_control_and_non_bmp_characters_survive() {
        // Trace names can come from fuzz-generated source: exercise the
        // escaping fix end to end.
        let hostile = "fn\u{0}\u{1F}\u{1F600}name";
        let mut t = ChromeTrace::new();
        t.complete(hostile, 1, 1, 0.0, 1.0, &[]);
        let parsed = parse(&t.render()).expect("valid despite hostile name");
        let e = &parsed.get("traceEvents").unwrap().as_arr().unwrap()[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let t = ChromeTrace::new();
        assert!(t.is_empty());
        let parsed = parse(&t.render()).expect("valid");
        assert_eq!(parsed.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
