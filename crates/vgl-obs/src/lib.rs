//! # vgl-obs
//!
//! The unified observability substrate of virgil-rs: structured spans and
//! events with monotonic wall-clock timing, pluggable sinks, and a
//! dependency-free JSON value type (writer *and* parser) in [`json`].
//!
//! Every layer of the system reports through this crate:
//!
//! * the **compiler pipeline** emits one [`PhaseSample`] per phase (lex,
//!   parse, sema, mono, normalize, optimize, lower) with duration and IR
//!   size in/out;
//! * the **VM** exports a per-opcode retired-instruction histogram and GC
//!   pause events;
//! * the **interpreter** exports the §4 type-argument-passing cost counters.
//!
//! The paper's evaluation rests on *measured* claims (no boxing after
//! normalization, code expansion under monomorphization, the interpreter's
//! "considerable runtime cost"); this crate is the measurement substrate
//! that makes those claims reproducible per run.
//!
//! ## Design
//!
//! A [`Tracer`] either borrows a [`Sink`] or is
//! [disabled](Tracer::disabled). Disabled tracers never read clocks, never
//! format anything, and never call a sink — span bookkeeping reduces to a
//! branch on an `Option`, so instrumented code pays nothing measurable when
//! tracing is off. Hot loops (the VM dispatch loop) must not call the
//! tracer per iteration at all; they accumulate plain counters and report
//! once.
//!
//! ```
//! use vgl_obs::{FieldValue, JsonLinesSink, Tracer};
//!
//! let mut sink = JsonLinesSink::new();
//! {
//!     let mut t = Tracer::new(&mut sink);
//!     let span = t.start("mono");
//!     // ... work ...
//!     t.finish(span, &[("instances", FieldValue::UInt(7))]);
//! }
//! assert!(sink.as_str().contains("\"name\":\"mono\""));
//! ```

#![warn(missing_docs)]

pub mod flight;
pub mod json;
pub mod trace;

use std::time::{Duration, Instant};

/// A typed field value attached to an event or span.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (counters).
    UInt(u64),
    /// Floating point (ratios, times).
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl FieldValue {
    /// Converts to a JSON value.
    pub fn to_json(&self) -> json::Json {
        match self {
            FieldValue::Int(v) => json::Json::from(*v),
            FieldValue::UInt(v) => json::Json::from(*v),
            FieldValue::Float(v) => json::Json::Num(*v),
            FieldValue::Bool(v) => json::Json::Bool(*v),
            FieldValue::Str(v) => json::Json::Str(v.clone()),
        }
    }

    /// Human-readable rendering (no quotes on strings).
    pub fn render(&self) -> String {
        match self {
            FieldValue::Int(v) => v.to_string(),
            FieldValue::UInt(v) => v.to_string(),
            FieldValue::Float(v) => format!("{v:.3}"),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(v) => v.clone(),
        }
    }
}

/// A named field: key + value.
pub type Field = (&'static str, FieldValue);

/// A point-in-time structured event.
#[derive(Debug)]
pub struct Event<'a> {
    /// Event name.
    pub name: &'a str,
    /// Time since the tracer's origin.
    pub at: Duration,
    /// Nesting depth (enclosing open spans).
    pub depth: usize,
    /// Attached fields.
    pub fields: &'a [Field],
}

/// A completed span: a named region of time with fields.
#[derive(Debug)]
pub struct SpanRecord<'a> {
    /// Span name.
    pub name: &'a str,
    /// Start offset since the tracer's origin.
    pub start: Duration,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Nesting depth at the time the span was opened.
    pub depth: usize,
    /// Attached fields.
    pub fields: &'a [Field],
}

/// Where structured records go. Implementations must be cheap to call; the
/// tracer guarantees they are never called when tracing is disabled.
pub trait Sink {
    /// Receives a point event.
    fn event(&mut self, event: &Event<'_>);
    /// Receives a completed span.
    fn span(&mut self, span: &SpanRecord<'_>);
}

/// A sink that drops everything. [`Tracer::disabled`] is cheaper still (no
/// clock reads); this exists for APIs that demand a concrete sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn event(&mut self, _: &Event<'_>) {}
    fn span(&mut self, _: &SpanRecord<'_>) {}
}

/// A sink that appends one compact JSON object per record to an in-memory
/// buffer (JSON-lines). The output parses back with [`json::parse`].
#[derive(Clone, Debug, Default)]
pub struct JsonLinesSink {
    buf: String,
}

impl JsonLinesSink {
    /// An empty sink.
    pub fn new() -> JsonLinesSink {
        JsonLinesSink::default()
    }

    /// The buffered JSON-lines text so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the sink, returning the buffered text.
    pub fn into_string(self) -> String {
        self.buf
    }

    fn push(&mut self, kind: &str, name: &str, fields: &[Field], extra: &[(&str, json::Json)]) {
        let mut obj = json::Json::object();
        obj.set("type", json::Json::Str(kind.to_string()));
        obj.set("name", json::Json::Str(name.to_string()));
        for (k, v) in extra {
            obj.set(k, v.clone());
        }
        for (k, v) in fields {
            obj.set(k, v.to_json());
        }
        self.buf.push_str(&obj.render());
        self.buf.push('\n');
    }
}

impl Sink for JsonLinesSink {
    fn event(&mut self, e: &Event<'_>) {
        let at = json::Json::Num(e.at.as_secs_f64() * 1e6);
        self.push("event", e.name, e.fields, &[("at_us", at)]);
    }

    fn span(&mut self, s: &SpanRecord<'_>) {
        let start = json::Json::Num(s.start.as_secs_f64() * 1e6);
        let dur = json::Json::Num(s.duration.as_secs_f64() * 1e6);
        let depth = json::Json::from(s.depth as u64);
        self.push(
            "span",
            s.name,
            s.fields,
            &[("start_us", start), ("dur_us", dur), ("depth", depth)],
        );
    }
}

/// A sink that renders an indented human-readable line per record.
#[derive(Clone, Debug, Default)]
pub struct TableSink {
    buf: String,
}

impl TableSink {
    /// An empty sink.
    pub fn new() -> TableSink {
        TableSink::default()
    }

    /// The rendered text so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the sink, returning the rendered text.
    pub fn into_string(self) -> String {
        self.buf
    }

    fn fields(fields: &[Field]) -> String {
        fields
            .iter()
            .map(|(k, v)| format!("{k}={}", v.render()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl Sink for TableSink {
    fn event(&mut self, e: &Event<'_>) {
        self.buf.push_str(&format!(
            "{:indent$}• {:<16} {}\n",
            "",
            e.name,
            TableSink::fields(e.fields),
            indent = e.depth * 2
        ));
    }

    fn span(&mut self, s: &SpanRecord<'_>) {
        self.buf.push_str(&format!(
            "{:indent$}{:<16} {:>10.1}us  {}\n",
            "",
            s.name,
            s.duration.as_secs_f64() * 1e6,
            TableSink::fields(s.fields),
            indent = s.depth * 2
        ));
    }
}

/// An open span handle returned by [`Tracer::start`]; pass it back to
/// [`Tracer::finish`].
#[derive(Debug)]
#[must_use = "finish the span with Tracer::finish"]
pub struct OpenSpan {
    name: &'static str,
    start: Option<Instant>,
    depth: usize,
}

/// The front door: timestamps records and forwards them to a borrowed sink.
///
/// A disabled tracer ([`Tracer::disabled`]) reads no clocks and formats
/// nothing — instrumentation sites cost one branch.
#[derive(Default)]
pub struct Tracer<'s> {
    sink: Option<&'s mut dyn Sink>,
    origin: Option<Instant>,
    depth: usize,
}

impl std::fmt::Debug for Tracer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .field("depth", &self.depth)
            .finish()
    }
}

impl<'s> Tracer<'s> {
    /// A tracer that records nothing (the default).
    pub fn disabled() -> Tracer<'static> {
        Tracer::default()
    }

    /// A tracer over a borrowed sink.
    pub fn new(sink: &'s mut dyn Sink) -> Tracer<'s> {
        Tracer { sink: Some(sink), origin: Some(Instant::now()), depth: 0 }
    }

    /// True when records reach a sink.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits a point event.
    pub fn event(&mut self, name: &str, fields: &[Field]) {
        let Some(origin) = self.origin else { return };
        let at = origin.elapsed();
        let depth = self.depth;
        if let Some(sink) = &mut self.sink {
            sink.event(&Event { name, at, depth, fields });
        }
    }

    /// Opens a span. Cost when disabled: one branch, no clock read.
    pub fn start(&mut self, name: &'static str) -> OpenSpan {
        if self.origin.is_none() {
            return OpenSpan { name, start: None, depth: 0 };
        }
        let depth = self.depth;
        self.depth += 1;
        OpenSpan { name, start: Some(Instant::now()), depth }
    }

    /// Closes a span, attaching fields.
    pub fn finish(&mut self, span: OpenSpan, fields: &[Field]) {
        let (Some(origin), Some(start)) = (self.origin, span.start) else {
            return;
        };
        self.depth = span.depth;
        let duration = start.elapsed();
        let record = SpanRecord {
            name: span.name,
            start: start - origin,
            duration,
            depth: span.depth,
            fields,
        };
        if let Some(sink) = &mut self.sink {
            sink.span(&record);
        }
    }

    /// Convenience: times a closure as a span.
    pub fn scope<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let span = self.start(name);
        let r = f();
        self.finish(span, &[]);
        r
    }
}

/// One timed compiler phase with item counts in/out (IR nodes, instructions
/// — whatever the phase transforms).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSample {
    /// Phase name (`"parse"`, `"mono"`, ...).
    pub name: &'static str,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Items entering the phase.
    pub items_in: usize,
    /// Items leaving the phase.
    pub items_out: usize,
}

/// One worker's share of a parallel phase: which phase, which worker, how
/// many items it claimed from the shared queue, and how long its claim loop
/// ran. Worker attribution is telemetry only — it is explicitly *not* part
/// of the determinism contract (the same compile at a different `--jobs`
/// produces identical output but different worker spans).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSample {
    /// Parallel phase name (`"optimize"`, `"fuse"`, `"hash"`, ...).
    pub phase: &'static str,
    /// Worker index within the pool (0-based; jobs=1 runs inline as worker 0).
    pub worker: usize,
    /// Items this worker claimed and processed.
    pub items: usize,
    /// Offset of this worker's first claim relative to the start of the
    /// parallel phase — places the lane on a shared timeline.
    pub start: Duration,
    /// Busy wall-clock time of this worker's claim loop.
    pub duration: Duration,
}

/// An ordered collection of [`PhaseSample`]s for one compilation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTrace {
    /// Samples in phase order.
    pub phases: Vec<PhaseSample>,
    /// Worker-attributed spans from parallel phases, in commit order.
    pub workers: Vec<WorkerSample>,
}

impl PhaseTrace {
    /// An empty trace.
    pub fn new() -> PhaseTrace {
        PhaseTrace::default()
    }

    /// Times `f`, recording a sample named `name` with the given in/out item
    /// counts computed from its result.
    pub fn time<T>(
        &mut self,
        name: &'static str,
        items_in: usize,
        f: impl FnOnce() -> T,
        items_out: impl FnOnce(&T) -> usize,
    ) -> T {
        let start = Instant::now();
        let r = f();
        self.phases.push(PhaseSample {
            name,
            duration: start.elapsed(),
            items_in,
            items_out: items_out(&r),
        });
        r
    }

    /// Total wall-clock time across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Updates `items_out` on the most recent sample *iff* it is named
    /// `name`; a no-op when the trace is empty or the last phase is a
    /// different one (e.g. the phase list was reordered or tracing is
    /// disabled). Replaces the old `phases.last_mut().expect(...)` pattern,
    /// which panicked instead of degrading.
    pub fn set_items_out(&mut self, name: &'static str, items: usize) {
        if let Some(p) = self.phases.last_mut() {
            if p.name == name {
                p.items_out = items;
            }
        }
    }

    /// Renders an aligned per-phase table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>12} {:>10} {:>10}\n",
            "phase", "time (us)", "items in", "items out"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<10} {:>12.1} {:>10} {:>10}\n",
                p.name,
                p.duration.as_secs_f64() * 1e6,
                p.items_in,
                p.items_out
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>12.1}\n",
            "total",
            self.total().as_secs_f64() * 1e6
        ));
        out
    }

    /// JSON: an array of per-phase objects.
    pub fn to_json(&self) -> json::Json {
        json::Json::Arr(
            self.phases
                .iter()
                .map(|p| {
                    let mut o = json::Json::object();
                    o.set("name", json::Json::Str(p.name.to_string()));
                    o.set("dur_us", json::Json::Num(p.duration.as_secs_f64() * 1e6));
                    o.set("items_in", json::Json::from(p.items_in as u64));
                    o.set("items_out", json::Json::from(p.items_out as u64));
                    o
                })
                .collect(),
        )
    }

    /// JSON: an array of per-worker objects for the parallel phases.
    pub fn workers_json(&self) -> json::Json {
        json::Json::Arr(
            self.workers
                .iter()
                .map(|w| {
                    let mut o = json::Json::object();
                    o.set("phase", json::Json::Str(w.phase.to_string()));
                    o.set("worker", json::Json::from(w.worker as u64));
                    o.set("items", json::Json::from(w.items as u64));
                    o.set("start_us", json::Json::Num(w.start.as_secs_f64() * 1e6));
                    o.set("dur_us", json::Json::Num(w.duration.as_secs_f64() * 1e6));
                    o
                })
                .collect(),
        )
    }

    /// Renders an aligned per-worker table for the parallel phases; empty
    /// string when no parallel phase ran.
    pub fn render_workers(&self) -> String {
        if self.workers.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>6} {:>8} {:>12}\n",
            "phase", "worker", "items", "busy (us)"
        ));
        for w in &self.workers {
            out.push_str(&format!(
                "{:<10} {:>6} {:>8} {:>12.1}\n",
                w.phase,
                w.worker,
                w.items,
                w.duration.as_secs_f64() * 1e6
            ));
        }
        out
    }

    /// Replays the trace into a tracer as spans (one per phase).
    pub fn emit(&self, tracer: &mut Tracer<'_>) {
        for p in &self.phases {
            let span = tracer.start(p.name);
            tracer.finish(
                span,
                &[
                    ("items_in", FieldValue::UInt(p.items_in as u64)),
                    ("items_out", FieldValue::UInt(p.items_out as u64)),
                    ("dur_us", FieldValue::Float(p.duration.as_secs_f64() * 1e6)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        let s = t.start("x");
        t.finish(s, &[("k", FieldValue::Int(1))]);
        t.event("e", &[]);
    }

    #[test]
    fn json_sink_emits_parseable_lines() {
        let mut sink = JsonLinesSink::new();
        {
            let mut t = Tracer::new(&mut sink);
            let span = t.start("mono");
            t.finish(span, &[("instances", FieldValue::UInt(3))]);
            t.event("gc", &[("copied", FieldValue::UInt(128))]);
        }
        let mut lines = sink.as_str().lines();
        let span = json::parse(lines.next().unwrap()).expect("valid json");
        assert_eq!(span.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(span.get("name").unwrap().as_str(), Some("mono"));
        assert_eq!(span.get("instances").unwrap().as_f64(), Some(3.0));
        assert!(span.get("dur_us").unwrap().as_f64().unwrap() >= 0.0);
        let event = json::parse(lines.next().unwrap()).expect("valid json");
        assert_eq!(event.get("type").unwrap().as_str(), Some("event"));
        assert_eq!(event.get("copied").unwrap().as_f64(), Some(128.0));
    }

    #[test]
    fn table_sink_indents_by_depth() {
        let mut sink = TableSink::new();
        sink.span(&SpanRecord {
            name: "outer",
            start: Duration::ZERO,
            duration: Duration::from_micros(10),
            depth: 0,
            fields: &[],
        });
        sink.span(&SpanRecord {
            name: "inner",
            start: Duration::ZERO,
            duration: Duration::from_micros(5),
            depth: 1,
            fields: &[("n", FieldValue::UInt(2))],
        });
        let text = sink.as_str();
        assert!(text.contains("outer"));
        assert!(text.contains("  inner"));
        assert!(text.contains("n=2"));
    }

    #[test]
    fn phase_trace_times_and_renders() {
        let mut trace = PhaseTrace::new();
        let v = trace.time("parse", 100, || vec![1, 2, 3], |r| r.len());
        assert_eq!(v.len(), 3);
        assert_eq!(trace.phases.len(), 1);
        assert_eq!(trace.phases[0].items_in, 100);
        assert_eq!(trace.phases[0].items_out, 3);
        let table = trace.render_table();
        assert!(table.contains("parse"));
        assert!(table.contains("total"));
        let j = trace.to_json().render();
        let parsed = json::parse(&j).expect("valid");
        assert_eq!(parsed.as_arr().unwrap().len(), 1);
    }

    #[test]
    fn nested_spans_track_depth() {
        let mut sink = TableSink::new();
        let mut t = Tracer::new(&mut sink);
        let outer = t.start("outer");
        let inner = t.start("inner");
        t.finish(inner, &[]);
        t.finish(outer, &[]);
        // Depth restored after matching finishes.
        let top = t.start("top");
        assert_eq!(top.depth, 0);
        t.finish(top, &[]);
    }

    #[test]
    fn phase_trace_emit_replays_spans() {
        let mut trace = PhaseTrace::new();
        trace.time("opt", 10, || (), |_| 8);
        let mut sink = JsonLinesSink::new();
        {
            let mut t = Tracer::new(&mut sink);
            trace.emit(&mut t);
        }
        let v = json::parse(sink.as_str().trim()).expect("valid");
        assert_eq!(v.get("name").unwrap().as_str(), Some("opt"));
        assert_eq!(v.get("items_out").unwrap().as_f64(), Some(8.0));
    }
}
