//! A dependency-free JSON value: compact writer and strict parser.
//!
//! The build environment is offline, so virgil-rs cannot pull `serde`. All
//! machine-readable output (`vglc stats --json`, the JSON-lines sink, bench
//! exports) goes through this module, and tests parse it back with
//! [`parse`] to assert shape.

use std::fmt;

/// A JSON value. Object keys keep insertion order (stable output).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers render without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Sets `key` on an object (replaces an existing key, preserves order).
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(entries) = self else {
            panic!("Json::set on non-object");
        };
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }

    /// Looks up `key` on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a u64 (rounded), when numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_num(v: f64, out: &mut String) {
    if v.is_finite() && v == v.trunc() && v.abs() < 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Inf; degrade to null.
        out.push_str("null");
    }
}

fn render_into(j: &Json, out: &mut String) {
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(v) => render_num(*v, out),
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                render_into(v, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        render_into(self, &mut s);
        f.write_str(&s)
    }
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else after the value).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            match code {
                                // High surrogate: must be followed by a low
                                // surrogate escape; the pair recombines into
                                // one supplementary-plane scalar.
                                0xD800..=0xDBFF => {
                                    let lo = if self.bytes[self.pos + 1..].starts_with(b"\\u")
                                    {
                                        self.pos += 2;
                                        Some(self.hex_escape()?)
                                    } else {
                                        None
                                    };
                                    match lo {
                                        Some(lo @ 0xDC00..=0xDFFF) => {
                                            let c = 0x10000
                                                + ((code - 0xD800) << 10)
                                                + (lo - 0xDC00);
                                            s.push(
                                                char::from_u32(c).unwrap_or('\u{fffd}'),
                                            );
                                        }
                                        // Lone or mismatched surrogate: no
                                        // scalar exists; degrade to U+FFFD
                                        // (plus the second escape's value when
                                        // it was consumed but not a low
                                        // surrogate).
                                        Some(other) => {
                                            s.push('\u{fffd}');
                                            s.push(
                                                char::from_u32(other)
                                                    .unwrap_or('\u{fffd}'),
                                            );
                                        }
                                        None => s.push('\u{fffd}'),
                                    }
                                }
                                // Lone low surrogate: not a scalar value.
                                0xDC00..=0xDFFF => s.push('\u{fffd}'),
                                c => s.push(char::from_u32(c).unwrap_or('\u{fffd}')),
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run at once. Validating
                    // per character (`from_utf8` on the full remainder for
                    // every byte) made parsing quadratic — a 4 MB trace
                    // file effectively never finished.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    /// Parses the four hex digits of a `\uXXXX` escape. On entry `pos` is at
    /// the `u`; on success `pos` is at the last hex digit (the caller's
    /// shared `pos += 1` then steps past it).
    fn hex_escape(&mut self) -> Result<u32, JsonError> {
        if self.pos + 5 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = &self.bytes[self.pos + 1..self.pos + 5];
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.err("bad \\u escape"));
        }
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        let mut obj = Json::object();
        obj.set("a", Json::from(1u64));
        obj.set("b", Json::Str("x \"quoted\"\n".into()));
        obj.set("c", Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(1.5)]));
        obj.set("d", Json::Num(-7.0));
        let text = obj.render();
        let back = parse(&text).expect("parses");
        assert_eq!(back, obj);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::Num(42.5).render(), "42.5");
        assert_eq!(Json::from(-3i64).render(), "-3");
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut o = Json::object();
        o.set("k", Json::from(1u64));
        o.set("k", Json::from(2u64));
        assert_eq!(o.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(o.render(), "{\"k\":2}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_accepts_nested_whitespace() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").expect("parses");
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn escapes_survive_round_trip() {
        let s = Json::Str("tab\there \\ and \u{1} control".into());
        let back = parse(&s.render()).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn every_control_character_round_trips() {
        let all: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let s = Json::Str(all);
        let back = parse(&s.render()).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn non_bmp_code_points_round_trip() {
        // Raw UTF-8 supplementary-plane characters in the writer's output.
        let s = Json::Str("emoji \u{1F600} and math \u{1D54A} mixed with ascii".into());
        let back = parse(&s.render()).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_escapes_recombine() {
        // "\uD83D\uDE00" is U+1F600 written the JSON-escape way.
        let v = parse("\"\\uD83D\\uDE00\"").expect("parses");
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Lowercase hex too.
        let v = parse("\"\\ud835\\udd4a\"").expect("parses");
        assert_eq!(v.as_str(), Some("\u{1D54A}"));
        // Pair in the middle of other text.
        let v = parse("\"a\\uD83D\\uDE00b\"").expect("parses");
        assert_eq!(v.as_str(), Some("a\u{1F600}b"));
    }

    #[test]
    fn lone_surrogates_degrade_to_replacement() {
        // High surrogate with no continuation.
        assert_eq!(parse("\"\\uD83D\"").unwrap().as_str(), Some("\u{fffd}"));
        // High surrogate followed by ordinary text.
        assert_eq!(parse("\"\\uD83Dxy\"").unwrap().as_str(), Some("\u{fffd}xy"));
        // High surrogate followed by a non-surrogate escape keeps both.
        assert_eq!(parse("\"\\uD83D\\u0041\"").unwrap().as_str(), Some("\u{fffd}A"));
        // Lone low surrogate.
        assert_eq!(parse("\"\\uDE00ok\"").unwrap().as_str(), Some("\u{fffd}ok"));
        // Two high surrogates in a row.
        assert_eq!(
            parse("\"\\uD83D\\uD83D\"").unwrap().as_str(),
            Some("\u{fffd}\u{fffd}")
        );
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // Regression test for quadratic string scanning: the old parser
        // re-validated the entire remaining input per character, so this
        // megabyte-scale document (the size of a real `vglc trace` export)
        // effectively never finished. It must parse in well under a second.
        let long = "x".repeat(500_000);
        let mut events = Vec::new();
        for i in 0..20_000 {
            let mut o = Json::object();
            o.set("name", Json::Str(format!("span-{i} with \u{1F600} and \"quotes\"")));
            o.set("ts", Json::from(i as u64));
            events.push(o);
        }
        let mut doc = Json::object();
        doc.set("big", Json::Str(long));
        doc.set("traceEvents", Json::Arr(events));
        let text = doc.render();
        assert!(text.len() > 1_000_000);
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn bad_hex_escapes_are_rejected() {
        assert!(parse("\"\\u12\"").is_err());
        assert!(parse("\"\\uZZZZ\"").is_err());
        assert!(parse("\"\\u+12f\"").is_err());
        assert!(parse("\"\\uD83D\\uZZ00\"").is_err());
    }
}
