//! A fixed-capacity ring buffer — the storage behind the runtime flight
//! recorder.
//!
//! The VM records its last-moments event stream (calls, traps, GC, inline
//! cache misses) into a [`Ring`]; when a trap or `System.error` ends the
//! run, the ring is dumped oldest-first so a crash report ships with the
//! final moments attached. The ring never allocates after construction:
//! pushing into a full ring overwrites the oldest entry in place.

/// A fixed-capacity ring buffer that keeps the **most recent** `capacity`
/// values pushed into it. Oldest entries are overwritten silently; the
/// total push count is retained so a dump can say how many were dropped.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index the next push writes to, once the buffer has filled.
    next: usize,
    /// Pushes ever performed (`dropped()` = `total - len`).
    total: u64,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` entries (clamped to at least 1).
    /// The backing storage is allocated once, here.
    pub fn new(capacity: usize) -> Ring<T> {
        let cap = capacity.max(1);
        Ring { buf: Vec::with_capacity(cap), cap, next: 0, total: 0 }
    }

    /// Appends a value, overwriting the oldest entry when full.
    pub fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Entries currently held (`min(total pushes, capacity)`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has ever been pushed (or after [`Ring::clear`]).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total values ever pushed, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Values lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Iterates the retained entries **oldest first** — the order a flight
    /// dump prints them in.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (older, newer) = self.buf.split_at(self.next.min(self.buf.len()));
        newer.iter().chain(older.iter())
    }

    /// Drops every entry and resets the counters; capacity is kept.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_keeps_insertion_order() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 0);
        let got: Vec<i32> = r.iter().copied().collect();
        assert_eq!(got, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraparound_keeps_last_capacity_entries_oldest_first() {
        let mut r = Ring::new(4);
        for i in 0..11 {
            r.push(i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 11);
        assert_eq!(r.dropped(), 7);
        let got: Vec<i32> = r.iter().copied().collect();
        assert_eq!(got, [7, 8, 9, 10]);
        // Exactly at a multiple of the capacity too.
        let mut r = Ring::new(4);
        for i in 0..8 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), [4, 5, 6, 7]);
    }

    #[test]
    fn capacity_one_holds_only_the_newest() {
        let mut r = Ring::new(1);
        assert_eq!(r.capacity(), 1);
        r.push("a");
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), ["a"]);
        r.push("b");
        r.push("c");
        assert_eq!(r.len(), 1);
        assert_eq!(r.total(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), ["c"]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = Ring::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(9);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), [9]);
    }

    #[test]
    fn empty_ring_dumps_nothing() {
        let r: Ring<u32> = Ring::new(16);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.total(), 0);
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut r = Ring::new(3);
        for i in 0..7 {
            r.push(i);
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.total(), 0);
        assert_eq!(r.capacity(), 3);
        r.push(42);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), [42]);
    }
}
