//! Round-trip tests for `PhaseTrace` phase and worker-span JSON: what
//! `to_json()`/`workers_json()` emit must parse back with `vgl_obs::json`
//! and preserve items_in/items_out and worker attribution exactly, for an
//! empty trace, a jobs=1 trace, and a multi-worker trace.

use std::time::Duration;
use vgl_obs::{json, PhaseTrace, WorkerSample};

fn roundtrip(j: &json::Json) -> json::Json {
    json::parse(&j.render()).expect("rendered JSON parses back")
}

#[test]
fn empty_trace_round_trips() {
    let trace = PhaseTrace::new();
    let phases = roundtrip(&trace.to_json());
    assert_eq!(phases.as_arr().unwrap().len(), 0);
    let workers = roundtrip(&trace.workers_json());
    assert_eq!(workers.as_arr().unwrap().len(), 0);
    assert_eq!(trace.render_workers(), "");
}

#[test]
fn phase_items_survive_round_trip() {
    let mut trace = PhaseTrace::new();
    trace.time("normalize", 120, || (), |_| 96);
    trace.time("optimize", 96, || (), |_| 80);
    let parsed = roundtrip(&trace.to_json());
    let arr = parsed.as_arr().unwrap();
    assert_eq!(arr.len(), 2);
    assert_eq!(arr[0].get("name").unwrap().as_str(), Some("normalize"));
    assert_eq!(arr[0].get("items_in").unwrap().as_f64(), Some(120.0));
    assert_eq!(arr[0].get("items_out").unwrap().as_f64(), Some(96.0));
    assert_eq!(arr[1].get("name").unwrap().as_str(), Some("optimize"));
    assert_eq!(arr[1].get("items_out").unwrap().as_f64(), Some(80.0));
}

#[test]
fn jobs1_worker_trace_round_trips() {
    // jobs=1 runs inline as a single worker 0 per parallel phase.
    let mut trace = PhaseTrace::new();
    trace.workers.push(WorkerSample {
        phase: "optimize",
        worker: 0,
        items: 17,
        start: Duration::from_micros(5),
        duration: Duration::from_micros(250),
    });
    let parsed = roundtrip(&trace.workers_json());
    let arr = parsed.as_arr().unwrap();
    assert_eq!(arr.len(), 1);
    assert_eq!(arr[0].get("phase").unwrap().as_str(), Some("optimize"));
    assert_eq!(arr[0].get("worker").unwrap().as_f64(), Some(0.0));
    assert_eq!(arr[0].get("items").unwrap().as_f64(), Some(17.0));
    assert_eq!(arr[0].get("start_us").unwrap().as_f64(), Some(5.0));
    assert_eq!(arr[0].get("dur_us").unwrap().as_f64(), Some(250.0));
}

#[test]
fn multi_worker_trace_round_trips() {
    let mut trace = PhaseTrace::new();
    for (phase, worker, items) in
        [("optimize", 0usize, 9usize), ("optimize", 1, 8), ("fuse", 0, 5), ("fuse", 1, 4)]
    {
        trace.workers.push(WorkerSample {
            phase,
            worker,
            items,
            start: Duration::from_micros(worker as u64),
            duration: Duration::from_micros(100 + worker as u64),
        });
    }
    let parsed = roundtrip(&trace.workers_json());
    let arr = parsed.as_arr().unwrap();
    assert_eq!(arr.len(), 4);
    let total_items: f64 =
        arr.iter().map(|w| w.get("items").unwrap().as_f64().unwrap()).sum();
    assert_eq!(total_items, 26.0);
    assert_eq!(arr[1].get("worker").unwrap().as_f64(), Some(1.0));
    assert_eq!(arr[2].get("phase").unwrap().as_str(), Some("fuse"));
    // The human table mentions every phase once per worker.
    let table = trace.render_workers();
    assert_eq!(table.matches("optimize").count(), 2);
    assert_eq!(table.matches("fuse").count(), 2);
}

#[test]
fn set_items_out_is_noop_safe() {
    // Empty trace: nothing to update, no panic.
    let mut trace = PhaseTrace::new();
    trace.set_items_out("optimize", 42);
    assert!(trace.phases.is_empty());
    // Last phase has a different name (reordered list): untouched.
    trace.time("lower", 10, || (), |_| 10);
    trace.set_items_out("optimize", 42);
    assert_eq!(trace.phases[0].items_out, 10);
    // Matching name: updated.
    trace.set_items_out("lower", 7);
    assert_eq!(trace.phases[0].items_out, 7);
}
