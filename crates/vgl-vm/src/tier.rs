//! Tiered-execution state: which functions hold a hot-tier body, when each
//! re-tiers next, and the per-site speculation bookkeeping that decides
//! whether a `CallVirt` may be devirtualized behind a receiver-class guard.
//!
//! Every function starts in the cheap unfused tier (the baseline body the
//! lowerer produced). When a function's sampled hotness — call count plus
//! loop back-edge ticks, the counters [`crate::RuntimeProfile`] already
//! maintains at the fuel-check points — crosses the threshold, the VM
//! re-runs fusion on that one function *using its own profile*
//! ([`crate::fuse::tier_fuse_func`]) and future invocations execute the
//! result. Frames carry their body by `Rc`, so a mid-run re-tier or
//! deoptimization never moves code out from under a live frame.
//!
//! Speculation follows the Hölzle inline-cache discipline: a site is
//! devirtualized only while its cache is monomorphic and stable
//! ([`site_speculation`]); the first guard failure deoptimizes the frame
//! back to the baseline body and marks the site megamorphic — permanently,
//! so it is **never re-speculated** — while the function itself re-tiers
//! with that site left as a plain `CallVirt`.

use crate::bytecode::{FuncId, VmProgram, OPCODE_COUNT};
use crate::fuse::TieredBody;
use std::rc::Rc;

/// Default hotness threshold (calls + back-edge ticks) for tier-up.
/// Overridable via `--tier-threshold` / `VGL_TIER_THRESHOLD`.
pub const DEFAULT_TIER_THRESHOLD: u64 = 256;

/// A site whose inline cache missed more than this many times is considered
/// unstable and is not speculated even if it currently looks monomorphic.
pub const SPEC_MISS_CAP: u32 = 8;

/// The per-site speculation decision, in increasing order of "give up".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Speculation {
    /// The site never executed — nothing to speculate on.
    NoInfo,
    /// The cache flip-flopped too often; don't speculate (yet).
    Unstable,
    /// Monomorphic and stable: devirtualize behind a class guard.
    Speculate {
        /// The expected receiver class.
        class: u32,
        /// The callee its vtable resolved to.
        func: FuncId,
    },
    /// A guard already failed here; never speculate again.
    Megamorphic,
}

/// The speculation state machine, as a pure function of one site's
/// observable history: the current cache entry (`None` while empty), the
/// cumulative miss count, and the sticky megamorphic mark a deopt leaves.
pub fn site_speculation(
    cached: Option<(u32, FuncId)>,
    misses: u32,
    mega: bool,
) -> Speculation {
    if mega {
        return Speculation::Megamorphic;
    }
    match cached {
        None => Speculation::NoInfo,
        Some(_) if misses > SPEC_MISS_CAP => Speculation::Unstable,
        Some((class, func)) => Speculation::Speculate { class, func },
    }
}

/// One function's tier slot.
pub(crate) struct TierSlot {
    /// The hot-tier body current invocations should run, when tiered.
    pub(crate) body: Option<Rc<TieredBody>>,
    /// Hotness weight at which the function (re-)tiers. Starts at the
    /// threshold, doubles after every tier-up (bounding re-fuse churn), and
    /// resets to zero on deopt so the replacement body — with the failed
    /// site de-speculated — is built at the next trigger point.
    pub(crate) next_at: u64,
    /// Times this function tiered up.
    pub(crate) tier_ups: u32,
}

/// All tiering state for one VM run.
pub struct TierState {
    pub(crate) threshold: u64,
    /// Pattern-hotness bar handed to the profile-gated fusion: an opcode
    /// counts as hot in a function once it retired this many times there.
    pub(crate) hot_min: u32,
    pub(crate) slots: Vec<TierSlot>,
    /// Sticky per-site megamorphic marks (set by deopt). Kept separate from
    /// the inline caches: an IC refill must not erase the mark.
    pub(crate) mega: Vec<bool>,
    /// Per-site IC miss counts, feeding the stability check.
    pub(crate) site_miss: Vec<u32>,
    /// Per-function dynamic opcode histograms, accumulated while the
    /// function runs its baseline body — the profile that selects which
    /// fusion patterns the hot tier applies.
    pub(crate) hist: Vec<[u32; OPCODE_COUNT]>,
}

impl TierState {
    /// Fresh state sized for `program`, with the given tier-up threshold
    /// (clamped to ≥ 1).
    pub(crate) fn new(program: &VmProgram, threshold: u64) -> TierState {
        let threshold = threshold.max(1);
        let n = program.funcs.len();
        TierState {
            threshold,
            hot_min: (threshold / 4).max(8).min(u32::MAX as u64) as u32,
            slots: (0..n)
                .map(|_| TierSlot { body: None, next_at: threshold, tier_ups: 0 })
                .collect(),
            mega: vec![false; program.virt_sites],
            site_miss: vec![0; program.virt_sites],
            hist: vec![[0; OPCODE_COUNT]; n],
        }
    }

    /// The tier-up threshold in effect.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Every currently-tiered function: `(func, hot-tier body, tier-ups)`.
    pub fn tiered(&self) -> impl Iterator<Item = (FuncId, &TieredBody, u32)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.body.as_deref().map(|b| (i as FuncId, b, s.tier_ups)))
    }

    /// Whether a deopt marked this site megamorphic.
    pub fn is_mega(&self, site: u32) -> bool {
        self.mega.get(site as usize).copied().unwrap_or(false)
    }

    /// All megamorphic sites, ascending.
    pub fn mega_sites(&self) -> Vec<u32> {
        (0..self.mega.len() as u32).filter(|&s| self.mega[s as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The IC state machine the tentpole's "never re-speculated" claim
    /// rests on: empty → no info; monomorphic+stable → speculate; too many
    /// misses → unstable; mega mark → megamorphic forever, regardless of
    /// what the cache looks like afterwards.
    #[test]
    fn speculation_state_machine() {
        assert_eq!(site_speculation(None, 0, false), Speculation::NoInfo);
        assert_eq!(
            site_speculation(Some((3, 7)), 1, false),
            Speculation::Speculate { class: 3, func: 7 }
        );
        assert_eq!(
            site_speculation(Some((3, 7)), SPEC_MISS_CAP, false),
            Speculation::Speculate { class: 3, func: 7 }
        );
        assert_eq!(
            site_speculation(Some((3, 7)), SPEC_MISS_CAP + 1, false),
            Speculation::Unstable
        );
        // The mega mark dominates everything — an IC refill after the deopt
        // must not resurrect speculation.
        assert_eq!(site_speculation(Some((3, 7)), 1, true), Speculation::Megamorphic);
        assert_eq!(site_speculation(None, 0, true), Speculation::Megamorphic);
    }
}
