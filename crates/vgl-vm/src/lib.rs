//! # vgl-vm
//!
//! The bytecode target of virgil-rs — the stand-in for the paper's native
//! x86 backend. [`lower`] compiles a *normalized, monomorphic* module into a
//! register [`VmProgram`]; [`Vm`] executes it over tagged 64-bit words with
//! the semispace GC heap from `vgl-runtime`.
//!
//! The target exists to make §4's implementation claims *measurable*:
//!
//! * the calling convention is all-scalar with **multiple return registers**,
//!   so there are no tuple boxes and no §4.1 dynamic calling-convention
//!   checks (compare [`VmStats`] with the interpreter's `InterpStats`);
//! * type tests compile to **constant-time class-id range checks** (Cohen
//!   numbering, cited by the paper) or precomputed closure admissibility
//!   tables;
//! * the only allocations are explicit `new`/literals and closure cells —
//!   [`vgl_runtime::HeapStats::tuple_boxes`] is structurally always zero;
//! * an optional bytecode back-end optimizer ([`fuse`]) performs copy
//!   propagation, dead-register elimination, and superinstruction fusion on
//!   the lowered code, and virtual call sites carry monomorphic inline
//!   caches — the classic kernel-level VM optimizations the paper's
//!   "optimize each version independently" claim licenses.

#![warn(missing_docs)]

mod bytecode;
mod disasm;
mod flight;
pub mod fuse;
mod lower;
mod profile;
mod tier;
mod vm;

pub use bytecode::{
    BinKind, ClosTest, FuncId, InlOp, Instr, Reg, VmClass, VmFunc, VmProgram,
    FIRST_SUPER_OPCODE, OPCODE_COUNT, OPCODE_NAMES,
};
pub use disasm::{disasm, disasm_instr, side_by_side, tiered_view};
pub use flight::{CallKind, FlightEvent, FlightKind, FlightRecorder};
pub use fuse::{
    check_fused, check_fused_against, fuse, fuse_cfg, fuse_jobs, tier_fuse_func, FuseStats,
    TierFeedback, TieredBody,
};
pub use lower::{lower, lower_fuse, lower_fuse_incremental, Demand, ReusePlan, SpliceFunc};
pub use profile::{
    FuncSpan, GcEvent, GcInstant, HotFunc, RuntimeProfile, TierInstant, TraceLog, VmProfile,
};
pub use tier::{
    site_speculation, Speculation, TierState, DEFAULT_TIER_THRESHOLD, SPEC_MISS_CAP,
};
pub use vm::{ret_as_int, ret_is_ref, Vm, VmError, VmStats, DEFAULT_NURSERY_SLOTS, RET_INLINE};
pub use vgl_runtime::heap::GcKind;
