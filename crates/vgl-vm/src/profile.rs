//! Optional execution profiling for the VM: a per-opcode
//! retired-instruction histogram and per-collection GC events.
//!
//! Profiling is off by default and costs the dispatch loop nothing beyond
//! one `Option` branch per instruction when disabled (see the
//! `profiling_disabled_is_free` differential check in the VM tests). Enable
//! it with [`crate::Vm::enable_profiling`].

use crate::bytecode::{FuncId, VmProgram, FIRST_SUPER_OPCODE, OPCODE_COUNT, OPCODE_NAMES};
use std::time::{Duration, Instant};
use vgl_obs::json::Json;
use vgl_obs::{FieldValue, Tracer};
use vgl_runtime::heap::GcKind;

/// One garbage collection observed during a profiled run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcEvent {
    /// Minor (nursery) or major (full-heap) collection.
    pub kind: GcKind,
    /// Wall-clock pause.
    pub pause: Duration,
    /// Slots live after the collection.
    pub live_slots: usize,
    /// Slots copied by the collection (promoted, for a minor).
    pub copied_slots: usize,
    /// Heap capacity at collection time.
    pub capacity_slots: usize,
    /// Instructions retired when the collection happened.
    pub at_instr: u64,
}

/// Profiling data for one VM run.
#[derive(Clone, Debug)]
pub struct VmProfile {
    /// Retired instructions per opcode, indexed like
    /// [`crate::bytecode::OPCODE_NAMES`].
    pub opcodes: [u64; OPCODE_COUNT],
    /// Every collection, in order.
    pub gc_events: Vec<GcEvent>,
}

impl Default for VmProfile {
    fn default() -> VmProfile {
        VmProfile { opcodes: [0; OPCODE_COUNT], gc_events: Vec::new() }
    }
}

impl VmProfile {
    /// An empty profile.
    pub fn new() -> VmProfile {
        VmProfile::default()
    }

    /// Total retired instructions.
    pub fn retired(&self) -> u64 {
        self.opcodes.iter().sum()
    }

    /// Total GC pause time.
    pub fn gc_pause_total(&self) -> Duration {
        self.gc_events.iter().map(|e| e.pause).sum()
    }

    /// Retired instructions that were fusion-emitted superinstructions.
    pub fn super_retired(&self) -> u64 {
        self.opcodes[FIRST_SUPER_OPCODE..].iter().sum()
    }

    /// Share of retired instructions that were superinstructions, in
    /// `[0, 1]` — the "how much of the hot path did fusion cover"
    /// attribution number `vglc profile` reports.
    pub fn super_share(&self) -> f64 {
        let total = self.retired();
        if total == 0 {
            0.0
        } else {
            self.super_retired() as f64 / total as f64
        }
    }

    /// `(mnemonic, count)` for every executed opcode, most-retired first.
    pub fn opcode_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = OPCODE_NAMES
            .iter()
            .zip(self.opcodes.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&n, &c)| (n, c))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }

    /// Renders the histogram and GC summary as an aligned table.
    pub fn render_table(&self) -> String {
        let total = self.retired().max(1);
        let mut out = String::new();
        out.push_str(&format!("{:<16} {:>12} {:>7}\n", "opcode", "retired", "%"));
        for (name, count) in self.opcode_histogram() {
            out.push_str(&format!(
                "{:<16} {:>12} {:>6.1}%\n",
                name,
                count,
                count as f64 * 100.0 / total as f64
            ));
        }
        out.push_str(&format!(
            "superinstructions: {} retired ({:.1}% of all)\n",
            self.super_retired(),
            self.super_share() * 100.0
        ));
        let minors = self.gc_events.iter().filter(|e| e.kind == GcKind::Minor).count();
        out.push_str(&format!(
            "gc: {} collections ({} minor, {} major), {} slots copied, {:.1}us total pause\n",
            self.gc_events.len(),
            minors,
            self.gc_events.len() - minors,
            self.gc_events.iter().map(|e| e.copied_slots).sum::<usize>(),
            self.gc_pause_total().as_secs_f64() * 1e6
        ));
        out
    }

    /// JSON: `{"opcodes": {...}, "super_retired": n, "super_share": x,
    /// "gc": [...]}`.
    pub fn to_json(&self) -> Json {
        let mut opcodes = Json::object();
        for (name, count) in self.opcode_histogram() {
            opcodes.set(name, Json::from(count));
        }
        let gc = Json::Arr(
            self.gc_events
                .iter()
                .map(|e| {
                    let mut o = Json::object();
                    o.set("kind", Json::Str(e.kind.label().into()));
                    o.set("pause_us", Json::Num(e.pause.as_secs_f64() * 1e6));
                    o.set("live_slots", Json::from(e.live_slots));
                    o.set("copied_slots", Json::from(e.copied_slots));
                    o.set("capacity_slots", Json::from(e.capacity_slots));
                    o.set("at_instr", Json::from(e.at_instr));
                    o
                })
                .collect(),
        );
        let mut j = Json::object();
        j.set("opcodes", opcodes);
        j.set("super_retired", Json::from(self.super_retired()));
        j.set("super_share", Json::Num(self.super_share()));
        j.set("gc", gc);
        j
    }

    /// Emits each GC event into a tracer.
    pub fn emit_gc(&self, tracer: &mut Tracer<'_>) {
        for e in &self.gc_events {
            tracer.event(
                "gc",
                &[
                    ("kind", FieldValue::Str(e.kind.label().into())),
                    ("pause_us", FieldValue::Float(e.pause.as_secs_f64() * 1e6)),
                    ("live_slots", FieldValue::UInt(e.live_slots as u64)),
                    ("copied_slots", FieldValue::UInt(e.copied_slots as u64)),
                    ("at_instr", FieldValue::UInt(e.at_instr)),
                ],
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Per-function hotness (the tier-up substrate)
// ---------------------------------------------------------------------------

/// Per-function hotness counters accumulated by the VM's runtime profiler.
///
/// All counters are **deterministic**: they count calls, loop back-edges,
/// and retired instructions — never wall-clock — so the same program
/// produces the same profile on every run (the property the determinism
/// suite checks with profiling enabled). The default (sampling) mode hooks
/// only calls and back-edges (the existing fuel-check points) — that
/// configuration is what the `bench_obs` 5% overhead gate measures.
/// Precise mode additionally maintains exact inclusive/exclusive
/// retired-instruction counts at every frame exit; it costs more and is
/// meant for offline analysis (`vglc stats`, `vglc profile`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeProfile {
    /// One counter row per function, indexed by function id. Empty when
    /// profiling is off: the VM holds this inline (no `Option`, no box) and
    /// gates every hook on `rows.get_mut(func)`, so the disabled case is a
    /// single always-failing bounds check and the enabled case touches one
    /// cache line per event.
    pub rows: Vec<FuncHotness>,
}

/// One function's hotness counters, packed so a call or return updates a
/// single row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuncHotness {
    /// Times the function was entered (any dispatch kind).
    pub calls: u64,
    /// Loop back-edges taken inside the function — the loop-hotness signal
    /// tier-up keys on.
    pub ticks: u64,
    /// Instructions retired *including* callees (accumulated at frame
    /// exit; frames still live when a run traps are not closed). Only
    /// maintained in precise mode
    /// ([`crate::Vm::enable_runtime_profiling_precise`]) — zero under the
    /// default tick sampling.
    pub incl_instrs: u64,
    /// Instructions retired *excluding* callees. Precise mode only.
    pub excl_instrs: u64,
}

/// One row of [`RuntimeProfile::hotness_ranked`]: a function with its
/// counters, hottest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotFunc<'p> {
    /// Function id in the program.
    pub func: FuncId,
    /// Function name.
    pub name: &'p str,
    /// Entries.
    pub calls: u64,
    /// Back-edges taken.
    pub ticks: u64,
    /// Inclusive retired instructions.
    pub incl_instrs: u64,
    /// Exclusive retired instructions.
    pub excl_instrs: u64,
}

impl RuntimeProfile {
    /// An empty profile sized for `func_count` functions.
    pub fn new(func_count: usize) -> RuntimeProfile {
        RuntimeProfile { rows: vec![FuncHotness::default(); func_count] }
    }

    /// Every function that ran, ranked hottest first: by back-edge ticks,
    /// then exclusive instructions, then call count (function id breaks
    /// remaining ties, keeping the ranking deterministic).
    pub fn hotness_ranked<'p>(&self, program: &'p VmProgram) -> Vec<HotFunc<'p>> {
        let mut rows: Vec<HotFunc<'p>> = self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.calls > 0)
            .map(|(i, r)| HotFunc {
                func: i as FuncId,
                name: program.funcs.get(i).map(|f| f.name.as_str()).unwrap_or("<unknown>"),
                calls: r.calls,
                ticks: r.ticks,
                incl_instrs: r.incl_instrs,
                excl_instrs: r.excl_instrs,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.ticks
                .cmp(&a.ticks)
                .then(b.excl_instrs.cmp(&a.excl_instrs))
                .then(b.calls.cmp(&a.calls))
                .then(a.func.cmp(&b.func))
        });
        rows
    }

    /// Renders the hotness ranking as an aligned table.
    pub fn render_table(&self, program: &VmProgram) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>12} {:>12}\n",
            "function", "calls", "ticks", "incl instrs", "excl instrs"
        ));
        for row in self.hotness_ranked(program) {
            out.push_str(&format!(
                "{:<24} {:>10} {:>10} {:>12} {:>12}\n",
                row.name, row.calls, row.ticks, row.incl_instrs, row.excl_instrs
            ));
        }
        out
    }

    /// JSON: an array of per-function objects, hottest first.
    pub fn to_json(&self, program: &VmProgram) -> Json {
        Json::Arr(
            self.hotness_ranked(program)
                .iter()
                .map(|row| {
                    let mut o = Json::object();
                    o.set("func", Json::from(row.func as u64));
                    o.set("name", Json::Str(row.name.to_string()));
                    o.set("calls", Json::from(row.calls));
                    o.set("ticks", Json::from(row.ticks));
                    o.set("incl_instrs", Json::from(row.incl_instrs));
                    o.set("excl_instrs", Json::from(row.excl_instrs));
                    o
                })
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Wall-clock trace log (vglc trace)
// ---------------------------------------------------------------------------

/// One function execution as a wall-clock span, for Chrome-trace export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuncSpan {
    /// The function that ran.
    pub func: FuncId,
    /// Start offset from the log's origin.
    pub start: Duration,
    /// Wall-clock duration (to the matching return, or to the unwind point
    /// when the run trapped).
    pub dur: Duration,
    /// Call depth at entry (0 = outermost).
    pub depth: u32,
}

/// One collection as a wall-clock instant, for Chrome-trace export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcInstant {
    /// Minor or major collection.
    pub kind: GcKind,
    /// Offset from the log's origin.
    pub at: Duration,
    /// Collection pause.
    pub pause: Duration,
    /// Slots surviving.
    pub live_slots: usize,
    /// Heap capacity.
    pub capacity_slots: usize,
}

/// One tier transition as a wall-clock instant, for Chrome-trace export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierInstant {
    /// Offset from the log's origin.
    pub at: Duration,
    /// The function that changed tier.
    pub func: FuncId,
    /// `false` = tier-up (hot body installed), `true` = deoptimization.
    pub deopt: bool,
}

/// A wall-clock log of VM function spans and GC instants, recorded only in
/// explicit `vglc trace` runs (it reads the clock twice per call, which is
/// exactly the overhead the deterministic [`RuntimeProfile`] avoids).
///
/// Span storage is a fixed ring of `max_spans` entries: a long run keeps
/// its *last* `max_spans` completed spans — the tail of execution plus the
/// outermost frames, which close last — and the overflow is counted in
/// [`TraceLog::spans_dropped`] so the exporter reports the truncation
/// rather than hiding it.
#[derive(Clone, Debug)]
pub struct TraceLog {
    origin: Instant,
    open: Vec<(FuncId, Instant)>,
    spans: vgl_obs::flight::Ring<FuncSpan>,
    /// Collections, in order.
    pub gc: Vec<GcInstant>,
    /// Tier-ups and deoptimizations, in order.
    pub tier: Vec<TierInstant>,
}

impl TraceLog {
    /// A log keeping the last `max_spans` completed spans (clamped to ≥ 1).
    pub fn new(max_spans: usize) -> TraceLog {
        TraceLog {
            origin: Instant::now(),
            open: Vec::with_capacity(64),
            spans: vgl_obs::flight::Ring::new(max_spans),
            gc: Vec::new(),
            tier: Vec::new(),
        }
    }

    /// Marks entry into `func`.
    #[inline]
    pub fn enter(&mut self, func: FuncId) {
        self.open.push((func, Instant::now()));
    }

    /// Marks exit from the innermost open function.
    #[inline]
    pub fn exit(&mut self) {
        let Some((func, entered)) = self.open.pop() else { return };
        self.spans.push(FuncSpan {
            func,
            start: entered.duration_since(self.origin),
            dur: entered.elapsed(),
            depth: self.open.len() as u32,
        });
    }

    /// Retained spans, oldest first (completion order).
    pub fn spans(&self) -> impl Iterator<Item = &FuncSpan> {
        self.spans.iter()
    }

    /// Spans currently retained.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Spans overwritten because the ring filled up.
    pub fn spans_dropped(&self) -> u64 {
        self.spans.dropped()
    }

    /// Records a collection.
    pub fn record_gc(
        &mut self,
        kind: GcKind,
        pause: Duration,
        live_slots: usize,
        capacity_slots: usize,
    ) {
        self.gc.push(GcInstant {
            kind,
            at: self.origin.elapsed(),
            pause,
            live_slots,
            capacity_slots,
        });
    }

    /// Records a tier transition (`deopt: false` = tier-up, `true` = deopt).
    pub fn record_tier(&mut self, func: FuncId, deopt: bool) {
        self.tier.push(TierInstant { at: self.origin.elapsed(), func, deopt });
    }

    /// Closes every open span at the current instant — called when a run
    /// unwinds through a trap, so the trace still shows where time went.
    pub fn close_all(&mut self) {
        while !self.open.is_empty() {
            self.exit();
        }
    }
}
