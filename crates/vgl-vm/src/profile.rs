//! Optional execution profiling for the VM: a per-opcode
//! retired-instruction histogram and per-collection GC events.
//!
//! Profiling is off by default and costs the dispatch loop nothing beyond
//! one `Option` branch per instruction when disabled (see the
//! `profiling_disabled_is_free` differential check in the VM tests). Enable
//! it with [`crate::Vm::enable_profiling`].

use crate::bytecode::{FIRST_SUPER_OPCODE, OPCODE_COUNT, OPCODE_NAMES};
use std::time::Duration;
use vgl_obs::json::Json;
use vgl_obs::{FieldValue, Tracer};

/// One garbage collection observed during a profiled run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcEvent {
    /// Wall-clock pause.
    pub pause: Duration,
    /// Slots live after the collection.
    pub live_slots: usize,
    /// Slots copied by the collection.
    pub copied_slots: usize,
    /// Semispace capacity at collection time.
    pub capacity_slots: usize,
    /// Instructions retired when the collection happened.
    pub at_instr: u64,
}

/// Profiling data for one VM run.
#[derive(Clone, Debug)]
pub struct VmProfile {
    /// Retired instructions per opcode, indexed like
    /// [`crate::bytecode::OPCODE_NAMES`].
    pub opcodes: [u64; OPCODE_COUNT],
    /// Every collection, in order.
    pub gc_events: Vec<GcEvent>,
}

impl Default for VmProfile {
    fn default() -> VmProfile {
        VmProfile { opcodes: [0; OPCODE_COUNT], gc_events: Vec::new() }
    }
}

impl VmProfile {
    /// An empty profile.
    pub fn new() -> VmProfile {
        VmProfile::default()
    }

    /// Total retired instructions.
    pub fn retired(&self) -> u64 {
        self.opcodes.iter().sum()
    }

    /// Total GC pause time.
    pub fn gc_pause_total(&self) -> Duration {
        self.gc_events.iter().map(|e| e.pause).sum()
    }

    /// Retired instructions that were fusion-emitted superinstructions.
    pub fn super_retired(&self) -> u64 {
        self.opcodes[FIRST_SUPER_OPCODE..].iter().sum()
    }

    /// Share of retired instructions that were superinstructions, in
    /// `[0, 1]` — the "how much of the hot path did fusion cover"
    /// attribution number `vglc profile` reports.
    pub fn super_share(&self) -> f64 {
        let total = self.retired();
        if total == 0 {
            0.0
        } else {
            self.super_retired() as f64 / total as f64
        }
    }

    /// `(mnemonic, count)` for every executed opcode, most-retired first.
    pub fn opcode_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = OPCODE_NAMES
            .iter()
            .zip(self.opcodes.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(&n, &c)| (n, c))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        rows
    }

    /// Renders the histogram and GC summary as an aligned table.
    pub fn render_table(&self) -> String {
        let total = self.retired().max(1);
        let mut out = String::new();
        out.push_str(&format!("{:<16} {:>12} {:>7}\n", "opcode", "retired", "%"));
        for (name, count) in self.opcode_histogram() {
            out.push_str(&format!(
                "{:<16} {:>12} {:>6.1}%\n",
                name,
                count,
                count as f64 * 100.0 / total as f64
            ));
        }
        out.push_str(&format!(
            "superinstructions: {} retired ({:.1}% of all)\n",
            self.super_retired(),
            self.super_share() * 100.0
        ));
        out.push_str(&format!(
            "gc: {} collections, {} slots copied, {:.1}us total pause\n",
            self.gc_events.len(),
            self.gc_events.iter().map(|e| e.copied_slots).sum::<usize>(),
            self.gc_pause_total().as_secs_f64() * 1e6
        ));
        out
    }

    /// JSON: `{"opcodes": {...}, "super_retired": n, "super_share": x,
    /// "gc": [...]}`.
    pub fn to_json(&self) -> Json {
        let mut opcodes = Json::object();
        for (name, count) in self.opcode_histogram() {
            opcodes.set(name, Json::from(count));
        }
        let gc = Json::Arr(
            self.gc_events
                .iter()
                .map(|e| {
                    let mut o = Json::object();
                    o.set("pause_us", Json::Num(e.pause.as_secs_f64() * 1e6));
                    o.set("live_slots", Json::from(e.live_slots));
                    o.set("copied_slots", Json::from(e.copied_slots));
                    o.set("capacity_slots", Json::from(e.capacity_slots));
                    o.set("at_instr", Json::from(e.at_instr));
                    o
                })
                .collect(),
        );
        let mut j = Json::object();
        j.set("opcodes", opcodes);
        j.set("super_retired", Json::from(self.super_retired()));
        j.set("super_share", Json::Num(self.super_share()));
        j.set("gc", gc);
        j
    }

    /// Emits each GC event into a tracer.
    pub fn emit_gc(&self, tracer: &mut Tracer<'_>) {
        for e in &self.gc_events {
            tracer.event(
                "gc",
                &[
                    ("pause_us", FieldValue::Float(e.pause.as_secs_f64() * 1e6)),
                    ("live_slots", FieldValue::UInt(e.live_slots as u64)),
                    ("copied_slots", FieldValue::UInt(e.copied_slots as u64)),
                    ("at_instr", FieldValue::UInt(e.at_instr)),
                ],
            );
        }
    }
}
