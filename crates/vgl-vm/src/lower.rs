//! Lowering: normalized IR → bytecode.
//!
//! Requires a module that has been through `monomorphize` and `normalize`
//! (the [`vgl_ir::check_normalized`] invariants). Every method becomes one
//! [`VmFunc`]; first-class constructors, operators, intrinsics, and array
//! constructors become small synthesized wrapper functions.

use std::collections::HashMap;

use crate::bytecode::*;
use vgl_ir::ops::Exception;
use vgl_ir::{Body, Builtin, Expr, ExprKind, MethodKind, Module, Oper, Stmt};
use vgl_types::{ClassId, Type, TypeKind, TypeStore};

/// Compiles a normalized module to bytecode.
///
/// # Panics
/// Panics when the module violates the normalized-form invariants; run
/// [`vgl_ir::check_normalized`] first for a friendly report.
pub fn lower(module: &Module) -> VmProgram {
    let mut lw = Lower::new(module);
    lw.run();
    lw.program
}

/// Batch capacity of the lower → fuse channel: enough buffered chunks that
/// lowering rarely blocks, few enough that a stalled fuse pool applies
/// backpressure instead of buffering the whole program.
const FUSE_STREAM_BATCHES: usize = 8;

/// Lowering and fusion joined into one chunked schedule: instead of fusing
/// only after the whole program is lowered, the (serial, order-sensitive)
/// lowering thread streams each function the moment it is final — reserved
/// method slots right after `compile_method`, synthesized wrappers as they
/// are appended, global initializers after `finalize` — in cost-balanced
/// batches over a bounded channel to `cfg.jobs` fuse workers. Duplicate
/// detection (`cfg.cache`) runs on the lowering thread in stream order, so
/// duplicates never cross the channel at all.
///
/// Output is **bit-identical** to `lower` followed by
/// [`crate::fuse::fuse_cfg`] at any jobs count: fusion is function-local
/// and deterministic, results commit in function-index order, and a
/// duplicate's fused form is the same whichever content-equal
/// representative it copies. The determinism suite pins that equivalence.
pub fn lower_fuse(
    module: &Module,
    cfg: &vgl_passes::BackendConfig,
) -> (VmProgram, crate::fuse::FuseStats, Vec<vgl_obs::WorkerSample>) {
    use crate::fuse::{count_allocs, count_ref_stores, fuse_func, FuseStats};
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    use std::sync::mpsc::SyncSender;
    use std::time::Instant;
    use vgl_ir::metrics::pass_weight;
    use vgl_obs::WorkerSample;
    use vgl_passes::sched;

    if cfg.jobs <= 1 {
        let mut p = lower(module);
        let (stats, workers) = crate::fuse::fuse_cfg(&mut p, cfg);
        return (p, stats, workers);
    }
    let jobs = cfg.jobs.min(sched::MAX_JOBS);
    // The chunk target comes from the same pure IR estimator the optimizer
    // plans by (bytecode lengths are unknown until lowered); without
    // chunking every function becomes its own batch.
    let target_cost = if cfg.chunking {
        let total: u64 = module
            .methods
            .iter()
            .map(|m| vgl_ir::method_cost(m) * pass_weight::FUSE)
            .sum();
        (total / (sched::CHUNKS_PER_JOB * jobs as u64)).max(1)
    } else {
        1
    };

    let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<(usize, VmFunc)>>(FUSE_STREAM_BATCHES);
    let rx = std::sync::Mutex::new(rx);
    let pool_start = Instant::now();

    /// Stream-order duplicate detection + batching. Returns without
    /// sending when `i` is a duplicate of an earlier-streamed function.
    #[allow(clippy::too_many_arguments)]
    fn enqueue(
        funcs: &[VmFunc],
        i: usize,
        cost: u64,
        cache: bool,
        rep: &mut Vec<usize>,
        groups: &mut HashMap<u64, Vec<usize>>,
        batch: &mut Vec<(usize, VmFunc)>,
        batch_cost: &mut u64,
        target_cost: u64,
        tx: &SyncSender<Vec<(usize, VmFunc)>>,
    ) {
        while rep.len() <= i {
            rep.push(rep.len());
        }
        let f = &funcs[i];
        if cache {
            let same = |a: &VmFunc, b: &VmFunc| {
                a.param_count == b.param_count
                    && a.reg_count == b.reg_count
                    && a.ret_count == b.ret_count
                    && a.code == b.code
            };
            let mut h = DefaultHasher::new();
            (f.param_count, f.reg_count, f.ret_count).hash(&mut h);
            f.code.hash(&mut h);
            let candidates = groups.entry(h.finish()).or_default();
            if let Some(&j) = candidates.iter().find(|&&j| same(&funcs[j], f)) {
                rep[i] = j;
                return;
            }
            candidates.push(i);
        }
        batch.push((i, f.clone()));
        *batch_cost += cost.max(1);
        if *batch_cost >= target_cost {
            // A send fails only if every fuse worker died — their panic
            // resurfaces at join.
            let _ = tx.send(std::mem::take(batch));
            *batch_cost = 0;
        }
    }

    let (program, rep, results, samples) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let rx = &rx;
                s.spawn(move || {
                    let start = Instant::now();
                    let mut out: Vec<(usize, VmFunc, FuseStats)> = Vec::new();
                    loop {
                        let msg = rx.lock().expect("fuse receiver poisoned").recv();
                        let Ok(chunk) = msg else { break };
                        for (i, mut f) in chunk {
                            let mut st = FuseStats::default();
                            st.instrs_before += f.code.len();
                            let allocs_before = count_allocs(&f.code);
                            let ref_stores_before = count_ref_stores(&f.code);
                            fuse_func(&mut f, &mut st);
                            debug_assert_eq!(
                                allocs_before,
                                count_allocs(&f.code),
                                "fusion changed the allocating-instruction count in {}",
                                f.name
                            );
                            debug_assert_eq!(
                                ref_stores_before,
                                count_ref_stores(&f.code),
                                "fusion changed the barrier-carrying store count in {}",
                                f.name
                            );
                            st.instrs_after += f.code.len();
                            out.push((i, f, st));
                        }
                    }
                    let sample = WorkerSample {
                        phase: "fuse",
                        worker: w,
                        items: out.len(),
                        start: start.duration_since(pool_start),
                        duration: start.elapsed(),
                    };
                    (out, sample)
                })
            })
            .collect();

        let tx = tx; // moved in so dropping it below hangs up the channel
        let mut lw = Lower::new(module);
        lw.prepare();
        let n_methods = module.methods.len();
        let mut rep: Vec<usize> = Vec::new();
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut batch: Vec<(usize, VmFunc)> = Vec::new();
        let mut batch_cost = 0u64;
        let mut appended = n_methods;
        for i in 0..n_methods {
            lw.compile_method(i);
            let cost = vgl_ir::method_cost(&module.methods[i]) * pass_weight::FUSE;
            enqueue(
                &lw.program.funcs,
                i,
                cost,
                cfg.cache,
                &mut rep,
                &mut groups,
                &mut batch,
                &mut batch_cost,
                target_cost,
                &tx,
            );
            while appended < lw.program.funcs.len() {
                let cost =
                    (1 + lw.program.funcs[appended].code.len() as u64) * pass_weight::FUSE;
                enqueue(
                    &lw.program.funcs,
                    appended,
                    cost,
                    cfg.cache,
                    &mut rep,
                    &mut groups,
                    &mut batch,
                    &mut batch_cost,
                    target_cost,
                    &tx,
                );
                appended += 1;
            }
        }
        lw.finalize();
        while appended < lw.program.funcs.len() {
            let cost = (1 + lw.program.funcs[appended].code.len() as u64) * pass_weight::FUSE;
            enqueue(
                &lw.program.funcs,
                appended,
                cost,
                cfg.cache,
                &mut rep,
                &mut groups,
                &mut batch,
                &mut batch_cost,
                target_cost,
                &tx,
            );
            appended += 1;
        }
        if !batch.is_empty() {
            let _ = tx.send(std::mem::take(&mut batch));
        }
        drop(tx);

        let mut results: Vec<(usize, VmFunc, FuseStats)> = Vec::new();
        let mut samples = Vec::new();
        for h in handles {
            let (out, sample) = h.join().expect("fuse worker panicked");
            results.extend(out);
            samples.push(sample);
        }
        (lw.program, rep, results, samples)
    });

    // Commit in function-index order. Duplicates copy their
    // representative's fused form (keeping their own name); because the
    // stream dedups in discovery order a representative can have a
    // *higher* index than its duplicate, so copies come from the fused
    // result table, not the committed vector.
    let mut program = program;
    let n = program.funcs.len();
    debug_assert_eq!(rep.len(), n, "every lowered function was streamed");
    let mut fused: Vec<Option<(VmFunc, FuseStats)>> = (0..n).map(|_| None).collect();
    for (i, f, st) in results {
        fused[i] = Some((f, st));
    }
    let originals = std::mem::take(&mut program.funcs);
    let mut stats = FuseStats::default();
    program.funcs = Vec::with_capacity(n);
    for (i, original) in originals.into_iter().enumerate() {
        let f = if rep[i] == i {
            let (f, st) = fused[i].as_ref().expect("representative was fused");
            stats.absorb(st);
            f.clone()
        } else {
            let (rf, _) = fused[rep[i]].as_ref().expect("representative was fused");
            stats.instrs_before += original.code.len();
            stats.instrs_after += rf.code.len();
            VmFunc { name: original.name, ..rf.clone() }
        };
        program.funcs.push(f);
    }
    program.max_frame_regs = program.funcs.iter().map(|f| f.reg_count).max().unwrap_or(0);
    (program, stats, samples)
}

/// One shared-allocator side effect of lowering a method body, in the
/// order it happened. A spliced method replays its recorded demands
/// through the same memoized allocators instead of re-lowering its body,
/// which reproduces the cold compile's function-append and
/// closure-test-id history exactly: a demand that *allocated* at capture
/// time allocates again (at the same position in the program, because
/// every earlier demand was also replayed), and a demand that was a memo
/// hit is a memo hit again.
#[derive(Clone, Debug)]
pub enum Demand {
    /// Constructor wrapper for a first-class `C.new`.
    Ctor(ClassId),
    /// Operator wrapper for a first-class operator.
    Op(Oper),
    /// Builtin wrapper for a first-class `System.*`.
    Builtin(Builtin),
    /// Array-constructor wrapper for `Array<elem>.new`.
    ArrayNew(Type),
    /// Closure admissibility test against the function type; the second
    /// field is the test id the allocator returned at capture time, so a
    /// splice can map the cached code's `test` operands to their current
    /// ids.
    ClosTest(Type, u32),
}

/// One method's compiled artifact in relocatable form, as captured by
/// [`lower_fuse_incremental`]. The code is final (post-fuse when fusion
/// was on) but its program-indexed operands are positional: `CallVirt`
/// site ids and `ConstPool` ids are dense, assigned in lowering order, so
/// they relocate by the delta between the capture-time base and the
/// splice-time base; `ClosQuery`/`ClosCast` test ids are memoized by type
/// and map through the demand replay. Function, class, global, field-slot
/// and vtable-slot operands are embedded verbatim — that is only sound
/// between modules with equal `vgl_passes::context_digest`s, which is the
/// caller's contract.
#[derive(Clone, Debug)]
pub struct SpliceFunc {
    /// Parameter registers.
    pub param_count: usize,
    /// Frame size in registers.
    pub reg_count: usize,
    /// Return value count.
    pub ret_count: usize,
    /// Final (fused) code with capture-time operand bases.
    pub code: Vec<Instr>,
    /// `next_virt_site` when this method's body started lowering.
    pub site_base: u32,
    /// `CallVirt` sites the body allocated.
    pub site_count: u32,
    /// `program.pool.len()` when this method's body started lowering.
    pub pool_base: u32,
    /// The pool entries the body allocated, in order.
    pub pool: Vec<Vec<u8>>,
    /// Shared-allocator demands, in order (see [`Demand`]).
    pub demands: Vec<Demand>,
}

/// Per-method reuse decisions for [`lower_fuse_incremental`]: `funcs[i]`
/// is `Some` when method `i`'s artifact from a context-compatible earlier
/// compile should be spliced instead of lowered and fused.
#[derive(Clone, Default)]
pub struct ReusePlan {
    /// One slot per module method.
    pub funcs: Vec<Option<std::sync::Arc<SpliceFunc>>>,
}

/// Rewrites positional operands in relocatable cached code: dense
/// `CallVirt`/`CallGuard`/`CallInline` site ids and `ConstPool` ids shift
/// by their base deltas; memoized `ClosQuery`/`ClosCast` test ids map
/// through the demand replay's old → new table. Every other operand kind
/// (functions, classes, globals, field and vtable slots, registers) is
/// context-stable and passes through untouched.
fn relocate_code(
    code: &mut [Instr],
    site_delta: i64,
    pool_delta: i64,
    tests: &HashMap<u32, u32>,
) {
    let shift = |v: &mut u32, d: i64| {
        *v = u32::try_from(i64::from(*v) + d).expect("relocated index in range");
    };
    for ins in code {
        match ins {
            Instr::ConstPool(_, ix) => shift(ix, pool_delta),
            Instr::CallVirt { site, .. }
            | Instr::CallGuard { site, .. }
            | Instr::CallInline { site, .. } => shift(site, site_delta),
            Instr::ClosQuery { test, .. } | Instr::ClosCast { test, .. } => {
                *test = *tests.get(test).expect("clos test recorded in demands");
            }
            _ => {}
        }
    }
}

/// Lowering + fusion with cross-compile artifact reuse, the daemon's warm
/// path. Methods with a [`ReusePlan`] entry are **spliced** — their cached
/// fused code is relocated into the program without re-lowering or
/// re-fusing the body — and every other method is lowered and (when
/// `do_fuse`) fused exactly as the cold pipeline would. Returns the
/// program, fuse statistics for the work actually performed, and a
/// relocatable [`SpliceFunc`] capture for every *freshly compiled* method
/// (`None` for spliced ones, whose cached entries are still current).
///
/// Output is bit-identical to `lower` + [`crate::fuse::fuse_cfg`] on the
/// same module, provided every plan entry was captured from a compile
/// whose module had the same `vgl_passes::context_digest` and whose
/// method had the same `vgl_passes::cache::method_fingerprint` — the
/// serving determinism suite pins this equivalence across cold, warm, and
/// concurrent compiles.
pub fn lower_fuse_incremental(
    module: &Module,
    plan: Option<&ReusePlan>,
    do_fuse: bool,
) -> (VmProgram, crate::fuse::FuseStats, Vec<Option<SpliceFunc>>) {
    use crate::fuse::{count_allocs, count_ref_stores, fuse_func, FuseStats};

    struct Raw {
        site_base: u32,
        site_count: u32,
        pool_base: u32,
        pool_count: u32,
        demands: Vec<Demand>,
        spliced: bool,
    }

    let n = module.methods.len();
    let mut lw = Lower::new(module);
    lw.prepare();
    let mut raws: Vec<Raw> = Vec::with_capacity(n);
    for i in 0..n {
        let entry = plan.and_then(|p| p.funcs.get(i)).and_then(|e| e.clone());
        let site_base = lw.next_virt_site;
        let pool_base = lw.program.pool.len() as u32;
        let spliced = entry.is_some();
        if let Some(e) = entry {
            lw.splice_method(i, &e);
        } else {
            lw.recording = true;
            lw.compile_method(i);
            lw.recording = false;
        }
        raws.push(Raw {
            site_base,
            site_count: lw.next_virt_site - site_base,
            pool_base,
            pool_count: lw.program.pool.len() as u32 - pool_base,
            demands: std::mem::take(&mut lw.demand_log),
            spliced,
        });
    }
    lw.finalize();

    let mut program = lw.program;
    let mut stats = FuseStats::default();
    if do_fuse {
        // Fuse everything that was not spliced (spliced code is already
        // fused), including synthesized wrappers and global initializers.
        // Identical inputs fuse once; copies are bit-equal to re-fusing.
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut fused_of: Vec<usize> = (0..program.funcs.len()).collect();
        #[allow(clippy::needless_range_loop)] // fuses funcs[i] in place while reading raws and writing fused_of
        for i in 0..program.funcs.len() {
            if raws.get(i).is_some_and(|r| r.spliced) {
                continue;
            }
            use std::hash::{Hash, Hasher};
            let f = &program.funcs[i];
            let mut h = std::collections::hash_map::DefaultHasher::new();
            (f.param_count, f.reg_count, f.ret_count).hash(&mut h);
            f.code.hash(&mut h);
            let candidates = groups.entry(h.finish()).or_default();
            let same = |a: &VmFunc, b: &VmFunc| {
                a.param_count == b.param_count
                    && a.reg_count == b.reg_count
                    && a.ret_count == b.ret_count
                    && a.code == b.code
            };
            if let Some(&j) = candidates.iter().find(|&&j| same(&program.funcs[j], &program.funcs[i])) {
                fused_of[i] = j;
                continue;
            }
            candidates.push(i);
            let mut st = FuseStats::default();
            st.instrs_before += program.funcs[i].code.len();
            let allocs_before = count_allocs(&program.funcs[i].code);
            let ref_stores_before = count_ref_stores(&program.funcs[i].code);
            fuse_func(&mut program.funcs[i], &mut st);
            debug_assert_eq!(
                allocs_before,
                count_allocs(&program.funcs[i].code),
                "fusion changed the allocating-instruction count in {}",
                program.funcs[i].name
            );
            debug_assert_eq!(
                ref_stores_before,
                count_ref_stores(&program.funcs[i].code),
                "fusion changed the barrier-carrying store count in {}",
                program.funcs[i].name
            );
            st.instrs_after += program.funcs[i].code.len();
            stats.absorb(&st);
        }
        // The dedup above compared *pre-fuse* code of not-yet-fused funcs
        // against *post-fuse* code of processed ones only when the group
        // hash collided and `same` matched — which, because fusion is
        // deterministic and identity-stable on already-processed inputs,
        // can only copy a representative whose pre-fuse code was equal.
        for (i, &j) in fused_of.iter().enumerate() {
            if j != i {
                let (name, copy) = (program.funcs[i].name.clone(), program.funcs[j].clone());
                stats.instrs_before += program.funcs[i].code.len();
                stats.instrs_after += copy.code.len();
                program.funcs[i] = VmFunc { name, ..copy };
            }
        }
    }
    program.max_frame_regs = program.funcs.iter().map(|f| f.reg_count).max().unwrap_or(0);

    let captures = raws
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            if r.spliced {
                return None;
            }
            let f = &program.funcs[i];
            let pool = program.pool[r.pool_base as usize..(r.pool_base + r.pool_count) as usize]
                .to_vec();
            Some(SpliceFunc {
                param_count: f.param_count,
                reg_count: f.reg_count,
                ret_count: f.ret_count,
                code: f.code.clone(),
                site_base: r.site_base,
                site_count: r.site_count,
                pool_base: r.pool_base,
                pool,
                demands: r.demands,
            })
        })
        .collect();
    (program, stats, captures)
}

struct Lower<'m> {
    module: &'m Module,
    store: TypeStore,
    program: VmProgram,
    /// Wrapper caches.
    ctor_wrappers: HashMap<ClassId, FuncId>,
    op_wrappers: HashMap<Oper, FuncId>,
    builtin_wrappers: HashMap<Builtin, FuncId>,
    arraynew_wrappers: HashMap<Type, FuncId>,
    /// Function signatures for closure tests: (param types, ret type).
    func_sigs: Vec<(Vec<Type>, Type)>,
    clos_test_cache: HashMap<Type, u32>,
    /// Next `CallVirt` inline-cache site index.
    next_virt_site: u32,
    /// Shared-allocator demand log for the method currently lowering
    /// (captured by [`lower_fuse_incremental`], empty otherwise).
    demand_log: Vec<Demand>,
    /// Whether allocator calls append to `demand_log`.
    recording: bool,
}

impl<'m> Lower<'m> {
    fn new(module: &'m Module) -> Lower<'m> {
        Lower {
            module,
            store: module.store.clone(),
            program: VmProgram::default(),
            ctor_wrappers: HashMap::new(),
            op_wrappers: HashMap::new(),
            builtin_wrappers: HashMap::new(),
            arraynew_wrappers: HashMap::new(),
            func_sigs: Vec::new(),
            clos_test_cache: HashMap::new(),
            next_virt_site: 0,
            demand_log: Vec::new(),
            recording: false,
        }
    }

    fn note(&mut self, d: Demand) {
        if self.recording {
            self.demand_log.push(d);
        }
    }

    /// Replays a spliced method's demand log through the shared memoized
    /// allocators (see [`Demand`]); returns the old → new closure-test id
    /// map for [`relocate_code`].
    fn replay_demands(&mut self, demands: &[Demand]) -> HashMap<u32, u32> {
        let mut tests = HashMap::new();
        for d in demands {
            match *d {
                Demand::Ctor(c) => {
                    self.ctor_wrapper(c);
                }
                Demand::Op(op) => {
                    self.op_wrapper(op);
                }
                Demand::Builtin(b) => {
                    self.builtin_wrapper(b);
                }
                Demand::ArrayNew(t) => {
                    self.arraynew_wrapper(t);
                }
                Demand::ClosTest(t, old) => {
                    let new = self.clos_test(t);
                    tests.insert(old, new);
                }
            }
        }
        tests
    }

    /// Installs a cached artifact into method `i`'s reserved slot,
    /// reproducing everything the cold compile of this body would have
    /// done to shared program state: advance the site counter, append the
    /// body's pool entries, and replay its allocator demands. The cached
    /// code is then relocated to the current bases. (Site/pool/function
    /// allocation use independent counters, so replaying demands as a
    /// prefix instead of interleaved with body emission lands every id in
    /// the same place.)
    fn splice_method(&mut self, i: usize, e: &SpliceFunc) {
        let site_delta = i64::from(self.next_virt_site) - i64::from(e.site_base);
        let pool_delta = self.program.pool.len() as i64 - i64::from(e.pool_base);
        self.next_virt_site += e.site_count;
        self.program.pool.extend(e.pool.iter().cloned());
        let watermark = (self.next_virt_site, self.program.pool.len());
        let tests = self.replay_demands(&e.demands);
        debug_assert_eq!(
            watermark,
            (self.next_virt_site, self.program.pool.len()),
            "demand replay must not allocate sites or pool entries"
        );
        let mut code = e.code.clone();
        relocate_code(&mut code, site_delta, pool_delta, &tests);
        self.program.funcs[i] = VmFunc {
            name: self.module.methods[i].name.clone(),
            param_count: e.param_count,
            reg_count: e.reg_count,
            ret_count: e.ret_count,
            code,
        };
    }

    fn run(&mut self) {
        self.prepare();
        for i in 0..self.module.methods.len() {
            self.compile_method(i);
        }
        self.finalize();
    }

    /// Everything before body compilation: class layout and one reserved
    /// function per method, in order, so MethodId == FuncId.
    fn prepare(&mut self) {
        self.assign_class_ranges();
        for m in &self.module.methods {
            let ret_count = self.store.flatten(m.ret).len();
            let params: Vec<Type> = m.locals[..m.param_count].iter().map(|l| l.ty).collect();
            self.func_sigs.push((params, m.ret));
            self.program.funcs.push(VmFunc {
                name: m.name.clone(),
                param_count: m.param_count,
                reg_count: m.param_count,
                ret_count,
                code: vec![Instr::Trap(Exception::Unimplemented)],
            });
        }
        // Class table (field counts, null masks, vtables).
        for (i, c) in self.module.classes.iter().enumerate() {
            let field_count = self.module.object_size(ClassId(i as u32));
            let mut mask = vec![false; field_count];
            let mut cur = Some(ClassId(i as u32));
            while let Some(cid) = cur {
                for f in &self.module.class(cid).fields {
                    mask[f.slot] = self.store.is_nullable(f.ty);
                }
                cur = self.module.class(cid).parent;
            }
            self.program.classes[i].field_count = field_count;
            self.program.classes[i].field_nullable = mask;
            self.program.classes[i].vtable = c.vtable.iter().map(|m| m.0).collect();
        }
    }

    /// Compiles method `i`'s body into its reserved slot. Must be called
    /// for every method index in ascending order (the wrapper caches are
    /// order-sensitive). Afterwards `program.funcs[i]` is final, as is any
    /// wrapper this call appended past the reserved range — the joined
    /// lower+fuse driver streams them out on exactly that contract.
    fn compile_method(&mut self, i: usize) {
        let module = self.module;
        let m = &module.methods[i];
        if let Some(body) = &m.body {
            let f = self.compile_body(m, body);
            self.program.funcs[i] = f;
        } else if m.kind == MethodKind::Abstract {
            // Keep the trap body.
        }
    }

    /// Everything after body compilation: global slots and initializer
    /// functions, entry point, inline-cache site count, frame analysis.
    fn finalize(&mut self) {
        self.program.global_count = self.module.globals.len();
        self.program.global_nullable = self
            .module
            .globals
            .iter()
            .map(|g| self.store.is_nullable(g.ty))
            .collect();
        for (gi, g) in self.module.globals.iter().enumerate() {
            if let Some(init) = &g.init {
                let fid = self.compile_init(&g.name, init, &g.locals);
                self.program.global_inits.push((gi as u32, fid));
            }
        }
        self.program.main = self.module.main.map(|m| m.0);
        self.program.virt_sites = self.next_virt_site as usize;
        self.program.max_frame_regs =
            self.program.funcs.iter().map(|f| f.reg_count).max().unwrap_or(0);
    }

    fn assign_class_ranges(&mut self) {
        let n = self.module.classes.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (i, c) in self.module.classes.iter().enumerate() {
            match c.parent {
                Some(p) => children[p.index()].push(i),
                None => roots.push(i),
            }
            self.program.classes.push(VmClass {
                name: c.name.clone(),
                field_count: 0,
                field_nullable: Vec::new(),
                vtable: Vec::new(),
                pre: 0,
                max_desc: 0,
            });
        }
        let mut next = 0u32;
        let mut stack: Vec<(usize, bool)> = roots.into_iter().map(|r| (r, false)).collect();
        // Iterative DFS assigning preorder + max-descendant numbers.
        let mut order = Vec::new();
        while let Some((i, done)) = stack.pop() {
            if done {
                let max = self.program.classes[i]
                    .pre
                    .max(children[i].iter().map(|&c| self.program.classes[c].max_desc).max().unwrap_or(0));
                self.program.classes[i].max_desc = max;
                continue;
            }
            self.program.classes[i].pre = next;
            next += 1;
            order.push(i);
            stack.push((i, true));
            for &c in &children[i] {
                stack.push((c, false));
            }
        }
    }

    // ---- wrappers ------------------------------------------------------------

    fn add_func(&mut self, f: VmFunc, params: Vec<Type>, ret: Type) -> FuncId {
        let id = self.program.funcs.len() as FuncId;
        self.func_sigs.push((params, ret));
        self.program.funcs.push(f);
        id
    }

    fn ctor_wrapper(&mut self, class: ClassId) -> FuncId {
        self.note(Demand::Ctor(class));
        if let Some(&f) = self.ctor_wrappers.get(&class) {
            return f;
        }
        let ctor = self.module.class(class).ctor.expect("class has ctor");
        let cm = self.module.method(ctor);
        let nparams = cm.param_count - 1;
        let mut code = Vec::new();
        let obj: Reg = nparams as Reg;
        code.push(Instr::NewObject { dst: obj, class: class.0 });
        let mut args = vec![obj];
        args.extend((0..nparams as Reg).collect::<Vec<Reg>>());
        code.push(Instr::Call { func: ctor.0, args, rets: vec![] });
        code.push(Instr::Ret(vec![obj]));
        let params: Vec<Type> = cm.locals[1..cm.param_count].iter().map(|l| l.ty).collect();
        let ret = self.store.class(class, vec![]);
        let f = VmFunc {
            name: format!("<new:{}>", self.module.class(class).name),
            param_count: nparams,
            reg_count: nparams + 1,
            ret_count: 1,
            code,
        };
        let id = self.add_func(f, params, ret);
        self.ctor_wrappers.insert(class, id);
        id
    }

    fn op_wrapper(&mut self, op: Oper) -> FuncId {
        self.note(Demand::Op(op));
        if let Some(&f) = self.op_wrappers.get(&op) {
            return f;
        }
        let (arity, code, params, ret): (usize, Vec<Instr>, Vec<Type>, Type) = {
            let int = self.store.int;
            let byte = self.store.byte;
            let bool_ = self.store.bool_;
            let bin = |k: BinKind, pt: Type, rt: Type| {
                (2, vec![Instr::Bin(k, 2, 0, 1), Instr::Ret(vec![2])], vec![pt, pt], rt)
            };
            match op {
                Oper::IntAdd => bin(BinKind::Add, int, int),
                Oper::IntSub => bin(BinKind::Sub, int, int),
                Oper::IntMul => bin(BinKind::Mul, int, int),
                Oper::IntDiv => bin(BinKind::Div, int, int),
                Oper::IntMod => bin(BinKind::Mod, int, int),
                Oper::IntAnd => bin(BinKind::And, int, int),
                Oper::IntOr => bin(BinKind::Or, int, int),
                Oper::IntXor => bin(BinKind::Xor, int, int),
                Oper::IntShl => bin(BinKind::Shl, int, int),
                Oper::IntShr => bin(BinKind::Shr, int, int),
                Oper::IntLt => bin(BinKind::Lt, int, bool_),
                Oper::IntLe => bin(BinKind::Le, int, bool_),
                Oper::IntGt => bin(BinKind::Gt, int, bool_),
                Oper::IntGe => bin(BinKind::Ge, int, bool_),
                Oper::ByteLt => bin(BinKind::Lt, byte, bool_),
                Oper::ByteLe => bin(BinKind::Le, byte, bool_),
                Oper::ByteGt => bin(BinKind::Gt, byte, bool_),
                Oper::ByteGe => bin(BinKind::Ge, byte, bool_),
                Oper::IntNeg => (
                    1,
                    vec![Instr::Neg(1, 0), Instr::Ret(vec![1])],
                    vec![int],
                    int,
                ),
                Oper::BoolNot => (
                    1,
                    vec![Instr::Not(1, 0), Instr::Ret(vec![1])],
                    vec![bool_],
                    bool_,
                ),
                Oper::Eq(t) | Oper::Ne(t) => {
                    let is_fn = matches!(self.store.kind(t), TypeKind::Function(..));
                    let mut code = vec![if is_fn {
                        Instr::EqClos(2, 0, 1)
                    } else {
                        Instr::EqRR(2, 0, 1)
                    }];
                    if matches!(op, Oper::Ne(_)) {
                        code.push(Instr::Not(2, 2));
                    }
                    code.push(Instr::Ret(vec![2]));
                    (2, code, vec![t, t], bool_)
                }
                Oper::Cast { from, to } | Oper::Query { from, to } => {
                    // Compile through an expression so all cast logic is in
                    // one place.
                    let is_query = matches!(op, Oper::Query { .. });
                    let arg = Expr::new(ExprKind::Local(vgl_ir::LocalId(0)), from);
                    let body = Body {
                        stmts: vec![Stmt::Return(Some(Expr::new(
                            ExprKind::Apply(op, vec![arg]),
                            if is_query { bool_ } else { to },
                        )))],
                    };
                    let m = vgl_ir::Method {
                        name: format!("<op:{op:?}>"),
                        owner: None,
                        is_private: true,
                        kind: MethodKind::Normal,
                        type_params: vec![],
                        param_count: 1,
                        locals: vec![vgl_ir::Local {
                            name: "x".into(),
                            ty: from,
                            mutable: false,
                        }],
                        ret: if is_query { bool_ } else { to },
                        body: None,
                        vtable_index: None,
                    };
                    let f = self.compile_body(&m, &body);
                    let id = self.add_func(f, vec![from], if is_query { bool_ } else { to });
                    self.op_wrappers.insert(op, id);
                    return id;
                }
            }
        };
        let f = VmFunc {
            name: format!("<op:{op:?}>"),
            param_count: arity,
            reg_count: arity + 1,
            ret_count: 1,
            code,
        };
        let id = self.add_func(f, params, ret);
        self.op_wrappers.insert(op, id);
        id
    }

    fn builtin_wrapper(&mut self, b: Builtin) -> FuncId {
        self.note(Demand::Builtin(b));
        if let Some(&f) = self.builtin_wrappers.get(&b) {
            return f;
        }
        let (params, ret): (Vec<Type>, Type) = {
            let s = &mut self.store;
            match b {
                Builtin::Puts | Builtin::Error => (vec![s.string], s.void),
                Builtin::Puti => (vec![s.int], s.void),
                Builtin::Putb => (vec![s.bool_], s.void),
                Builtin::Putc => (vec![s.byte], s.void),
                Builtin::Ln => (vec![], s.void),
                Builtin::Ticks => (vec![], s.int),
            }
        };
        let n = params.len();
        let rets = if ret == self.store.void { vec![] } else { vec![n as Reg] };
        let mut code = vec![Instr::CallBuiltin {
            b,
            args: (0..n as Reg).collect(),
            rets: rets.clone(),
        }];
        code.push(Instr::Ret(rets));
        let f = VmFunc {
            name: format!("<builtin:{b:?}>"),
            param_count: n,
            reg_count: n + 1,
            ret_count: usize::from(ret != self.store.void),
            code,
        };
        let id = self.add_func(f, params, ret);
        self.builtin_wrappers.insert(b, id);
        id
    }

    fn arraynew_wrapper(&mut self, elem: Type) -> FuncId {
        self.note(Demand::ArrayNew(elem));
        if let Some(&f) = self.arraynew_wrappers.get(&elem) {
            return f;
        }
        let int = self.store.int;
        let arr = self.store.array(elem);
        let nullable = self.store.is_nullable(elem);
        let f = VmFunc {
            name: "<arraynew>".into(),
            param_count: 1,
            reg_count: 2,
            ret_count: 1,
            code: vec![
                Instr::NewArray { dst: 1, len: 0, nullable },
                Instr::Ret(vec![1]),
            ],
        };
        let id = self.add_func(f, vec![int], arr);
        self.arraynew_wrappers.insert(elem, id);
        id
    }

    /// Builds (or reuses) a closure admissibility test against function type
    /// `to`.
    fn clos_test(&mut self, to: Type) -> u32 {
        if let Some(&t) = self.clos_test_cache.get(&to) {
            self.note(Demand::ClosTest(to, t));
            return t;
        }
        let n = self.program.funcs.len().max(self.func_sigs.len());
        let mut test = ClosTest {
            allowed_bound: vec![false; n],
            allowed_unbound: vec![false; n],
        };
        let hier = &self.module.hier;
        for (f, (params, ret)) in self.func_sigs.clone().into_iter().enumerate() {
            let unbound_p = self.store.tuple(params.clone());
            let ret_pieces = self.store.flatten(ret);
            let ret_t = self.store.tuple(ret_pieces);
            let unbound = self.store.function(unbound_p, ret_t);
            test.allowed_unbound[f] =
                vgl_types::is_subtype(&mut self.store, hier, unbound, to);
            if !params.is_empty() {
                let bound_p = self.store.tuple(params[1..].to_vec());
                let bound = self.store.function(bound_p, ret_t);
                test.allowed_bound[f] =
                    vgl_types::is_subtype(&mut self.store, hier, bound, to);
            }
        }
        let id = self.program.clos_tests.len() as u32;
        self.program.clos_tests.push(test);
        self.clos_test_cache.insert(to, id);
        self.note(Demand::ClosTest(to, id));
        id
    }

    fn compile_init(&mut self, name: &str, init: &Expr, locals: &[vgl_ir::Local]) -> FuncId {
        let m = vgl_ir::Method {
            name: format!("<init:{name}>"),
            owner: None,
            is_private: true,
            kind: MethodKind::Normal,
            type_params: vec![],
            param_count: 0,
            locals: locals.to_vec(),
            ret: init.ty,
            body: None,
            vtable_index: None,
        };
        let body = Body { stmts: vec![Stmt::Return(Some(init.clone()))] };
        let f = self.compile_body(&m, &body);
        self.add_func(f, vec![], init.ty)
    }

    // ---- body compilation -------------------------------------------------------

    fn compile_body(&mut self, m: &vgl_ir::Method, body: &Body) -> VmFunc {
        let mut fx = FnCx::new(m, &self.store);
        self.stmts(&body.stmts, &mut fx);
        // Implicit return for void fallthrough.
        let ret_count = self.store.flatten(m.ret).len();
        if ret_count == 0 {
            fx.code.push(Instr::Ret(vec![]));
        } else {
            fx.code.push(Instr::Trap(Exception::Unimplemented));
        }
        VmFunc {
            name: m.name.clone(),
            param_count: m.param_count,
            reg_count: fx.max_reg.max(fx.frame_base),
            ret_count,
            code: fx.code,
        }
    }

    fn stmts(&mut self, stmts: &[Stmt], fx: &mut FnCx) {
        for s in stmts {
            self.stmt(s, fx);
        }
    }

    fn stmt(&mut self, s: &Stmt, fx: &mut FnCx) {
        fx.reset_temps();
        match s {
            Stmt::Expr(e) => {
                self.expr_effect(e, fx);
            }
            Stmt::Local(l, init) => {
                let (base, width) = fx.local_regs[l.index()];
                match init {
                    None => {
                        // Default-initialize: null for reference types,
                        // zero otherwise (also covers re-entry into loop
                        // bodies where a previous iteration wrote the slot).
                        let nullable = fx.local_nullable[l.index()];
                        for j in 0..width {
                            if nullable {
                                fx.code.push(Instr::ConstNull(base + j as Reg));
                            } else {
                                fx.code.push(Instr::ConstI(base + j as Reg, 0));
                            }
                        }
                    }
                    Some(e) if width > 1 => {
                        // Boundary multi-value call: rets straight into the
                        // local's register block.
                        let rets: Vec<Reg> = (0..width as Reg).map(|j| base + j).collect();
                        self.compile_call_into(e, rets, fx);
                    }
                    Some(e) => {
                        let r = self.expr(e, fx);
                        if width == 1 {
                            fx.code.push(Instr::Mov(base, r));
                        }
                    }
                }
            }
            Stmt::If(c, t, e) => {
                let cr = self.expr(c, fx);
                let br = fx.emit_placeholder();
                self.stmts(t, fx);
                if e.is_empty() {
                    let end = fx.code.len();
                    fx.patch(br, Instr::BrFalse(cr, (end - br) as i32));
                } else {
                    let jmp = fx.emit_placeholder();
                    let else_start = fx.code.len();
                    fx.patch(br, Instr::BrFalse(cr, (else_start - br) as i32));
                    self.stmts(e, fx);
                    let end = fx.code.len();
                    fx.patch(jmp, Instr::Jump((end - jmp) as i32));
                }
            }
            Stmt::While(c, body) => {
                let start = fx.code.len();
                fx.reset_temps();
                let cr = self.expr(c, fx);
                let exit_br = fx.emit_placeholder();
                fx.loops.push(LoopCx { start, breaks: vec![] });
                self.stmts(body, fx);
                let back = fx.code.len();
                fx.code.push(Instr::Jump(start as i32 - back as i32));
                let end = fx.code.len();
                fx.patch(exit_br, Instr::BrFalse(cr, (end - exit_br) as i32));
                let lp = fx.loops.pop().expect("loop context");
                for b in lp.breaks {
                    fx.patch(b, Instr::Jump((end - b) as i32));
                }
            }
            Stmt::Return(None) => fx.code.push(Instr::Ret(vec![])),
            Stmt::Return(Some(e)) => {
                if let ExprKind::Tuple(pieces) = &e.kind {
                    let regs: Vec<Reg> = pieces.iter().map(|p| self.expr(p, fx)).collect();
                    fx.code.push(Instr::Ret(regs));
                } else if self.store.is_void(e.ty) {
                    self.expr_effect(e, fx);
                    fx.code.push(Instr::Ret(vec![]));
                } else {
                    let r = self.expr(e, fx);
                    fx.code.push(Instr::Ret(vec![r]));
                }
            }
            Stmt::Break => {
                let at = fx.emit_placeholder();
                let li = fx.loops.len() - 1;
                fx.loops[li].breaks.push(at);
            }
            Stmt::Continue => {
                let at = fx.code.len();
                let start = fx.loops.last().expect("loop context").start;
                fx.code.push(Instr::Jump(start as i32 - at as i32));
            }
            Stmt::Block(b) => self.stmts(b, fx),
        }
    }

    /// Compiles an expression for effect only.
    fn expr_effect(&mut self, e: &Expr, fx: &mut FnCx) {
        if self.store.is_void(e.ty) || matches!(self.store.kind(e.ty), TypeKind::Tuple(_)) {
            // Void- or tuple-typed effect (e.g. a multi-value call whose
            // results are dropped).
            match &e.kind {
                ExprKind::CallStatic { .. }
                | ExprKind::CallVirtual { .. }
                | ExprKind::CallClosure { .. }
                | ExprKind::CallBuiltin(..) => {
                    self.compile_call_into(e, vec![], fx);
                    return;
                }
                ExprKind::Unit => return,
                _ => {}
            }
        }
        let _ = self.expr(e, fx);
    }

    /// Compiles a call expression with explicit destination registers.
    fn compile_call_into(&mut self, e: &Expr, rets: Vec<Reg>, fx: &mut FnCx) {
        match &e.kind {
            ExprKind::CallStatic { method, args, .. } => {
                let argr: Vec<Reg> = args.iter().map(|a| self.expr(a, fx)).collect();
                fx.code.push(Instr::Call { func: method.0, args: argr, rets });
            }
            ExprKind::CallVirtual { method, recv, args, .. } => {
                let slot = self
                    .module
                    .method(*method)
                    .vtable_index
                    .expect("virtual call target has a slot") as u32;
                let mut argr = vec![self.expr(recv, fx)];
                argr.extend(args.iter().map(|a| self.expr(a, fx)));
                let site = self.next_virt_site;
                self.next_virt_site += 1;
                fx.code.push(Instr::CallVirt { slot, site, args: argr, rets });
            }
            ExprKind::CallClosure { func, args } => {
                let cr = self.expr(func, fx);
                let argr: Vec<Reg> = args.iter().map(|a| self.expr(a, fx)).collect();
                fx.code.push(Instr::CallClos { clos: cr, args: argr, rets });
            }
            ExprKind::CallBuiltin(b, args) => {
                let argr: Vec<Reg> = args.iter().map(|a| self.expr(a, fx)).collect();
                fx.code.push(Instr::CallBuiltin { b: *b, args: argr, rets });
            }
            other => unreachable!("compile_call_into on non-call {other:?}"),
        }
    }

    /// Compiles a scalar expression, returning its register.
    fn expr(&mut self, e: &Expr, fx: &mut FnCx) -> Reg {
        match &e.kind {
            ExprKind::Int(v) => {
                let d = fx.temp();
                fx.code.push(Instr::ConstI(d, *v as i64));
                d
            }
            ExprKind::Byte(v) => {
                let d = fx.temp();
                fx.code.push(Instr::ConstI(d, *v as i64));
                d
            }
            ExprKind::Bool(v) => {
                let d = fx.temp();
                fx.code.push(Instr::ConstI(d, i64::from(*v)));
                d
            }
            ExprKind::Unit => {
                let d = fx.temp();
                fx.code.push(Instr::ConstI(d, 0));
                d
            }
            ExprKind::Null => {
                let d = fx.temp();
                fx.code.push(Instr::ConstNull(d));
                d
            }
            ExprKind::String(bytes) => {
                let ix = self.program.pool.len() as u32;
                self.program.pool.push(bytes.clone());
                let d = fx.temp();
                fx.code.push(Instr::ConstPool(d, ix));
                d
            }
            ExprKind::Trap(x) => {
                fx.code.push(Instr::Trap(*x));
                fx.temp()
            }
            ExprKind::CheckNull(v) => {
                let r = self.expr(v, fx);
                fx.code.push(Instr::CheckNull(r));
                r
            }
            ExprKind::Local(l) => fx.local_regs[l.index()].0,
            ExprKind::Global(g) => {
                let d = fx.temp();
                fx.code.push(Instr::GlobalGet { dst: d, g: g.0 });
                d
            }
            ExprKind::LocalSet(l, v) => {
                let r = self.expr(v, fx);
                let (base, _) = fx.local_regs[l.index()];
                fx.code.push(Instr::Mov(base, r));
                base
            }
            ExprKind::GlobalSet(g, v) => {
                let r = self.expr(v, fx);
                fx.code.push(Instr::GlobalSet { g: g.0, src: r });
                r
            }
            ExprKind::TupleIndex(b, i) => {
                // Boundary projection of a tuple-typed local.
                let ExprKind::Local(l) = b.kind else {
                    unreachable!("non-boundary tuple projection in lowering");
                };
                let (base, width) = fx.local_regs[l.index()];
                debug_assert!((*i as usize) < width);
                base + *i as Reg
            }
            ExprKind::ArrayLit(es) => {
                let regs: Vec<Reg> = es.iter().map(|x| self.expr(x, fx)).collect();
                let d = fx.temp();
                fx.code.push(Instr::ArrayLit { dst: d, elems: regs });
                d
            }
            ExprKind::ArrayNew(n) => {
                let r = self.expr(n, fx);
                let d = fx.temp();
                let nullable = match self.store.kind(e.ty) {
                    TypeKind::Array(el) => self.store.is_nullable(*el),
                    _ => false,
                };
                fx.code.push(Instr::NewArray { dst: d, len: r, nullable });
                d
            }
            ExprKind::ArrayLen(a) => {
                let r = self.expr(a, fx);
                let d = fx.temp();
                fx.code.push(Instr::ArrayLen { dst: d, arr: r });
                d
            }
            ExprKind::ArrayGet(a, i) => {
                let ar = self.expr(a, fx);
                let ir = self.expr(i, fx);
                let d = fx.temp();
                fx.code.push(Instr::ArrayGet { dst: d, arr: ar, idx: ir });
                d
            }
            ExprKind::ArraySet(a, i, v) => {
                let ar = self.expr(a, fx);
                let ir = self.expr(i, fx);
                let vr = self.expr(v, fx);
                // Reference-typed stores carry the generational write
                // barrier; scalar stores stay barrier-free.
                if self.store.is_nullable(v.ty) {
                    fx.code.push(Instr::ArraySetRef { arr: ar, idx: ir, val: vr });
                } else {
                    fx.code.push(Instr::ArraySet { arr: ar, idx: ir, val: vr });
                }
                vr
            }
            ExprKind::FieldGet(o, fref) => {
                let or = self.expr(o, fx);
                let d = fx.temp();
                fx.code.push(Instr::FieldGet { dst: d, obj: or, slot: fref.slot as u32 });
                d
            }
            ExprKind::FieldSet(o, fref, v) => {
                let or = self.expr(o, fx);
                let vr = self.expr(v, fx);
                // Reference-typed stores carry the generational write
                // barrier; scalar stores stay barrier-free.
                if self.store.is_nullable(v.ty) {
                    fx.code.push(Instr::FieldSetRef { obj: or, slot: fref.slot as u32, val: vr });
                } else {
                    fx.code.push(Instr::FieldSet { obj: or, slot: fref.slot as u32, val: vr });
                }
                vr
            }
            ExprKind::New { class, args, .. } => {
                let d = fx.temp();
                fx.code.push(Instr::NewObject { dst: d, class: class.0 });
                if let Some(ctor) = self.module.class(*class).ctor {
                    let mut argr = vec![d];
                    argr.extend(args.iter().map(|a| self.expr(a, fx)));
                    fx.code.push(Instr::Call { func: ctor.0, args: argr, rets: vec![] });
                }
                d
            }
            ExprKind::CallStatic { .. }
            | ExprKind::CallVirtual { .. }
            | ExprKind::CallClosure { .. }
            | ExprKind::CallBuiltin(..) => {
                let width = self.store.flatten(e.ty).len();
                debug_assert!(width <= 1, "multi-value call in scalar position");
                let d = fx.temp();
                let rets = if width == 1 { vec![d] } else { vec![] };
                self.compile_call_into(e, rets, fx);
                d
            }
            ExprKind::BindMethod { method, recv, .. } => {
                let rr = self.expr(recv, fx);
                let d = fx.temp();
                match self.module.method(*method).vtable_index {
                    Some(slot) => {
                        fx.code.push(Instr::MakeClosVirt { dst: d, slot: slot as u32, recv: rr });
                    }
                    None => {
                        fx.code.push(Instr::CheckNull(rr));
                        fx.code.push(Instr::MakeClos { dst: d, func: method.0, recv: Some(rr) });
                    }
                }
                d
            }
            ExprKind::FuncRef { method, .. } => {
                let d = fx.temp();
                fx.code.push(Instr::MakeClos { dst: d, func: method.0, recv: None });
                d
            }
            ExprKind::CtorRef { class, .. } => {
                let f = self.ctor_wrapper(*class);
                let d = fx.temp();
                fx.code.push(Instr::MakeClos { dst: d, func: f, recv: None });
                d
            }
            ExprKind::ArrayNewRef { elem } => {
                let f = self.arraynew_wrapper(*elem);
                let d = fx.temp();
                fx.code.push(Instr::MakeClos { dst: d, func: f, recv: None });
                d
            }
            ExprKind::BuiltinRef(b) => {
                let f = self.builtin_wrapper(*b);
                let d = fx.temp();
                fx.code.push(Instr::MakeClos { dst: d, func: f, recv: None });
                d
            }
            ExprKind::OpClosure(op) => {
                let f = self.op_wrapper(*op);
                let d = fx.temp();
                fx.code.push(Instr::MakeClos { dst: d, func: f, recv: None });
                d
            }
            ExprKind::Apply(op, args) => self.apply(*op, args, fx),
            ExprKind::And(a, b) => {
                let d = fx.temp();
                let ar = self.expr(a, fx);
                fx.code.push(Instr::Mov(d, ar));
                let br_ix = fx.emit_placeholder();
                let br = self.expr(b, fx);
                fx.code.push(Instr::Mov(d, br));
                let end = fx.code.len();
                fx.patch(br_ix, Instr::BrFalse(d, (end - br_ix) as i32));
                d
            }
            ExprKind::Or(a, b) => {
                let d = fx.temp();
                let ar = self.expr(a, fx);
                fx.code.push(Instr::Mov(d, ar));
                let br_ix = fx.emit_placeholder();
                let br = self.expr(b, fx);
                fx.code.push(Instr::Mov(d, br));
                let end = fx.code.len();
                fx.patch(br_ix, Instr::BrTrue(d, (end - br_ix) as i32));
                d
            }
            ExprKind::Ternary { cond, then, els } => {
                let d = fx.temp();
                let cr = self.expr(cond, fx);
                let br_ix = fx.emit_placeholder();
                let tr = self.expr(then, fx);
                fx.code.push(Instr::Mov(d, tr));
                let jmp = fx.emit_placeholder();
                let else_start = fx.code.len();
                fx.patch(br_ix, Instr::BrFalse(cr, (else_start - br_ix) as i32));
                let er = self.expr(els, fx);
                fx.code.push(Instr::Mov(d, er));
                let end = fx.code.len();
                fx.patch(jmp, Instr::Jump((end - jmp) as i32));
                d
            }
            ExprKind::Tuple(_) => unreachable!("tuple in scalar position after normalization"),
            ExprKind::Let { local, value, body } => {
                let (base, width) = fx.local_regs[local.index()];
                debug_assert_eq!(width, 1, "Let binds scalars after normalization");
                let v = self.expr(value, fx);
                fx.code.push(Instr::Mov(base, v));
                self.expr(body, fx)
            }
        }
    }

    fn apply(&mut self, op: Oper, args: &[Expr], fx: &mut FnCx) -> Reg {
        use Oper::*;
        let bin = |lw: &mut Self, k: BinKind, args: &[Expr], fx: &mut FnCx| {
            let a = lw.expr(&args[0], fx);
            let b = lw.expr(&args[1], fx);
            let d = fx.temp();
            fx.code.push(Instr::Bin(k, d, a, b));
            d
        };
        match op {
            IntAdd => bin(self, BinKind::Add, args, fx),
            IntSub => bin(self, BinKind::Sub, args, fx),
            IntMul => bin(self, BinKind::Mul, args, fx),
            IntDiv => bin(self, BinKind::Div, args, fx),
            IntMod => bin(self, BinKind::Mod, args, fx),
            IntAnd => bin(self, BinKind::And, args, fx),
            IntOr => bin(self, BinKind::Or, args, fx),
            IntXor => bin(self, BinKind::Xor, args, fx),
            IntShl => bin(self, BinKind::Shl, args, fx),
            IntShr => bin(self, BinKind::Shr, args, fx),
            IntLt | ByteLt => bin(self, BinKind::Lt, args, fx),
            IntLe | ByteLe => bin(self, BinKind::Le, args, fx),
            IntGt | ByteGt => bin(self, BinKind::Gt, args, fx),
            IntGe | ByteGe => bin(self, BinKind::Ge, args, fx),
            IntNeg => {
                let a = self.expr(&args[0], fx);
                let d = fx.temp();
                fx.code.push(Instr::Neg(d, a));
                d
            }
            BoolNot => {
                let a = self.expr(&args[0], fx);
                let d = fx.temp();
                fx.code.push(Instr::Not(d, a));
                d
            }
            Eq(t) | Ne(t) => {
                let a = self.expr(&args[0], fx);
                let b = self.expr(&args[1], fx);
                let d = fx.temp();
                if matches!(self.store.kind(t), TypeKind::Function(..)) {
                    fx.code.push(Instr::EqClos(d, a, b));
                } else {
                    fx.code.push(Instr::EqRR(d, a, b));
                }
                if matches!(op, Ne(_)) {
                    fx.code.push(Instr::Not(d, d));
                }
                d
            }
            Cast { from, to } => self.cast(from, to, &args[0], fx),
            Query { from, to } => self.query(from, to, &args[0], fx),
        }
    }

    fn cast(&mut self, from: Type, to: Type, arg: &Expr, fx: &mut FnCx) -> Reg {
        let r = self.expr(arg, fx);
        if from == to {
            return r;
        }
        let fk = self.store.kind(from).clone();
        let tk = self.store.kind(to).clone();
        match (fk, tk) {
            (TypeKind::Int, TypeKind::Byte) => {
                let d = fx.temp();
                fx.code.push(Instr::IntToByte { dst: d, src: r });
                d
            }
            (TypeKind::Byte, TypeKind::Int) => r,
            (TypeKind::Class(..), TypeKind::Class(c2, _)) => {
                let vc = &self.program.classes[c2.index()];
                let (lo, hi) = (vc.pre, vc.max_desc);
                fx.code.push(Instr::ClassCast { obj: r, lo, hi });
                r
            }
            (TypeKind::Function(..), TypeKind::Function(..)) => {
                let t = self.clos_test(to);
                fx.code.push(Instr::ClosCast { clos: r, test: t });
                r
            }
            (TypeKind::Null, _) => r,
            // Everything else is a statically-impossible cast (the optimizer
            // folds these when enabled; without it they reach lowering and
            // must trap at runtime).
            _ => {
                fx.code.push(Instr::Trap(Exception::TypeCheck));
                r
            }
        }
    }

    fn query(&mut self, from: Type, to: Type, arg: &Expr, fx: &mut FnCx) -> Reg {
        let r = self.expr(arg, fx);
        let d = fx.temp();
        if from == to && !self.store.is_nullable(from) {
            fx.code.push(Instr::ConstI(d, 1));
            return d;
        }
        if from == to {
            fx.code.push(Instr::IsNull(d, r));
            fx.code.push(Instr::Not(d, d));
            return d;
        }
        let fk = self.store.kind(from).clone();
        let tk = self.store.kind(to).clone();
        match (fk, tk) {
            (TypeKind::Class(..), TypeKind::Class(c2, _)) => {
                let vc = &self.program.classes[c2.index()];
                let (lo, hi) = (vc.pre, vc.max_desc);
                fx.code.push(Instr::ClassQuery { dst: d, obj: r, lo, hi });
            }
            (TypeKind::Function(..), TypeKind::Function(..)) => {
                let t = self.clos_test(to);
                fx.code.push(Instr::ClosQuery { dst: d, clos: r, test: t });
            }
            _ => {
                fx.code.push(Instr::ConstI(d, 0));
            }
        }
        d
    }
}

struct LoopCx {
    start: usize,
    breaks: Vec<usize>,
}

/// Per-function lowering context.
struct FnCx {
    code: Vec<Instr>,
    /// For each IR local: (base register, width).
    local_regs: Vec<(Reg, usize)>,
    /// For each IR local: whether its default is null.
    local_nullable: Vec<bool>,
    /// First temp register.
    frame_base: usize,
    next_temp: usize,
    max_reg: usize,
    loops: Vec<LoopCx>,
}

impl FnCx {
    fn new(m: &vgl_ir::Method, store: &TypeStore) -> FnCx {
        let mut local_regs = Vec::with_capacity(m.locals.len());
        let mut local_nullable = Vec::with_capacity(m.locals.len());
        let mut next = 0usize;
        for l in &m.locals {
            let width = match store.kind(l.ty) {
                TypeKind::Tuple(es) => es.len(),
                TypeKind::Void => 1, // keep a slot for simplicity
                _ => 1,
            };
            local_regs.push((next as Reg, width));
            local_nullable.push(store.is_nullable(l.ty));
            next += width;
        }
        FnCx {
            code: Vec::new(),
            local_regs,
            local_nullable,
            frame_base: next,
            next_temp: next,
            max_reg: next,
            loops: Vec::new(),
        }
    }

    fn temp(&mut self) -> Reg {
        let r = self.next_temp;
        self.next_temp += 1;
        self.max_reg = self.max_reg.max(self.next_temp);
        r as Reg
    }

    fn reset_temps(&mut self) {
        self.next_temp = self.frame_base;
    }

    fn emit_placeholder(&mut self) -> usize {
        let at = self.code.len();
        self.code.push(Instr::Jump(0));
        at
    }

    fn patch(&mut self, at: usize, instr: Instr) {
        self.code[at] = instr;
    }
}
