//! The bytecode back-end optimizer: peephole cleanup + superinstruction
//! fusion over lowered register code.
//!
//! The paper's §4 position is that each monomorphic version can be
//! "optimized independently" once the harmonizing front-end features have
//! been compiled away — by monomorphization (§4.3) and tuple normalization
//! (§4.2) the bytecode is a flat scalar register program, so classic
//! kernel-level VM optimizations (Ertl & Gregg's superinstructions, Hölzle's
//! inline caches) apply directly. This pass is that back end:
//!
//! 1. **copy propagation** (per basic block) rewrites uses of `Mov` targets
//!    to their sources;
//! 2. **def–mov coalescing** redirects a pure producer straight into the
//!    register its value was about to be moved to;
//! 3. **dead-register elimination** drops side-effect-free writes whose
//!    destination is not live afterwards (a per-function backward liveness
//!    analysis — register-count reuse by the lowerer makes anything coarser
//!    nearly useless);
//! 4. **superinstruction fusion** collapses hot adjacent pairs:
//!    `ConstI`+`Bin` → [`Instr::BinI`], compare+branch → [`Instr::CmpBr`] /
//!    [`Instr::CmpBrI`], equality/null-test+branch → [`Instr::EqBr`] /
//!    [`Instr::NullBr`], `Not`+branch → inverted branch, `FieldGet`+`Ret` →
//!    [`Instr::FieldGetRet`], `r ← r + imm` → [`Instr::IncLocal`], and the
//!    global-accumulator idiom `GlobalGet`+`Bin` → [`Instr::GlobalBin`],
//!    then +`GlobalSet` → [`Instr::GlobalAccum`] (`g = g ⊕ x` in one step).
//!
//! The pass preserves the structural invariant that matters to the paper's
//! evaluation: **no instruction that can implicitly heap-allocate is ever
//! introduced or removed** — [`fuse`] asserts the multiset of allocating
//! instructions is unchanged, and [`check_fused`] re-validates the whole
//! program (register bounds, branch targets, IC sites, terminators,
//! alloc-opcode set) in the same `Violation`-list form as `vgl_ir`'s
//! validators.

use crate::bytecode::*;
use std::collections::HashSet;
use vgl_ir::Violation;

/// What the fusion pass did, per rewrite kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Uses rewritten by copy propagation.
    pub copies_propagated: usize,
    /// Pure producers redirected into a `Mov` destination.
    pub movs_coalesced: usize,
    /// Dead pure writes removed.
    pub dead_removed: usize,
    /// `ConstI`+`Bin` pairs fused into `BinI`.
    pub bin_imm_fused: usize,
    /// Compare+branch pairs fused (`CmpBr`, `CmpBrI`, `EqBr`, `NullBr`).
    pub cmp_br_fused: usize,
    /// `Not`+branch pairs folded into the inverted branch.
    pub not_br_folded: usize,
    /// `FieldGet`+`Ret` pairs fused.
    pub field_ret_fused: usize,
    /// `BinI(Add, r, r, imm)` rewritten to `IncLocal`.
    pub inc_local_fused: usize,
    /// Global-accumulator fusions (`GlobalGet`+`Bin` → `GlobalBin` and
    /// `GlobalBin`+`GlobalSet` → `GlobalAccum`).
    pub global_fused: usize,
    /// Instructions before the pass, summed over all functions.
    pub instrs_before: usize,
    /// Instructions after the pass.
    pub instrs_after: usize,
}

impl FuseStats {
    /// Total pair fusions performed.
    pub fn fused_total(&self) -> usize {
        self.bin_imm_fused
            + self.cmp_br_fused
            + self.not_br_folded
            + self.field_ret_fused
            + self.inc_local_fused
            + self.global_fused
    }

    /// Accumulates another run's counters (every field, instrs included).
    pub(crate) fn absorb(&mut self, st: &FuseStats) {
        self.copies_propagated += st.copies_propagated;
        self.movs_coalesced += st.movs_coalesced;
        self.dead_removed += st.dead_removed;
        self.bin_imm_fused += st.bin_imm_fused;
        self.cmp_br_fused += st.cmp_br_fused;
        self.not_br_folded += st.not_br_folded;
        self.field_ret_fused += st.field_ret_fused;
        self.inc_local_fused += st.inc_local_fused;
        self.global_fused += st.global_fused;
        self.instrs_before += st.instrs_before;
        self.instrs_after += st.instrs_after;
    }
}

/// Runs the optimizer over every function in place and refreshes the static
/// max-frame analysis ([`VmProgram::max_frame_regs`]).
///
/// # Panics
/// Debug-asserts that the multiset of allocating instructions is unchanged
/// (the §4.2 no-implicit-allocation invariant).
pub fn fuse(p: &mut VmProgram) -> FuseStats {
    fuse_jobs(p, 1, true).0
}

/// [`fuse_cfg`] at `(jobs, cache)` with chunked scheduling on.
pub fn fuse_jobs(
    p: &mut VmProgram,
    jobs: usize,
    cache: bool,
) -> (FuseStats, Vec<vgl_obs::WorkerSample>) {
    fuse_cfg(p, &vgl_passes::BackendConfig { jobs, cache, chunking: true })
}

/// Estimated fusion cost of one function, in the scheduler's abstract op
/// units: bytecode length dominates every sub-pass (liveness, peephole
/// scans), weighted by [`vgl_ir::metrics::pass_weight::FUSE`].
fn fuse_cost(f: &VmFunc) -> u64 {
    (1 + f.code.len() as u64) * vgl_ir::metrics::pass_weight::FUSE
}

/// [`fuse`] under a [`vgl_passes::BackendConfig`]: up to `cfg.jobs` worker
/// threads with an optional per-function dedup cache, scheduled in
/// cost-balanced chunks when `cfg.chunking` is set (one atomic claim per
/// [`vgl_passes::sched::plan_chunks`] chunk instead of per function).
/// Fusion is strictly function-local, so functions fan out across the pool
/// and the rewritten code is committed back in function-index order — the
/// result is bit-identical at any jobs count and either chunking mode.
///
/// With `cfg.cache` on, functions whose `(param_count, reg_count,
/// ret_count, code)` are equal to an earlier function's (duplicate
/// post-mono instances survive lowering verbatim, names aside) are fused
/// once: the representative's output is copied to each duplicate, which is
/// exactly what re-running the deterministic pass on the identical input
/// would produce. Grouping hashes candidates but deduplicates only on full
/// equality, first-seen in index order, so the grouping itself is
/// deterministic. The rewrite counters count performed work only;
/// `instrs_before`/`instrs_after` describe the whole program, duplicates
/// included. Also returns per-worker spans for `vgl-obs`.
pub fn fuse_cfg(
    p: &mut VmProgram,
    cfg: &vgl_passes::BackendConfig,
) -> (FuseStats, Vec<vgl_obs::WorkerSample>) {
    use std::collections::HashMap;
    use std::hash::{Hash, Hasher};

    let mut stats = FuseStats::default();
    let funcs = std::mem::take(&mut p.funcs);
    let n = funcs.len();
    let mut rep: Vec<usize> = (0..n).collect();
    if cfg.cache {
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
        let same = |a: &VmFunc, b: &VmFunc| {
            a.param_count == b.param_count
                && a.reg_count == b.reg_count
                && a.ret_count == b.ret_count
                && a.code == b.code
        };
        for (i, f) in funcs.iter().enumerate() {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            (f.param_count, f.reg_count, f.ret_count).hash(&mut h);
            f.code.hash(&mut h);
            let candidates = groups.entry(h.finish()).or_default();
            match candidates.iter().find(|&&j| same(&funcs[j], f)) {
                Some(&j) => rep[i] = j,
                None => candidates.push(i),
            }
        }
    }
    let items: Vec<usize> = (0..n).filter(|&i| rep[i] == i).collect();
    let run_item = |_: &mut (), _: usize, &i: &usize| {
        let mut f = funcs[i].clone();
        let mut st = FuseStats::default();
        st.instrs_before += f.code.len();
        let allocs_before = count_allocs(&f.code);
        let ref_stores_before = count_ref_stores(&f.code);
        fuse_func(&mut f, &mut st);
        debug_assert_eq!(
            allocs_before,
            count_allocs(&f.code),
            "fusion changed the allocating-instruction count in {}",
            f.name
        );
        debug_assert_eq!(
            ref_stores_before,
            count_ref_stores(&f.code),
            "fusion changed the barrier-carrying store count in {}",
            f.name
        );
        st.instrs_after += f.code.len();
        (f, st)
    };
    let (results, workers) = if cfg.chunking {
        let costs: Vec<u64> = items.iter().map(|&i| fuse_cost(&funcs[i])).collect();
        let plan = vgl_passes::sched::plan_chunks(&costs, cfg.jobs);
        vgl_passes::sched::par_map_chunks(cfg.jobs, "fuse", &items, &plan, || (), run_item)
    } else {
        vgl_passes::sched::par_map_ctx(cfg.jobs, "fuse", &items, || (), run_item)
    };
    let mut fused: Vec<Option<VmFunc>> = (0..n).map(|_| None).collect();
    for (&i, (f, st)) in items.iter().zip(results) {
        stats.absorb(&st);
        fused[i] = Some(f);
    }
    p.funcs = Vec::with_capacity(n);
    for (i, original) in funcs.into_iter().enumerate() {
        let f = if rep[i] == i {
            fused[i].take().expect("representative was fused")
        } else {
            // Representatives precede their duplicates, so the rep's fused
            // form is already committed.
            let r = &p.funcs[rep[i]];
            stats.instrs_before += original.code.len();
            stats.instrs_after += r.code.len();
            VmFunc { name: original.name, ..r.clone() }
        };
        p.funcs.push(f);
    }
    p.max_frame_regs = p.funcs.iter().map(|f| f.reg_count).max().unwrap_or(0);
    (stats, workers)
}

pub(crate) fn count_allocs(code: &[Instr]) -> usize {
    code.iter().filter(|i| i.allocates()).count()
}

pub(crate) fn count_ref_stores(code: &[Instr]) -> usize {
    code.iter().filter(|i| i.is_ref_store()).count()
}

pub(crate) fn fuse_func(f: &mut VmFunc, stats: &mut FuseStats) {
    copy_propagate(f, stats);
    // Iterate cleanup + fusion to a fixpoint: coalescing exposes dead
    // writes, `BinI` fusion exposes `CmpBrI`/`IncLocal` fusion, and so on.
    loop {
        let mut changed = eliminate_dead(f, stats);
        changed |= fuse_pairs(f, stats);
        if !changed {
            break;
        }
    }
}

// ---- use/def accounting ----------------------------------------------------

/// Calls `g` for every source-register operand of `i`.
fn for_each_use(i: &Instr, g: &mut impl FnMut(Reg)) {
    use Instr::*;
    match i {
        ConstI(..) | ConstNull(..) | ConstPool(..) | Jump(..) | GlobalGet { .. }
        | NewObject { .. } | Trap(..) => {}
        Mov(_, s) | Neg(_, s) | Not(_, s) | IsNull(_, s) | IntToByte { src: s, .. } => g(*s),
        Bin(_, _, a, b) | EqRR(_, a, b) | EqClos(_, a, b) => {
            g(*a);
            g(*b);
        }
        BrFalse(c, _) | BrTrue(c, _) => g(*c),
        Call { args, .. } => args.iter().for_each(|&r| g(r)),
        CallVirt { args, .. } => args.iter().for_each(|&r| g(r)),
        CallClos { clos, args, .. } => {
            g(*clos);
            args.iter().for_each(|&r| g(r));
        }
        CallBuiltin { args, .. } => args.iter().for_each(|&r| g(r)),
        MakeClos { recv, .. } => {
            if let Some(r) = recv {
                g(*r);
            }
        }
        MakeClosVirt { recv, .. } => g(*recv),
        NewArray { len, .. } => g(*len),
        ArrayLit { elems, .. } => elems.iter().for_each(|&r| g(r)),
        ArrayLen { arr, .. } => g(*arr),
        ArrayGet { arr, idx, .. } => {
            g(*arr);
            g(*idx);
        }
        ArraySet { arr, idx, val } | ArraySetRef { arr, idx, val } => {
            g(*arr);
            g(*idx);
            g(*val);
        }
        FieldGet { obj, .. } => g(*obj),
        FieldSet { obj, val, .. } | FieldSetRef { obj, val, .. } => {
            g(*obj);
            g(*val);
        }
        GlobalSet { src, .. } => g(*src),
        ClassQuery { obj, .. } => g(*obj),
        ClassCast { obj, .. } => g(*obj),
        ClosQuery { clos, .. } => g(*clos),
        ClosCast { clos, .. } => g(*clos),
        CheckNull(r) => g(*r),
        Ret(rs) => rs.iter().for_each(|&r| g(r)),
        CallGuard { args, .. } | CallInline { args, .. } => args.iter().for_each(|&r| g(r)),
        BinI { a, .. } => g(*a),
        IncLocal { r, .. } => g(*r),
        CmpBr { a, b, .. } => {
            g(*a);
            g(*b);
        }
        CmpBrI { a, .. } => g(*a),
        EqBr { a, b, .. } => {
            g(*a);
            g(*b);
        }
        NullBr { v, .. } => g(*v),
        FieldGetRet { obj, .. } => g(*obj),
        GlobalBin { b, .. } | GlobalAccum { b, .. } => g(*b),
    }
}

/// Rewrites every source-register operand of `i` through `g`.
fn map_uses(i: &mut Instr, g: &mut impl FnMut(Reg) -> Reg) {
    use Instr::*;
    match i {
        ConstI(..) | ConstNull(..) | ConstPool(..) | Jump(..) | GlobalGet { .. }
        | NewObject { .. } | Trap(..) => {}
        Mov(_, s) | Neg(_, s) | Not(_, s) | IsNull(_, s) | IntToByte { src: s, .. } => {
            *s = g(*s)
        }
        Bin(_, _, a, b) | EqRR(_, a, b) | EqClos(_, a, b) => {
            *a = g(*a);
            *b = g(*b);
        }
        BrFalse(c, _) | BrTrue(c, _) => *c = g(*c),
        Call { args, .. } | CallVirt { args, .. } | CallBuiltin { args, .. } => {
            args.iter_mut().for_each(|r| *r = g(*r))
        }
        CallClos { clos, args, .. } => {
            *clos = g(*clos);
            args.iter_mut().for_each(|r| *r = g(*r));
        }
        MakeClos { recv, .. } => {
            if let Some(r) = recv {
                *r = g(*r);
            }
        }
        MakeClosVirt { recv, .. } => *recv = g(*recv),
        NewArray { len, .. } => *len = g(*len),
        ArrayLit { elems, .. } => elems.iter_mut().for_each(|r| *r = g(*r)),
        ArrayLen { arr, .. } => *arr = g(*arr),
        ArrayGet { arr, idx, .. } => {
            *arr = g(*arr);
            *idx = g(*idx);
        }
        ArraySet { arr, idx, val } | ArraySetRef { arr, idx, val } => {
            *arr = g(*arr);
            *idx = g(*idx);
            *val = g(*val);
        }
        FieldGet { obj, .. } => *obj = g(*obj),
        FieldSet { obj, val, .. } | FieldSetRef { obj, val, .. } => {
            *obj = g(*obj);
            *val = g(*val);
        }
        GlobalSet { src, .. } => *src = g(*src),
        ClassQuery { obj, .. } | ClassCast { obj, .. } => *obj = g(*obj),
        ClosQuery { clos, .. } | ClosCast { clos, .. } => *clos = g(*clos),
        CheckNull(r) => *r = g(*r),
        Ret(rs) => rs.iter_mut().for_each(|r| *r = g(*r)),
        CallGuard { args, .. } | CallInline { args, .. } => {
            args.iter_mut().for_each(|r| *r = g(*r))
        }
        BinI { a, .. } => *a = g(*a),
        IncLocal { r, .. } => *r = g(*r),
        CmpBr { a, b, .. } | EqBr { a, b, .. } => {
            *a = g(*a);
            *b = g(*b);
        }
        CmpBrI { a, .. } => *a = g(*a),
        NullBr { v, .. } => *v = g(*v),
        FieldGetRet { obj, .. } => *obj = g(*obj),
        GlobalBin { b, .. } | GlobalAccum { b, .. } => *b = g(*b),
    }
}

/// Calls `g` for every register `i` writes.
fn for_each_def(i: &Instr, g: &mut impl FnMut(Reg)) {
    use Instr::*;
    match i {
        ConstI(d, _) | ConstNull(d) | ConstPool(d, _) | Mov(d, _) | Neg(d, _) | Not(d, _)
        | EqRR(d, ..) | EqClos(d, ..) | IsNull(d, _) => g(*d),
        Bin(_, d, ..) => g(*d),
        Call { rets, .. } | CallVirt { rets, .. } | CallClos { rets, .. }
        | CallBuiltin { rets, .. } | CallGuard { rets, .. } | CallInline { rets, .. } => {
            rets.iter().for_each(|&r| g(r))
        }
        MakeClos { dst, .. } | MakeClosVirt { dst, .. } | NewObject { dst, .. }
        | NewArray { dst, .. } | ArrayLit { dst, .. } | ArrayLen { dst, .. }
        | ArrayGet { dst, .. } | FieldGet { dst, .. } | GlobalGet { dst, .. }
        | ClassQuery { dst, .. } | ClosQuery { dst, .. } | IntToByte { dst, .. } => g(*dst),
        BinI { dst, .. } | GlobalBin { dst, .. } => g(*dst),
        IncLocal { r, .. } => g(*r),
        Jump(..) | BrFalse(..) | BrTrue(..) | ArraySet { .. } | ArraySetRef { .. }
        | FieldSet { .. } | FieldSetRef { .. } | GlobalSet { .. } | ClassCast { .. }
        | ClosCast { .. } | CheckNull(..) | Ret(..) | Trap(..) | CmpBr { .. }
        | CmpBrI { .. } | EqBr { .. } | NullBr { .. } | FieldGetRet { .. }
        | GlobalAccum { .. } => {}
    }
}

/// The relative branch offset carried by `i`, if any.
fn branch_off(i: &Instr) -> Option<i32> {
    match i {
        Instr::Jump(off)
        | Instr::BrFalse(_, off)
        | Instr::BrTrue(_, off)
        | Instr::CmpBr { off, .. }
        | Instr::CmpBrI { off, .. }
        | Instr::EqBr { off, .. }
        | Instr::NullBr { off, .. } => Some(*off),
        _ => None,
    }
}

fn set_branch_off(i: &mut Instr, new_off: i32) {
    match i {
        Instr::Jump(off)
        | Instr::BrFalse(_, off)
        | Instr::BrTrue(_, off)
        | Instr::CmpBr { off, .. }
        | Instr::CmpBrI { off, .. }
        | Instr::EqBr { off, .. }
        | Instr::NullBr { off, .. } => *off = new_off,
        _ => unreachable!("set_branch_off on non-branch"),
    }
}

/// Whether `i` may transfer control (ends a basic block).
fn is_control(i: &Instr) -> bool {
    branch_off(i).is_some()
        || matches!(i, Instr::Ret(..) | Instr::Trap(..) | Instr::FieldGetRet { .. })
}

/// Pure producers: no side effect, no trap, exactly one scalar destination.
/// (`Div`/`Mod` trap; loads from objects/arrays null-check; allocating
/// instructions are excluded so the alloc multiset is untouchable.)
fn pure_def(i: &Instr) -> Option<Reg> {
    use Instr::*;
    match i {
        ConstI(d, _) | ConstNull(d) | Mov(d, _) | Neg(d, _) | Not(d, _) | EqRR(d, ..)
        | EqClos(d, ..) | IsNull(d, _) => Some(*d),
        Bin(k, d, ..) | BinI { k, dst: d, .. } | GlobalBin { k, dst: d, .. }
            if !matches!(k, BinKind::Div | BinKind::Mod) =>
        {
            Some(*d)
        }
        GlobalGet { dst, .. } | ClassQuery { dst, .. } | ClosQuery { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Producers whose destination may be redirected by def–mov coalescing: one
/// destination, written strictly after all operands are read. Trapping
/// loads/conversions qualify (the trap fires before any write either way);
/// allocating instructions are excluded.
fn coalescable_def(i: &Instr) -> Option<Reg> {
    use Instr::*;
    match i {
        ConstI(d, _) | ConstNull(d) | Mov(d, _) | Neg(d, _) | Not(d, _) | EqRR(d, ..)
        | EqClos(d, ..) | IsNull(d, _) | Bin(_, d, ..) => Some(*d),
        BinI { dst, .. }
        | GlobalBin { dst, .. }
        | GlobalGet { dst, .. }
        | ClassQuery { dst, .. }
        | ClosQuery { dst, .. }
        | FieldGet { dst, .. }
        | ArrayGet { dst, .. }
        | ArrayLen { dst, .. }
        | IntToByte { dst, .. } => Some(*dst),
        _ => None,
    }
}

fn set_def(i: &mut Instr, new_dst: Reg) {
    use Instr::*;
    match i {
        ConstI(d, _) | ConstNull(d) | Mov(d, _) | Neg(d, _) | Not(d, _) | EqRR(d, ..)
        | EqClos(d, ..) | IsNull(d, _) | Bin(_, d, ..) => *d = new_dst,
        BinI { dst, .. }
        | GlobalBin { dst, .. }
        | GlobalGet { dst, .. }
        | ClassQuery { dst, .. }
        | ClosQuery { dst, .. }
        | FieldGet { dst, .. }
        | ArrayGet { dst, .. }
        | ArrayLen { dst, .. }
        | IntToByte { dst, .. } => *dst = new_dst,
        _ => unreachable!("set_def on instruction without a redirectable destination"),
    }
}

/// All branch-target pcs in `code`.
fn jump_targets(code: &[Instr]) -> HashSet<usize> {
    let mut t = HashSet::new();
    for (pc, i) in code.iter().enumerate() {
        if let Some(off) = branch_off(i) {
            t.insert((pc as i64 + off as i64) as usize);
        }
    }
    t
}

// ---- liveness --------------------------------------------------------------

/// Per-pc live-out register sets, by backward iterative dataflow over the
/// instruction-level CFG. `live_out(pc, r)` answers "may `r` be read after
/// `pc` executes, before being redefined, on some path?" — the exact
/// condition under which a definition of `r` reaching `pc` must be kept.
///
/// The lowerer reuses a small pool of temp registers for every expression,
/// so read counts over the whole function are always saturated; only
/// liveness can see that a temp dies at the instruction that consumes it.
struct Liveness {
    words: usize,
    out: Vec<u64>,
}

impl Liveness {
    fn compute(f: &VmFunc) -> Liveness {
        let n = f.code.len();
        let words = (f.reg_count / 64 + 1).max(1);
        let mut uses = vec![0u64; n * words];
        let mut defs = vec![0u64; n * words];
        let bit = |v: &mut [u64], pc: usize, r: Reg| {
            v[pc * words + (r as usize >> 6)] |= 1u64 << (r as usize & 63)
        };
        for (pc, i) in f.code.iter().enumerate() {
            for_each_use(i, &mut |r| bit(&mut uses, pc, r));
            for_each_def(i, &mut |r| bit(&mut defs, pc, r));
        }
        let succs = |pc: usize| -> (Option<usize>, Option<usize>) {
            let i = &f.code[pc];
            match i {
                Instr::Ret(..) | Instr::Trap(..) | Instr::FieldGetRet { .. } => (None, None),
                Instr::Jump(off) => (Some((pc as i64 + *off as i64) as usize), None),
                _ => match branch_off(i) {
                    Some(off) => (
                        (pc + 1 < n).then_some(pc + 1),
                        Some((pc as i64 + off as i64) as usize),
                    ),
                    None => ((pc + 1 < n).then_some(pc + 1), None),
                },
            }
        };
        let mut out = vec![0u64; n * words];
        let mut inn = vec![0u64; n * words];
        loop {
            let mut changed = false;
            for pc in (0..n).rev() {
                let (s1, s2) = succs(pc);
                for w in 0..words {
                    let mut o = 0u64;
                    if let Some(s) = s1 {
                        o |= inn[s * words + w];
                    }
                    if let Some(s) = s2 {
                        o |= inn[s * words + w];
                    }
                    let i_new = uses[pc * words + w] | (o & !defs[pc * words + w]);
                    if out[pc * words + w] != o || inn[pc * words + w] != i_new {
                        out[pc * words + w] = o;
                        inn[pc * words + w] = i_new;
                        changed = true;
                    }
                }
            }
            if !changed {
                return Liveness { words, out };
            }
        }
    }

    fn live_out(&self, pc: usize, r: Reg) -> bool {
        self.out[pc * self.words + (r as usize >> 6)] >> (r as usize & 63) & 1 == 1
    }
}

// ---- copy propagation ------------------------------------------------------

/// Forward-propagates `Mov(d, s)` within each basic block: later uses of `d`
/// read `s` directly until either register is redefined.
fn copy_propagate(f: &mut VmFunc, stats: &mut FuseStats) {
    let targets = jump_targets(&f.code);
    // copy_of[d] = Some(s) means "d currently holds a copy of s".
    let mut copy_of: Vec<Option<Reg>> = vec![None; f.reg_count.max(1)];
    for (pc, i) in f.code.iter_mut().enumerate() {
        if targets.contains(&pc) {
            copy_of.iter_mut().for_each(|c| *c = None);
        }
        map_uses(i, &mut |r| {
            if let Some(s) = copy_of[r as usize] {
                stats.copies_propagated += 1;
                s
            } else {
                r
            }
        });
        // Record/invalidate copies through this instruction's writes.
        let mut defs: Vec<Reg> = Vec::new();
        for_each_def(i, &mut |d| defs.push(d));
        for &d in &defs {
            copy_of[d as usize] = None;
            for c in copy_of.iter_mut() {
                if *c == Some(d) {
                    *c = None;
                }
            }
        }
        if let Instr::Mov(d, s) = *i {
            if d != s {
                copy_of[d as usize] = Some(s);
            }
        }
        if is_control(i) {
            copy_of.iter_mut().for_each(|c| *c = None);
        }
    }
}

// ---- rebuild (instruction removal with branch remapping) -------------------

#[derive(Clone)]
enum Action {
    Keep,
    /// Delete this (pure, unread) instruction.
    Drop,
    /// Rewrite this instruction in place.
    Replace(Instr),
    /// Replace this instruction *and the next* with one fused instruction.
    /// Branch offsets inside the fused instruction must already be expressed
    /// relative to this (the first) pc.
    Fuse(Instr),
}

/// Applies `plan`, recomputing every branch offset. Branches into a removed
/// pure instruction fall through to the next kept one; branches into the
/// second element of a fused pair are the planner's responsibility to avoid.
/// Returns the new→old pc map (each new pc's originating old pc) — the
/// tiered re-fuse pass composes these across rounds into the deopt-pc map
/// its guards carry.
fn rebuild(f: &mut VmFunc, plan: &[Action]) -> Vec<usize> {
    let n = f.code.len();
    let mut new_code: Vec<Instr> = Vec::with_capacity(n);
    let mut old_of_new: Vec<usize> = Vec::with_capacity(n);
    let mut new_of_old: Vec<usize> = vec![usize::MAX; n + 1];
    let mut pc = 0;
    while pc < n {
        match &plan[pc] {
            Action::Keep => {
                new_of_old[pc] = new_code.len();
                old_of_new.push(pc);
                new_code.push(f.code[pc].clone());
                pc += 1;
            }
            Action::Drop => {
                pc += 1;
            }
            Action::Replace(i) => {
                new_of_old[pc] = new_code.len();
                old_of_new.push(pc);
                new_code.push(i.clone());
                pc += 1;
            }
            Action::Fuse(i) => {
                new_of_old[pc] = new_code.len();
                old_of_new.push(pc);
                new_code.push(i.clone());
                pc += 2;
            }
        }
    }
    new_of_old[n] = new_code.len();
    for i in (0..n).rev() {
        if new_of_old[i] == usize::MAX {
            new_of_old[i] = new_of_old[i + 1];
        }
    }
    for (ni, instr) in new_code.iter_mut().enumerate() {
        if let Some(off) = branch_off(instr) {
            let old_pc = old_of_new[ni];
            let old_target = (old_pc as i64 + off as i64) as usize;
            let new_target = new_of_old[old_target];
            set_branch_off(instr, new_target as i32 - ni as i32);
        }
    }
    f.code = new_code;
    old_of_new
}

// ---- dead-register elimination --------------------------------------------

/// Removes pure writes whose destination is not live afterwards. Returns
/// whether anything changed.
fn eliminate_dead(f: &mut VmFunc, stats: &mut FuseStats) -> bool {
    let mut changed_any = false;
    loop {
        let live = Liveness::compute(f);
        let mut plan = vec![Action::Keep; f.code.len()];
        let mut changed = false;
        for (pc, i) in f.code.iter().enumerate() {
            if let Some(d) = pure_def(i) {
                if !live.live_out(pc, d) {
                    plan[pc] = Action::Drop;
                    changed = true;
                }
            }
        }
        if !changed {
            return changed_any;
        }
        stats.dead_removed += plan.iter().filter(|a| matches!(a, Action::Drop)).count();
        rebuild(f, &plan);
        changed_any = true;
    }
}

// ---- fusion ----------------------------------------------------------------

fn cmp_kind(k: BinKind) -> bool {
    matches!(k, BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge)
}

/// Mirrors a comparison so its operands can swap sides: `c < x` ⇔ `x > c`.
fn swap_cmp(k: BinKind) -> BinKind {
    match k {
        BinKind::Lt => BinKind::Gt,
        BinKind::Le => BinKind::Ge,
        BinKind::Gt => BinKind::Lt,
        BinKind::Ge => BinKind::Le,
        other => other,
    }
}

fn commutes(k: BinKind) -> bool {
    matches!(
        k,
        BinKind::Add | BinKind::Mul | BinKind::And | BinKind::Or | BinKind::Xor
    )
}

/// One left-to-right scan fusing adjacent pairs. Returns whether anything
/// changed.
fn fuse_pairs(f: &mut VmFunc, stats: &mut FuseStats) -> bool {
    fuse_pairs_gated(f, stats, &|_, _| true).is_some()
}

/// [`fuse_pairs`] with a pattern gate: a rewrite is attempted only when
/// `gate` accepts the constituent instruction(s) — the tiered pass feeds the
/// function's own dynamic opcode histogram here so only patterns whose
/// opcodes are actually hot get fused. Returns the new→old pc map when
/// anything changed.
fn fuse_pairs_gated(
    f: &mut VmFunc,
    stats: &mut FuseStats,
    gate: &dyn Fn(&Instr, &Instr) -> bool,
) -> Option<Vec<usize>> {
    let targets = jump_targets(&f.code);
    let live = Liveness::compute(f);
    // Fusing deletes the first instruction's definition of the temp `r`;
    // that is sound exactly when `r` is dead after the pair — not live out
    // of the second instruction (which covers a branch's taken path too),
    // or redefined by the second instruction itself.
    let temp_dies = |r: Reg, pc: usize| {
        let mut redefined = false;
        for_each_def(&f.code[pc + 1], &mut |d| redefined |= d == r);
        redefined || !live.live_out(pc + 1, r)
    };
    let n = f.code.len();
    let mut plan = vec![Action::Keep; n];
    let mut changed = false;
    let mut pc = 0;
    while pc < n {
        // Single-instruction rewrite: BinI(Add, r, r, imm) → IncLocal.
        if let Instr::BinI { k: BinKind::Add, dst, a, imm } = f.code[pc] {
            if dst == a && gate(&f.code[pc], &f.code[pc]) {
                plan[pc] = Action::Replace(Instr::IncLocal { r: dst, imm });
                stats.inc_local_fused += 1;
                changed = true;
                pc += 1;
                continue;
            }
        }
        if pc + 1 >= n || targets.contains(&(pc + 1)) {
            pc += 1;
            continue;
        }
        let (first, second) = (&f.code[pc], &f.code[pc + 1]);
        if !gate(first, second) {
            pc += 1;
            continue;
        }
        // Branch offsets are relative to the branch (the second element);
        // the fused instruction sits at the first element's pc.
        let refit = |off: i32| off + 1;
        let fused: Option<(Instr, &mut usize)> = match (first, second) {
            // ConstI + Bin → BinI (constant on either side).
            (&Instr::ConstI(t, v), &Instr::Bin(k, d, a, b)) => {
                match i32::try_from(v) {
                    Ok(imm) if b == t && a != t && temp_dies(t, pc) => Some((
                        Instr::BinI { k, dst: d, a, imm },
                        &mut stats.bin_imm_fused,
                    )),
                    Ok(imm)
                        if a == t
                            && b != t
                            && (commutes(k) || cmp_kind(k))
                            && temp_dies(t, pc) =>
                    {
                        Some((
                            Instr::BinI { k: swap_cmp(k), dst: d, a: b, imm },
                            &mut stats.bin_imm_fused,
                        ))
                    }
                    _ => None,
                }
            }
            // GlobalGet + Bin → GlobalBin (global on either side).
            (&Instr::GlobalGet { dst: t, g }, &Instr::Bin(k, d, a, b)) => {
                if a == t && b != t && temp_dies(t, pc) {
                    Some((Instr::GlobalBin { k, dst: d, g, b }, &mut stats.global_fused))
                } else if b == t && a != t && (commutes(k) || cmp_kind(k)) && temp_dies(t, pc) {
                    Some((
                        Instr::GlobalBin { k: swap_cmp(k), dst: d, g, b: a },
                        &mut stats.global_fused,
                    ))
                } else {
                    None
                }
            }
            // GlobalBin + GlobalSet of the same global → GlobalAccum
            // (`g = g ⊕ x`). Sound even when `b` aliases the dying temp:
            // the fused read of `b` sees the same pre-pair value.
            (&Instr::GlobalBin { k, dst: t, g, b }, &Instr::GlobalSet { g: g2, src })
                if src == t && g2 == g && temp_dies(t, pc) =>
            {
                Some((Instr::GlobalAccum { k, g, b }, &mut stats.global_fused))
            }
            // ConstNull + EqRR → IsNull.
            (&Instr::ConstNull(t), &Instr::EqRR(d, a, b))
                if (b == t && a != t || a == t && b != t) && temp_dies(t, pc) =>
            {
                let v = if b == t { a } else { b };
                Some((Instr::IsNull(d, v), &mut stats.bin_imm_fused))
            }
            // Not + branch → inverted branch on the original condition.
            (&Instr::Not(d, s), &Instr::BrFalse(c, off)) if c == d && temp_dies(d, pc) => {
                Some((Instr::BrTrue(s, refit(off)), &mut stats.not_br_folded))
            }
            (&Instr::Not(d, s), &Instr::BrTrue(c, off)) if c == d && temp_dies(d, pc) => {
                Some((Instr::BrFalse(s, refit(off)), &mut stats.not_br_folded))
            }
            // compare + branch → CmpBr.
            (&Instr::Bin(k, d, a, b), &Instr::BrFalse(c, off))
                if cmp_kind(k) && c == d && temp_dies(d, pc) =>
            {
                Some((
                    Instr::CmpBr { k, a, b, off: refit(off), expect: false },
                    &mut stats.cmp_br_fused,
                ))
            }
            (&Instr::Bin(k, d, a, b), &Instr::BrTrue(c, off))
                if cmp_kind(k) && c == d && temp_dies(d, pc) =>
            {
                Some((
                    Instr::CmpBr { k, a, b, off: refit(off), expect: true },
                    &mut stats.cmp_br_fused,
                ))
            }
            // compare-immediate + branch → CmpBrI.
            (&Instr::BinI { k, dst, a, imm }, &Instr::BrFalse(c, off))
                if cmp_kind(k) && c == dst && temp_dies(dst, pc) =>
            {
                Some((
                    Instr::CmpBrI { k, a, imm, off: refit(off), expect: false },
                    &mut stats.cmp_br_fused,
                ))
            }
            (&Instr::BinI { k, dst, a, imm }, &Instr::BrTrue(c, off))
                if cmp_kind(k) && c == dst && temp_dies(dst, pc) =>
            {
                Some((
                    Instr::CmpBrI { k, a, imm, off: refit(off), expect: true },
                    &mut stats.cmp_br_fused,
                ))
            }
            // word equality + branch → EqBr.
            (&Instr::EqRR(d, a, b), &Instr::BrFalse(c, off))
                if c == d && temp_dies(d, pc) =>
            {
                Some((
                    Instr::EqBr { a, b, off: refit(off), expect: false },
                    &mut stats.cmp_br_fused,
                ))
            }
            (&Instr::EqRR(d, a, b), &Instr::BrTrue(c, off)) if c == d && temp_dies(d, pc) => {
                Some((
                    Instr::EqBr { a, b, off: refit(off), expect: true },
                    &mut stats.cmp_br_fused,
                ))
            }
            // null test + branch → NullBr.
            (&Instr::IsNull(d, v), &Instr::BrFalse(c, off)) if c == d && temp_dies(d, pc) => {
                Some((
                    Instr::NullBr { v, off: refit(off), expect: false },
                    &mut stats.cmp_br_fused,
                ))
            }
            (&Instr::IsNull(d, v), &Instr::BrTrue(c, off)) if c == d && temp_dies(d, pc) => {
                Some((
                    Instr::NullBr { v, off: refit(off), expect: true },
                    &mut stats.cmp_br_fused,
                ))
            }
            // field load + return → FieldGetRet.
            (&Instr::FieldGet { dst, obj, slot }, Instr::Ret(rs))
                if rs.len() == 1 && rs[0] == dst && obj != dst && temp_dies(dst, pc) =>
            {
                Some((Instr::FieldGetRet { obj, slot }, &mut stats.field_ret_fused))
            }
            // def + Mov → def into the Mov's destination (coalescing).
            (a, &Instr::Mov(x, t)) => match coalescable_def(a) {
                Some(d) if d == t && x != t && temp_dies(t, pc) => {
                    let mut redirected = a.clone();
                    set_def(&mut redirected, x);
                    Some((redirected, &mut stats.movs_coalesced))
                }
                _ => None,
            },
            _ => None,
        };
        if let Some((instr, counter)) = fused {
            *counter += 1;
            plan[pc] = Action::Fuse(instr);
            changed = true;
            pc += 2;
        } else {
            pc += 1;
        }
    }
    if changed {
        Some(rebuild(f, &plan))
    } else {
        None
    }
}

// ---- tiered re-fuse (profile-parameterized) --------------------------------

/// The runtime feedback that parameterizes one function's tiered re-fuse:
/// the VM snapshots its inline caches and the function's own dynamic opcode
/// histogram at tier-up and hands them here.
pub struct TierFeedback<'a> {
    /// Per-site speculation decision: `Some((expected class, callee))` when
    /// the site's cache stayed monomorphic and stable enough to
    /// devirtualize; `None` keeps the `CallVirt`.
    pub spec: &'a dyn Fn(u32) -> Option<(u32, FuncId)>,
    /// This function's dynamic per-opcode retired counts.
    pub hist: &'a [u32; OPCODE_COUNT],
    /// A fusion pattern is applied only when every constituent opcode
    /// retired at least this many times in this function.
    pub hot_min: u32,
}

/// One function's hot-tier body: profile-selected superinstructions plus
/// IC-feedback devirtualization, with the deopt-pc map back to the baseline
/// body the guards transfer to on failure.
#[derive(Clone, Debug)]
pub struct TieredBody {
    /// The re-fused code, executed in place of the baseline body.
    pub code: Vec<Instr>,
    /// `orig_of[pc]`: the baseline-body pc each tiered instruction
    /// originates from (the first of a fused pair).
    pub orig_of: Vec<u32>,
    /// Speculative [`Instr::CallGuard`] sites emitted.
    pub guards: usize,
    /// Speculative [`Instr::CallInline`] sites emitted.
    pub inlines: usize,
    /// Pair fusions performed (profile-gated).
    pub fused: usize,
}

/// Re-fuses one function using its own runtime profile — the tier-up pass.
///
/// Deliberately *narrower* than the static `fuse_func` pipeline: it runs
/// only the pair-fusion scan (profile-gated), never copy propagation or
/// dead-code elimination. Pair fusion elides exactly one register write per
/// rewrite, and only when that register is dead after the pair — so at
/// every surviving instruction boundary the tiered frame holds values
/// identical to the baseline frame for every register the baseline may
/// still read. That is the invariant that makes deoptimization a plain pc
/// transfer: a failing guard resumes the *unfused* body at
/// [`TieredBody::orig_of`]`[pc]` with the frame as-is.
pub fn tier_fuse_func(p: &VmProgram, func: FuncId, fb: &TierFeedback<'_>) -> TieredBody {
    let mut f = p.funcs[func as usize].clone();
    let allocs_before = count_allocs(&f.code);
    let ref_stores_before = count_ref_stores(&f.code);
    let mut orig_of: Vec<u32> = (0..f.code.len() as u32).collect();
    let mut stats = FuseStats::default();
    // Superinstructions only exist here because a previous gated round
    // built them from hot constituents, so they stay eligible — otherwise
    // chained patterns (e.g. Bin+Const → BinI, then BinI+Br → CmpBrI) would
    // never form: fusion-produced opcodes have no baseline histogram entry.
    let hot = |i: &Instr| i.is_super() || fb.hist[i.opcode()] >= fb.hot_min;
    let gate = |a: &Instr, b: &Instr| hot(a) && hot(b);
    while let Some(old_of_new) = fuse_pairs_gated(&mut f, &mut stats, &gate) {
        orig_of = old_of_new.iter().map(|&o| orig_of[o]).collect();
    }
    let mut guards = 0;
    let mut inlines = 0;
    for (pc, i) in f.code.iter_mut().enumerate() {
        let Instr::CallVirt { site, args, rets, .. } = i else { continue };
        let Some((class, callee)) = (fb.spec)(*site) else { continue };
        let deopt_pc = orig_of[pc];
        let (site, args, rets) = (*site, std::mem::take(args), std::mem::take(rets));
        *i = match inline_op(p, callee, args.len()) {
            Some(op) => {
                inlines += 1;
                Instr::CallInline { class, site, deopt_pc, op, args, rets }
            }
            None => {
                guards += 1;
                Instr::CallGuard { class, func: callee, site, deopt_pc, args, rets }
            }
        };
    }
    debug_assert_eq!(
        allocs_before,
        count_allocs(&f.code),
        "tiered re-fusion changed the allocating-instruction count in {}",
        f.name
    );
    debug_assert_eq!(
        ref_stores_before,
        count_ref_stores(&f.code),
        "tiered re-fusion changed the barrier-carrying store count in {}",
        f.name
    );
    TieredBody { code: f.code, orig_of, guards, inlines, fused: stats.fused_total() }
}

/// Whether `callee`'s body is a one-instruction leaf reducible to an
/// [`InlOp`] at a call site with `argc` arguments. Parameters occupy
/// registers `0..param_count`, so operand registers below `param_count`
/// name argument positions directly. Trapping arithmetic (`Div`/`Mod`) is
/// never inlined; the field accessor keeps its null check at execution.
fn inline_op(p: &VmProgram, callee: FuncId, argc: usize) -> Option<InlOp> {
    let f = p.funcs.get(callee as usize)?;
    if f.ret_count != 1 || f.param_count != argc || f.param_count > u8::MAX as usize {
        return None;
    }
    let param = |r: Reg| (r as usize) < f.param_count;
    // Lowered bodies end with an unreachable `Trap` backstop; it never
    // executes, so strip it before shape-matching.
    let code = match f.code.as_slice() {
        [rest @ .., Instr::Trap(_)] => rest,
        all => all,
    };
    match code {
        [Instr::Ret(rs)] if rs.len() == 1 && param(rs[0]) => Some(InlOp::Arg(rs[0] as u8)),
        [Instr::ConstI(d, v), Instr::Ret(rs)] if rs.len() == 1 && rs[0] == *d => {
            i32::try_from(*v).ok().map(InlOp::Const)
        }
        [Instr::Bin(k, d, a, b), Instr::Ret(rs)]
            if rs.len() == 1
                && rs[0] == *d
                && param(*a)
                && param(*b)
                && !matches!(k, BinKind::Div | BinKind::Mod) =>
        {
            Some(InlOp::Bin(*k, *a as u8, *b as u8))
        }
        [Instr::BinI { k, dst, a, imm }, Instr::Ret(rs)]
            if rs.len() == 1
                && rs[0] == *dst
                && param(*a)
                && !matches!(k, BinKind::Div | BinKind::Mod) =>
        {
            Some(InlOp::BinI(*k, *a as u8, *imm))
        }
        [Instr::FieldGet { dst, obj, slot }, Instr::Ret(rs)]
            if rs.len() == 1 && rs[0] == *dst && param(*obj) && *slot <= u16::MAX as u32 =>
        {
            Some(InlOp::Field(*slot as u16, *obj as u8))
        }
        [Instr::FieldGetRet { obj, slot }] if param(*obj) && *slot <= u16::MAX as u32 => {
            Some(InlOp::Field(*slot as u16, *obj as u8))
        }
        // The unfused form of `param op constant`: a constant load feeding a
        // binary op whose other operand is a parameter. The tiered caller
        // runs this whether or not the callee itself ever got fused.
        [Instr::ConstI(c, v), Instr::Bin(k, d, a, b), Instr::Ret(rs)]
            if rs.len() == 1
                && rs[0] == *d
                && param(*a)
                && b == c
                && !param(*c)
                && !matches!(k, BinKind::Div | BinKind::Mod) =>
        {
            i32::try_from(*v).ok().map(|imm| InlOp::BinI(*k, *a as u8, imm))
        }
        _ => None,
    }
}

// ---- validation ------------------------------------------------------------

/// Validates a (possibly fused) program in `vgl_ir`-validator form: register
/// operands within each function's frame, branch targets inside the
/// function, dense inline-cache site indices, a control-transfer instruction
/// at every function end, and superinstructions confined to the fusable
/// opcode set (none of which allocate).
pub fn check_fused(p: &VmProgram) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut sites_seen = vec![false; p.virt_sites];
    for (fi, f) in p.funcs.iter().enumerate() {
        let loc = |pc: usize| format!("func {} (f{fi}) pc {pc}", f.name);
        if f.code.is_empty() {
            out.push(Violation {
                location: format!("func {} (f{fi})", f.name),
                message: "empty function body".into(),
            });
            continue;
        }
        let last = f.code.len() - 1;
        // The final instruction must not fall through past the end:
        // Ret/Trap/FieldGetRet, or a strictly backward jump.
        let end_ok = matches!(
            f.code[last],
            Instr::Ret(..) | Instr::Trap(..) | Instr::FieldGetRet { .. }
        ) || matches!(f.code[last], Instr::Jump(o) if o < 0);
        if !end_ok {
            out.push(Violation {
                location: loc(last),
                message: "function may fall through past its last instruction".into(),
            });
        }
        for (pc, i) in f.code.iter().enumerate() {
            let mut check_reg = |r: Reg| {
                if (r as usize) >= f.reg_count {
                    out.push(Violation {
                        location: loc(pc),
                        message: format!(
                            "register r{r} out of frame (reg_count {})",
                            f.reg_count
                        ),
                    });
                }
            };
            for_each_use(i, &mut check_reg);
            for_each_def(i, &mut check_reg);
            if let Some(off) = branch_off(i) {
                let target = pc as i64 + off as i64;
                if target < 0 || target as usize >= f.code.len() {
                    out.push(Violation {
                        location: loc(pc),
                        message: format!("branch target {target} outside function"),
                    });
                }
            }
            if let Instr::CmpBr { k, .. } | Instr::CmpBrI { k, .. } = i {
                if !cmp_kind(*k) {
                    out.push(Violation {
                        location: loc(pc),
                        message: format!("{k:?} is not a comparison kind"),
                    });
                }
            }
            let global_ref = match i {
                Instr::GlobalGet { g, .. }
                | Instr::GlobalSet { g, .. }
                | Instr::GlobalBin { g, .. }
                | Instr::GlobalAccum { g, .. } => Some(*g),
                _ => None,
            };
            if let Some(g) = global_ref {
                if g as usize >= p.global_count {
                    out.push(Violation {
                        location: loc(pc),
                        message: format!(
                            "global {g} out of range (global_count {})",
                            p.global_count
                        ),
                    });
                }
            }
            if i.is_super() && i.allocates() {
                out.push(Violation {
                    location: loc(pc),
                    message: "superinstruction allocates (§4.2 invariant broken)".into(),
                });
            }
            if i.is_super() && i.is_ref_store() {
                out.push(Violation {
                    location: loc(pc),
                    message: "superinstruction carries a write barrier \
                              (barrier stores are not fusable)"
                        .into(),
                });
            }
            if let Instr::CallVirt { site, .. }
            | Instr::CallGuard { site, .. }
            | Instr::CallInline { site, .. } = i
            {
                match sites_seen.get_mut(*site as usize) {
                    Some(seen) => *seen = true,
                    None => out.push(Violation {
                        location: loc(pc),
                        message: format!(
                            "IC site {site} out of range (virt_sites {})",
                            p.virt_sites
                        ),
                    }),
                }
            }
        }
    }
    for (site, seen) in sites_seen.iter().enumerate() {
        if !seen {
            out.push(Violation {
                location: "program".into(),
                message: format!("IC site {site} allocated but never referenced"),
            });
        }
    }
    out
}

/// Cross-checks a fused program against its unfused baseline: for every
/// function, the multiset of allocating instructions and of barrier-carrying
/// ref stores must be unchanged — fusion may reorder registers and collapse
/// pairs, but dropping (or inventing) an allocation breaks the §4.2
/// structural claim, and dropping a write barrier silently loses objects at
/// the next minor collection. This is the release-build counterpart of the
/// `debug_assert`s inside [`fuse`] and [`tier_fuse_func`]; the fuzz oracle
/// runs it on every case.
pub fn check_fused_against(baseline: &VmProgram, fused: &VmProgram) -> Vec<Violation> {
    let mut out = Vec::new();
    if baseline.funcs.len() != fused.funcs.len() {
        out.push(Violation {
            location: "program".into(),
            message: format!(
                "fusion changed the function count ({} -> {})",
                baseline.funcs.len(),
                fused.funcs.len()
            ),
        });
        return out;
    }
    for (fi, (b, f)) in baseline.funcs.iter().zip(&fused.funcs).enumerate() {
        if count_allocs(&b.code) != count_allocs(&f.code) {
            out.push(Violation {
                location: format!("func {} (f{fi})", f.name),
                message: format!(
                    "fusion changed the allocating-instruction count ({} -> {})",
                    count_allocs(&b.code),
                    count_allocs(&f.code)
                ),
            });
        }
        if count_ref_stores(&b.code) != count_ref_stores(&f.code) {
            out.push(Violation {
                location: format!("func {} (f{fi})", f.name),
                message: format!(
                    "fusion changed the barrier-carrying store count ({} -> {})",
                    count_ref_stores(&b.code),
                    count_ref_stores(&f.code)
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func(reg_count: usize, code: Vec<Instr>) -> VmFunc {
        VmFunc { name: "t".into(), param_count: 0, reg_count, ret_count: 1, code }
    }

    #[test]
    fn rebuild_remaps_branches_over_dropped_instrs() {
        // 0: const r1 <- 7   (dead)
        // 1: const r0 <- 1
        // 2: br_true r0 +2   (→ 4)
        // 3: const r0 <- 2
        // 4: ret r0
        let mut f = func(2, vec![
            Instr::ConstI(1, 7),
            Instr::ConstI(0, 1),
            Instr::BrTrue(0, 2),
            Instr::ConstI(0, 2),
            Instr::Ret(vec![0]),
        ]);
        let mut stats = FuseStats::default();
        assert!(eliminate_dead(&mut f, &mut stats));
        assert_eq!(f.code.len(), 4);
        let Instr::BrTrue(_, off) = f.code[1] else { panic!("branch kept") };
        assert_eq!(off, 2, "target remapped past the dropped instruction");
    }

    #[test]
    fn validator_rejects_bad_register_and_branch() {
        let p = VmProgram {
            funcs: vec![func(1, vec![Instr::Mov(0, 9), Instr::Jump(5)])],
            ..VmProgram::default()
        };
        let v = check_fused(&p);
        assert!(v.iter().any(|v| v.message.contains("out of frame")), "{v:?}");
        assert!(v.iter().any(|v| v.message.contains("outside function")), "{v:?}");
        assert!(v.iter().any(|v| v.message.contains("fall through")), "{v:?}");
    }

    /// Runs `fuse_pairs` once over `code` and returns the rewritten body.
    fn pairs(reg_count: usize, code: Vec<Instr>) -> (Vec<Instr>, FuseStats) {
        let mut f = func(reg_count, code);
        let mut stats = FuseStats::default();
        fuse_pairs(&mut f, &mut stats);
        (f.code, stats)
    }

    #[test]
    fn const_bin_fuses_to_bin_imm() {
        let (code, stats) = pairs(3, vec![
            Instr::ConstI(1, 5),
            Instr::Bin(BinKind::Sub, 2, 0, 1),
            Instr::Ret(vec![2]),
        ]);
        assert_eq!(stats.bin_imm_fused, 1);
        assert!(matches!(code[0], Instr::BinI { k: BinKind::Sub, dst: 2, a: 0, imm: 5 }));
    }

    #[test]
    fn const_bin_swaps_commutative_and_comparison_operands() {
        let (code, _) = pairs(3, vec![
            Instr::ConstI(1, 5),
            Instr::Bin(BinKind::Mul, 2, 1, 0),
            Instr::Ret(vec![2]),
        ]);
        assert!(matches!(code[0], Instr::BinI { k: BinKind::Mul, dst: 2, a: 0, imm: 5 }));
        let (code, _) = pairs(3, vec![
            Instr::ConstI(1, 5),
            Instr::Bin(BinKind::Lt, 2, 1, 0), // 5 < r0  ⇔  r0 > 5
            Instr::Ret(vec![2]),
        ]);
        assert!(matches!(code[0], Instr::BinI { k: BinKind::Gt, dst: 2, a: 0, imm: 5 }));
        // Sub does not commute: `5 - r0` must stay unfused.
        let (code, _) = pairs(3, vec![
            Instr::ConstI(1, 5),
            Instr::Bin(BinKind::Sub, 2, 1, 0),
            Instr::Ret(vec![2]),
        ]);
        assert!(matches!(code[0], Instr::ConstI(1, 5)));
    }

    #[test]
    fn const_live_after_pair_blocks_fusion() {
        // r1 is returned after the Bin, so its ConstI def must survive.
        let (code, stats) = pairs(3, vec![
            Instr::ConstI(1, 5),
            Instr::Bin(BinKind::Add, 2, 0, 1),
            Instr::Ret(vec![1]),
        ]);
        assert_eq!(stats.bin_imm_fused, 0);
        assert!(matches!(code[0], Instr::ConstI(1, 5)));
    }

    #[test]
    fn const_null_eq_fuses_to_is_null() {
        let (code, _) = pairs(3, vec![
            Instr::ConstNull(1),
            Instr::EqRR(2, 0, 1),
            Instr::Ret(vec![2]),
        ]);
        assert!(matches!(code[0], Instr::IsNull(2, 0)));
    }

    #[test]
    fn not_branch_folds_to_inverted_branch() {
        let (code, stats) = pairs(2, vec![
            Instr::Not(1, 0),
            Instr::BrFalse(1, 2),
            Instr::Ret(vec![0]),
            Instr::Ret(vec![0]),
        ]);
        assert_eq!(stats.not_br_folded, 1);
        // Offset re-expressed relative to the fused pc: 1 + 2 = 3 → pc 3,
        // which rebuild renumbers to 2 after the pair collapses.
        assert!(matches!(code[0], Instr::BrTrue(0, 2)), "{code:?}");
    }

    #[test]
    fn compare_branch_fuses_to_cmp_br() {
        let (code, stats) = pairs(3, vec![
            Instr::Bin(BinKind::Lt, 2, 0, 1),
            Instr::BrFalse(2, 2),
            Instr::Ret(vec![0]),
            Instr::Ret(vec![1]),
        ]);
        assert_eq!(stats.cmp_br_fused, 1);
        assert!(
            matches!(code[0], Instr::CmpBr { k: BinKind::Lt, a: 0, b: 1, off: 2, expect: false }),
            "{code:?}"
        );
    }

    #[test]
    fn compare_imm_branch_fuses_to_cmp_br_imm() {
        let (code, _) = pairs(2, vec![
            Instr::BinI { k: BinKind::Ge, dst: 1, a: 0, imm: 64 },
            Instr::BrTrue(1, 2),
            Instr::Ret(vec![0]),
            Instr::Ret(vec![0]),
        ]);
        assert!(
            matches!(code[0], Instr::CmpBrI { k: BinKind::Ge, a: 0, imm: 64, off: 2, expect: true }),
            "{code:?}"
        );
    }

    #[test]
    fn eq_and_null_tests_fuse_with_branches() {
        let (code, _) = pairs(3, vec![
            Instr::EqRR(2, 0, 1),
            Instr::BrFalse(2, 2),
            Instr::Ret(vec![0]),
            Instr::Ret(vec![1]),
        ]);
        assert!(matches!(code[0], Instr::EqBr { a: 0, b: 1, off: 2, expect: false }), "{code:?}");
        let (code, _) = pairs(2, vec![
            Instr::IsNull(1, 0),
            Instr::BrTrue(1, 2),
            Instr::Ret(vec![0]),
            Instr::Ret(vec![0]),
        ]);
        assert!(matches!(code[0], Instr::NullBr { v: 0, off: 2, expect: true }), "{code:?}");
    }

    #[test]
    fn field_get_ret_fuses() {
        let (code, stats) = pairs(2, vec![
            Instr::FieldGet { dst: 1, obj: 0, slot: 3 },
            Instr::Ret(vec![1]),
        ]);
        assert_eq!(stats.field_ret_fused, 1);
        assert!(matches!(code[0], Instr::FieldGetRet { obj: 0, slot: 3 }));
    }

    #[test]
    fn def_mov_coalesces_and_inc_local_rewrites() {
        let (code, stats) = pairs(3, vec![
            Instr::FieldGet { dst: 2, obj: 0, slot: 0 },
            Instr::Mov(1, 2),
            Instr::Ret(vec![1]),
        ]);
        assert_eq!(stats.movs_coalesced, 1);
        assert!(matches!(code[0], Instr::FieldGet { dst: 1, obj: 0, slot: 0 }));
        let (code, stats) = pairs(1, vec![
            Instr::BinI { k: BinKind::Add, dst: 0, a: 0, imm: 1 },
            Instr::Ret(vec![0]),
        ]);
        assert_eq!(stats.inc_local_fused, 1);
        assert!(matches!(code[0], Instr::IncLocal { r: 0, imm: 1 }));
    }

    #[test]
    fn global_get_bin_fuses_and_chains_into_global_accum() {
        // g0 = g0 + r0 lowers to get/bin/set; two rounds collapse it to one
        // GlobalAccum.
        let mut f = func(3, vec![
            Instr::GlobalGet { dst: 1, g: 0 },
            Instr::Bin(BinKind::Add, 2, 1, 0),
            Instr::GlobalSet { g: 0, src: 2 },
            Instr::Ret(vec![0]),
        ]);
        let mut stats = FuseStats::default();
        fuse_pairs(&mut f, &mut stats);
        assert_eq!(stats.global_fused, 1);
        assert!(matches!(f.code[0], Instr::GlobalBin { k: BinKind::Add, dst: 2, g: 0, b: 0 }));
        fuse_pairs(&mut f, &mut stats);
        assert_eq!(stats.global_fused, 2);
        assert!(
            matches!(f.code[0], Instr::GlobalAccum { k: BinKind::Add, g: 0, b: 0 }),
            "{:?}",
            f.code
        );
    }

    #[test]
    fn global_bin_swaps_commutative_operands_only() {
        // r0 + g0: the global loads into the right operand; Add commutes.
        let (code, _) = pairs(3, vec![
            Instr::GlobalGet { dst: 1, g: 0 },
            Instr::Bin(BinKind::Add, 2, 0, 1),
            Instr::Ret(vec![2]),
        ]);
        assert!(matches!(code[0], Instr::GlobalBin { k: BinKind::Add, dst: 2, g: 0, b: 0 }));
        // r0 - g0 does not commute: must stay unfused.
        let (code, stats) = pairs(3, vec![
            Instr::GlobalGet { dst: 1, g: 0 },
            Instr::Bin(BinKind::Sub, 2, 0, 1),
            Instr::Ret(vec![2]),
        ]);
        assert_eq!(stats.global_fused, 0);
        assert!(matches!(code[0], Instr::GlobalGet { .. }));
    }

    #[test]
    fn global_accum_requires_same_global_and_dead_temp() {
        // Different destination global: no accumulator fusion.
        let (code, _) = pairs(3, vec![
            Instr::GlobalBin { k: BinKind::Add, dst: 2, g: 0, b: 0 },
            Instr::GlobalSet { g: 1, src: 2 },
            Instr::Ret(vec![0]),
        ]);
        assert!(matches!(code[1], Instr::GlobalSet { g: 1, .. }), "{code:?}");
        // Temp still live after the set: no fusion.
        let (code, _) = pairs(3, vec![
            Instr::GlobalBin { k: BinKind::Add, dst: 2, g: 0, b: 0 },
            Instr::GlobalSet { g: 0, src: 2 },
            Instr::Ret(vec![2]),
        ]);
        assert!(matches!(code[0], Instr::GlobalBin { .. }), "{code:?}");
    }

    #[test]
    fn no_fusion_across_a_branch_target() {
        // pc 2 (the branch) is itself a jump target, so the pair (1, 2) must
        // not fuse — another path enters at the branch with r2 already set.
        let (code, stats) = pairs(3, vec![
            Instr::Jump(2),
            Instr::Bin(BinKind::Lt, 2, 0, 1),
            Instr::BrFalse(2, 2),
            Instr::Ret(vec![0]),
            Instr::Ret(vec![1]),
        ]);
        assert_eq!(stats.cmp_br_fused, 0);
        assert!(matches!(code[1], Instr::Bin(BinKind::Lt, 2, 0, 1)), "{code:?}");
    }

    /// End-to-end equivalence on a real loop: the full pass must produce the
    /// same result as the unfused program and land the hot-loop
    /// superinstructions.
    #[test]
    fn fused_loop_program_runs_identically() {
        // sum = 0; for (i = 0; i < 10; i = i + 1) sum = sum + i; return sum
        let body = vec![
            Instr::ConstI(0, 0),                     // sum
            Instr::ConstI(1, 0),                     // i
            Instr::ConstI(2, 10),                    // limit (live across loop)
            Instr::Bin(BinKind::Lt, 3, 1, 2),
            Instr::BrFalse(3, 5),
            Instr::Bin(BinKind::Add, 0, 0, 1),
            Instr::ConstI(4, 1),
            Instr::Bin(BinKind::Add, 1, 1, 4),
            Instr::Jump(-5),
            Instr::Ret(vec![0]),
        ];
        let unfused = VmProgram {
            funcs: vec![func(5, body)],
            main: Some(0),
            ..VmProgram::default()
        };
        let mut fused = unfused.clone();
        let stats = fuse(&mut fused);
        assert!(check_fused(&fused).is_empty(), "{:?}", check_fused(&fused));
        assert!(stats.instrs_after < stats.instrs_before);
        let code = &fused.funcs[0].code;
        assert!(code.iter().any(|i| matches!(i, Instr::IncLocal { .. })), "{code:?}");
        assert!(
            code.iter().any(|i| matches!(i, Instr::CmpBr { .. } | Instr::CmpBrI { .. })),
            "{code:?}"
        );
        let a = crate::Vm::new(&unfused).run().expect("unfused runs");
        let b = crate::Vm::new(&fused).run().expect("fused runs");
        assert_eq!(crate::ret_as_int(&a), Some(45));
        assert_eq!(crate::ret_as_int(&a), crate::ret_as_int(&b));
    }
}
