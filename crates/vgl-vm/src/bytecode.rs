//! Bytecode definitions for the register VM — the "native target" substitute.
//!
//! The design mirrors what the paper's native x86 backend guarantees:
//!
//! * a **scalar calling convention**: calls pass zero or more scalar
//!   registers and return zero or more scalar registers ("utilizing multiple
//!   return registers on native targets" — §4.2);
//! * **vtable dispatch** for virtual calls;
//! * **constant-time type tests** on classes via preorder range numbering
//!   (the paper cites Cohen [4] for this);
//! * **no implicit allocation**: the only allocating instructions are the
//!   explicit `NewObject`/`NewArray`/`ArrayLit`/`ConstPool` (source-level
//!   `new` and literals) and `MakeClos*` (closure cells, reported
//!   separately).

use vgl_ir::ops::Exception;
use vgl_ir::Builtin;

/// A virtual register (frame slot index).
pub type Reg = u16;

/// A function index in [`VmProgram::funcs`].
pub type FuncId = u32;

/// Comparison/arithmetic kinds for [`Instr::Bin`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinKind {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Trapping divide.
    Div,
    /// Trapping modulus.
    Mod,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (Virgil semantics).
    Shl,
    /// Arithmetic shift right (Virgil semantics).
    Shr,
}

/// One bytecode instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// dst ← signed scalar constant.
    ConstI(Reg, i64),
    /// dst ← null.
    ConstNull(Reg),
    /// dst ← fresh byte array from the constant pool (allocates).
    ConstPool(Reg, u32),
    /// dst ← src.
    Mov(Reg, Reg),
    /// dst ← a ⊕ b on scalars.
    Bin(BinKind, Reg, Reg, Reg),
    /// dst ← -a.
    Neg(Reg, Reg),
    /// dst ← !a (bool).
    Not(Reg, Reg),
    /// dst ← a == b on tagged words (scalars by value, refs by identity).
    EqRR(Reg, Reg, Reg),
    /// dst ← closure equality: same function and same bound receiver.
    EqClos(Reg, Reg, Reg),
    /// Unconditional relative jump.
    Jump(i32),
    /// Branch when the register holds false.
    BrFalse(Reg, i32),
    /// Branch when the register holds true.
    BrTrue(Reg, i32),
    /// Direct call.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument registers.
        args: Vec<Reg>,
        /// Destination registers for the returned values.
        rets: Vec<Reg>,
    },
    /// Virtual call through `args[0]`'s class vtable.
    CallVirt {
        /// Vtable slot.
        slot: u32,
        /// Call-site index into the VM's monomorphic inline-cache table
        /// (dense in `0..`[`VmProgram::virt_sites`]).
        site: u32,
        /// Argument registers; `args[0]` is the receiver (null-checked).
        args: Vec<Reg>,
        /// Destinations.
        rets: Vec<Reg>,
    },
    /// Closure invocation (null-checked).
    CallClos {
        /// Closure cell register.
        clos: Reg,
        /// Arguments (receiver prepended automatically when bound).
        args: Vec<Reg>,
        /// Destinations.
        rets: Vec<Reg>,
    },
    /// Host intrinsic call.
    CallBuiltin {
        /// Which intrinsic.
        b: Builtin,
        /// Arguments.
        args: Vec<Reg>,
        /// Destinations (zero or one).
        rets: Vec<Reg>,
    },
    /// dst ← closure cell over `func` (+ optional bound receiver).
    MakeClos {
        /// Destination.
        dst: Reg,
        /// Target function.
        func: FuncId,
        /// Receiver to bind.
        recv: Option<Reg>,
    },
    /// dst ← closure bound via bind-time vtable lookup (null-checked).
    MakeClosVirt {
        /// Destination.
        dst: Reg,
        /// Vtable slot.
        slot: u32,
        /// Receiver.
        recv: Reg,
    },
    /// dst ← new object of `class`, fields zeroed (explicit allocation).
    NewObject {
        /// Destination.
        dst: Reg,
        /// Class index.
        class: u32,
    },
    /// dst ← new array of `len` default slots; traps on negative length.
    NewArray {
        /// Destination.
        dst: Reg,
        /// Length register.
        len: Reg,
        /// Elements default to `null` when reference-typed.
        nullable: bool,
    },
    /// dst ← array literal from registers.
    ArrayLit {
        /// Destination.
        dst: Reg,
        /// Element registers.
        elems: Vec<Reg>,
    },
    /// dst ← array length (null-checked).
    ArrayLen {
        /// Destination.
        dst: Reg,
        /// Array.
        arr: Reg,
    },
    /// dst ← `arr[idx]` (null- and bounds-checked).
    ArrayGet {
        /// Destination.
        dst: Reg,
        /// Array.
        arr: Reg,
        /// Index.
        idx: Reg,
    },
    /// `arr[idx]` ← val (statically scalar-typed; no write barrier).
    ArraySet {
        /// Array.
        arr: Reg,
        /// Index.
        idx: Reg,
        /// Value.
        val: Reg,
    },
    /// `arr[idx]` ← val where `val` is statically **reference-typed**: the
    /// store goes through the generational write barrier so a nursery
    /// reference stored into a mature array lands in the remembered set.
    /// Lowering picks this (vs. [`Instr::ArraySet`]) from the element's
    /// static type; fusion must preserve the choice.
    ArraySetRef {
        /// Array.
        arr: Reg,
        /// Index.
        idx: Reg,
        /// Value (reference-typed).
        val: Reg,
    },
    /// dst ← obj.slot (null-checked).
    FieldGet {
        /// Destination.
        dst: Reg,
        /// Object.
        obj: Reg,
        /// Field slot.
        slot: u32,
    },
    /// obj.slot ← val (null-checked; statically scalar-typed, no barrier).
    FieldSet {
        /// Object.
        obj: Reg,
        /// Field slot.
        slot: u32,
        /// Value.
        val: Reg,
    },
    /// obj.slot ← val (null-checked) where `val` is statically
    /// **reference-typed**: the store goes through the generational write
    /// barrier (see [`Instr::ArraySetRef`]).
    FieldSetRef {
        /// Object.
        obj: Reg,
        /// Field slot.
        slot: u32,
        /// Value (reference-typed).
        val: Reg,
    },
    /// dst ← global.
    GlobalGet {
        /// Destination.
        dst: Reg,
        /// Global index.
        g: u32,
    },
    /// global ← src.
    GlobalSet {
        /// Global index.
        g: u32,
        /// Source.
        src: Reg,
    },
    /// dst ← `obj` is an instance of the class preorder range `[lo, hi]`
    /// (false for null) — Cohen-style constant-time type test.
    ClassQuery {
        /// Destination (bool).
        dst: Reg,
        /// Object.
        obj: Reg,
        /// Range start.
        lo: u32,
        /// Range end (inclusive).
        hi: u32,
    },
    /// Traps unless `obj` is null or within the range.
    ClassCast {
        /// Object.
        obj: Reg,
        /// Range start.
        lo: u32,
        /// Range end.
        hi: u32,
    },
    /// dst ← closure type test via precomputed per-function admissibility.
    ClosQuery {
        /// Destination (bool).
        dst: Reg,
        /// Closure.
        clos: Reg,
        /// Index into [`VmProgram::clos_tests`].
        test: u32,
    },
    /// Traps unless the closure passes the test (null passes).
    ClosCast {
        /// Closure.
        clos: Reg,
        /// Test index.
        test: u32,
    },
    /// dst ← src checked into byte range (traps when out of 0..=255).
    IntToByte {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// Traps when the register is null; otherwise no effect.
    CheckNull(Reg),
    /// dst ← src is null.
    IsNull(Reg, Reg),
    /// Return the given registers to the caller.
    Ret(Vec<Reg>),
    /// Raise an exception.
    Trap(Exception),

    // ---- superinstructions (emitted only by the fusion pass) ------------
    /// dst ← a ⊕ imm — a [`Instr::Bin`] whose second operand was a constant
    /// (fused from `ConstI` + `Bin`).
    BinI {
        /// Operation.
        k: BinKind,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Immediate right operand.
        imm: i32,
    },
    /// r ← r + imm — the loop-counter increment (fused from `BinI(Add)` when
    /// destination and source coincide).
    IncLocal {
        /// Register incremented in place.
        r: Reg,
        /// Increment (wrapping).
        imm: i32,
    },
    /// Fused compare+branch: jump `off` when `(a k b) == expect`; `k` is one
    /// of the four ordering comparisons.
    CmpBr {
        /// Comparison (`Lt`/`Le`/`Gt`/`Ge` only).
        k: BinKind,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Relative jump when the comparison matches `expect`.
        off: i32,
        /// Branch polarity.
        expect: bool,
    },
    /// Fused compare+branch against an immediate — the canonical
    /// `for (i = 0; i < N; ...)` loop header in one instruction.
    CmpBrI {
        /// Comparison (`Lt`/`Le`/`Gt`/`Ge` only).
        k: BinKind,
        /// Left operand.
        a: Reg,
        /// Immediate right operand.
        imm: i32,
        /// Relative jump when the comparison matches `expect`.
        off: i32,
        /// Branch polarity.
        expect: bool,
    },
    /// Fused word-equality branch: jump `off` when `(a == b) == expect`.
    EqBr {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Relative jump.
        off: i32,
        /// Branch polarity.
        expect: bool,
    },
    /// Fused null-test branch: jump `off` when `(v == null) == expect` —
    /// the `for (x = l; x != null; x = x.tail)` header in one instruction.
    NullBr {
        /// Tested register.
        v: Reg,
        /// Relative jump.
        off: i32,
        /// Branch polarity.
        expect: bool,
    },
    /// Fused field load + return (null-checked) — the accessor-method body.
    FieldGetRet {
        /// Object.
        obj: Reg,
        /// Field slot.
        slot: u32,
    },
    /// dst ← global ⊕ b (fused from `GlobalGet` + `Bin` when the loaded
    /// temp dies at the operation).
    GlobalBin {
        /// Operation.
        k: BinKind,
        /// Destination.
        dst: Reg,
        /// Global index (left operand).
        g: u32,
        /// Right operand.
        b: Reg,
    },
    /// global ← global ⊕ b — the global-accumulator idiom
    /// (`sink = sink + x`) in one instruction, fused from
    /// `GlobalBin` + `GlobalSet` over the same global.
    GlobalAccum {
        /// Operation.
        k: BinKind,
        /// Global index (read then written).
        g: u32,
        /// Right operand.
        b: Reg,
    },

    // ---- speculative superinstructions (emitted only by the tiered
    // ---- re-fuse pass, never by lowering or the static fuse pass) -------
    /// Guarded direct call: a `CallVirt` whose inline cache stayed
    /// monomorphic, devirtualized by the tier-up pass. When `args[0]`'s
    /// class equals `class` the call proceeds directly to `func`; otherwise
    /// the frame **deoptimizes** — transfers to the unfused baseline body at
    /// `deopt_pc` (the pc of the original `CallVirt`, which re-executes and
    /// carries the vtable slot) and marks `site` megamorphic.
    CallGuard {
        /// Expected receiver class (the IC snapshot at tier-up).
        class: u32,
        /// Devirtualized callee (what the vtable resolved to for `class`).
        func: FuncId,
        /// The baseline `CallVirt`'s inline-cache site index.
        site: u32,
        /// Baseline-body pc to resume at on guard failure.
        deopt_pc: u32,
        /// Argument registers; `args[0]` is the receiver (null-checked).
        args: Vec<Reg>,
        /// Destinations.
        rets: Vec<Reg>,
    },
    /// Guarded speculative inlining of a one-instruction callee body: the
    /// receiver-class guard of [`Instr::CallGuard`] plus the callee's entire
    /// effect as an [`InlOp`] micro-op, eliding the frame push/pop. Same
    /// deopt protocol as `CallGuard`.
    CallInline {
        /// Expected receiver class.
        class: u32,
        /// The baseline `CallVirt`'s inline-cache site index.
        site: u32,
        /// Baseline-body pc to resume at on guard failure.
        deopt_pc: u32,
        /// The inlined callee body.
        op: InlOp,
        /// Argument registers; `args[0]` is the receiver (null-checked).
        args: Vec<Reg>,
        /// Destinations (zero or one).
        rets: Vec<Reg>,
    },
}

/// The inlined body of a [`Instr::CallInline`]: a one-instruction callee
/// reduced to a micro-op over the call's argument registers. Operand bytes
/// index into `args` (parameter positions), not frame registers — the
/// callee frame is never materialized. Only non-allocating, non-trapping
/// shapes are eligible (`Div`/`Mod` by a register operand and `BinI` with a
/// zero immediate are excluded so the inlined op cannot raise an arithmetic
/// trap the guard did not anticipate; the field load keeps its null check).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InlOp {
    /// Return the `i`-th argument unchanged (identity/getter-of-self).
    Arg(u8),
    /// Return a scalar constant.
    Const(i32),
    /// Return `args[a] ⊕ args[b]`.
    Bin(BinKind, u8, u8),
    /// Return `args[a] ⊕ imm`.
    BinI(BinKind, u8, i32),
    /// Return `args[o].slot` (null-checked field accessor).
    Field(u16, u8),
}

/// Number of distinct opcodes — the length of [`OPCODE_NAMES`] and of the
/// profiler's retired-instruction histogram.
pub const OPCODE_COUNT: usize = 50;

/// Index of the first superinstruction opcode: opcodes in
/// `FIRST_SUPER_OPCODE..OPCODE_COUNT` are only ever emitted by the fusion
/// pass (`vgl_vm::fuse`), never by lowering.
pub const FIRST_SUPER_OPCODE: usize = 39;

/// Opcode mnemonics, indexed by [`Instr::opcode`].
pub const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "const_i",
    "const_null",
    "const_pool",
    "mov",
    "bin",
    "neg",
    "not",
    "eq_rr",
    "eq_clos",
    "jump",
    "br_false",
    "br_true",
    "call",
    "call_virt",
    "call_clos",
    "call_builtin",
    "make_clos",
    "make_clos_virt",
    "new_object",
    "new_array",
    "array_lit",
    "array_len",
    "array_get",
    "array_set",
    "array_set_ref",
    "field_get",
    "field_set",
    "field_set_ref",
    "global_get",
    "global_set",
    "class_query",
    "class_cast",
    "clos_query",
    "clos_cast",
    "int_to_byte",
    "check_null",
    "is_null",
    "ret",
    "trap",
    "bin_i",
    "inc_local",
    "cmp_br",
    "cmp_br_i",
    "eq_br",
    "null_br",
    "field_get_ret",
    "global_bin",
    "global_accum",
    "call_guard",
    "call_inline",
];

impl Instr {
    /// A dense opcode index in `0..OPCODE_COUNT`, used by the profiler's
    /// per-opcode histogram.
    pub fn opcode(&self) -> usize {
        match self {
            Instr::ConstI(..) => 0,
            Instr::ConstNull(..) => 1,
            Instr::ConstPool(..) => 2,
            Instr::Mov(..) => 3,
            Instr::Bin(..) => 4,
            Instr::Neg(..) => 5,
            Instr::Not(..) => 6,
            Instr::EqRR(..) => 7,
            Instr::EqClos(..) => 8,
            Instr::Jump(..) => 9,
            Instr::BrFalse(..) => 10,
            Instr::BrTrue(..) => 11,
            Instr::Call { .. } => 12,
            Instr::CallVirt { .. } => 13,
            Instr::CallClos { .. } => 14,
            Instr::CallBuiltin { .. } => 15,
            Instr::MakeClos { .. } => 16,
            Instr::MakeClosVirt { .. } => 17,
            Instr::NewObject { .. } => 18,
            Instr::NewArray { .. } => 19,
            Instr::ArrayLit { .. } => 20,
            Instr::ArrayLen { .. } => 21,
            Instr::ArrayGet { .. } => 22,
            Instr::ArraySet { .. } => 23,
            Instr::ArraySetRef { .. } => 24,
            Instr::FieldGet { .. } => 25,
            Instr::FieldSet { .. } => 26,
            Instr::FieldSetRef { .. } => 27,
            Instr::GlobalGet { .. } => 28,
            Instr::GlobalSet { .. } => 29,
            Instr::ClassQuery { .. } => 30,
            Instr::ClassCast { .. } => 31,
            Instr::ClosQuery { .. } => 32,
            Instr::ClosCast { .. } => 33,
            Instr::IntToByte { .. } => 34,
            Instr::CheckNull(..) => 35,
            Instr::IsNull(..) => 36,
            Instr::Ret(..) => 37,
            Instr::Trap(..) => 38,
            Instr::BinI { .. } => 39,
            Instr::IncLocal { .. } => 40,
            Instr::CmpBr { .. } => 41,
            Instr::CmpBrI { .. } => 42,
            Instr::EqBr { .. } => 43,
            Instr::NullBr { .. } => 44,
            Instr::FieldGetRet { .. } => 45,
            Instr::GlobalBin { .. } => 46,
            Instr::GlobalAccum { .. } => 47,
            Instr::CallGuard { .. } => 48,
            Instr::CallInline { .. } => 49,
        }
    }

    /// Whether this instruction is a fusion-emitted superinstruction.
    pub fn is_super(&self) -> bool {
        self.opcode() >= FIRST_SUPER_OPCODE
    }

    /// Whether executing this instruction can allocate on the VM heap. The
    /// fusion pass must keep the multiset of allocating instructions intact
    /// (the §4.2 structural claim: only explicit `new`/literals and closure
    /// cells allocate), and its validator checks exactly this set.
    pub fn allocates(&self) -> bool {
        matches!(
            self,
            Instr::ConstPool(..)
                | Instr::MakeClos { .. }
                | Instr::MakeClosVirt { .. }
                | Instr::NewObject { .. }
                | Instr::NewArray { .. }
                | Instr::ArrayLit { .. }
        )
    }

    /// Whether this instruction stores a statically reference-typed value
    /// into a heap cell and therefore carries the generational write
    /// barrier. Fusion must keep the multiset of barrier-carrying stores
    /// intact — dropping one can silently lose an object at the next minor
    /// collection — and its validator checks exactly this set.
    pub fn is_ref_store(&self) -> bool {
        matches!(self, Instr::ArraySetRef { .. } | Instr::FieldSetRef { .. })
    }

    /// The mnemonic for this instruction's opcode.
    pub fn opcode_name(&self) -> &'static str {
        OPCODE_NAMES[self.opcode()]
    }
}

/// Per-function admissibility for closure type tests: whether each function,
/// in bound and unbound form, satisfies the target function type.
#[derive(Clone, Debug, Default)]
pub struct ClosTest {
    /// `allowed_bound[f]`: a closure cell (f, recv) passes.
    pub allowed_bound: Vec<bool>,
    /// `allowed_unbound[f]`: a closure cell (f, —) passes.
    pub allowed_unbound: Vec<bool>,
}

/// A compiled function.
#[derive(Clone, Debug)]
pub struct VmFunc {
    /// Name (diagnostics/disassembly).
    pub name: String,
    /// Number of parameter registers.
    pub param_count: usize,
    /// Total frame registers.
    pub reg_count: usize,
    /// Number of returned values.
    pub ret_count: usize,
    /// The code.
    pub code: Vec<Instr>,
}

/// A compiled class.
#[derive(Clone, Debug)]
pub struct VmClass {
    /// Name.
    pub name: String,
    /// Total (flattened) field slots.
    pub field_count: usize,
    /// Which field slots default to `null` (reference-typed).
    pub field_nullable: Vec<bool>,
    /// Virtual dispatch table.
    pub vtable: Vec<FuncId>,
    /// Preorder number.
    pub pre: u32,
    /// Largest preorder number among descendants.
    pub max_desc: u32,
}

/// A compiled program.
#[derive(Clone, Debug, Default)]
pub struct VmProgram {
    /// All functions.
    pub funcs: Vec<VmFunc>,
    /// All classes.
    pub classes: Vec<VmClass>,
    /// Number of global slots.
    pub global_count: usize,
    /// Whether each global defaults to `null` (reference-typed).
    pub global_nullable: Vec<bool>,
    /// Initialization: `(global slot, init function)` in order; each init
    /// function takes no arguments and returns one value.
    pub global_inits: Vec<(u32, FuncId)>,
    /// Constant pool for string/array literals.
    pub pool: Vec<Vec<u8>>,
    /// Closure type tests.
    pub clos_tests: Vec<ClosTest>,
    /// Entry function.
    pub main: Option<FuncId>,
    /// Number of `CallVirt` sites — the size of the VM's monomorphic
    /// inline-cache table (each site carries a dense `site` index).
    pub virt_sites: usize,
    /// Largest frame (register count) of any function — the static
    /// max-frame analysis used to pre-size the value stack.
    pub max_frame_regs: usize,
}

impl VmProgram {
    /// Total instruction count (static code size — the E4 metric at the
    /// bytecode level).
    pub fn code_size(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}
