//! Bytecode definitions for the register VM — the "native target" substitute.
//!
//! The design mirrors what the paper's native x86 backend guarantees:
//!
//! * a **scalar calling convention**: calls pass zero or more scalar
//!   registers and return zero or more scalar registers ("utilizing multiple
//!   return registers on native targets" — §4.2);
//! * **vtable dispatch** for virtual calls;
//! * **constant-time type tests** on classes via preorder range numbering
//!   (the paper cites Cohen [4] for this);
//! * **no implicit allocation**: the only allocating instructions are the
//!   explicit `NewObject`/`NewArray`/`ArrayLit`/`ConstPool` (source-level
//!   `new` and literals) and `MakeClos*` (closure cells, reported
//!   separately).

use vgl_ir::ops::Exception;
use vgl_ir::Builtin;

/// A virtual register (frame slot index).
pub type Reg = u16;

/// A function index in [`VmProgram::funcs`].
pub type FuncId = u32;

/// Comparison/arithmetic kinds for [`Instr::Bin`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinKind {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Trapping divide.
    Div,
    /// Trapping modulus.
    Mod,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (Virgil semantics).
    Shl,
    /// Arithmetic shift right (Virgil semantics).
    Shr,
}

/// One bytecode instruction.
#[derive(Clone, Debug)]
pub enum Instr {
    /// dst ← signed scalar constant.
    ConstI(Reg, i64),
    /// dst ← null.
    ConstNull(Reg),
    /// dst ← fresh byte array from the constant pool (allocates).
    ConstPool(Reg, u32),
    /// dst ← src.
    Mov(Reg, Reg),
    /// dst ← a ⊕ b on scalars.
    Bin(BinKind, Reg, Reg, Reg),
    /// dst ← -a.
    Neg(Reg, Reg),
    /// dst ← !a (bool).
    Not(Reg, Reg),
    /// dst ← a == b on tagged words (scalars by value, refs by identity).
    EqRR(Reg, Reg, Reg),
    /// dst ← closure equality: same function and same bound receiver.
    EqClos(Reg, Reg, Reg),
    /// Unconditional relative jump.
    Jump(i32),
    /// Branch when the register holds false.
    BrFalse(Reg, i32),
    /// Branch when the register holds true.
    BrTrue(Reg, i32),
    /// Direct call.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument registers.
        args: Vec<Reg>,
        /// Destination registers for the returned values.
        rets: Vec<Reg>,
    },
    /// Virtual call through `args[0]`'s class vtable.
    CallVirt {
        /// Vtable slot.
        slot: u32,
        /// Argument registers; `args[0]` is the receiver (null-checked).
        args: Vec<Reg>,
        /// Destinations.
        rets: Vec<Reg>,
    },
    /// Closure invocation (null-checked).
    CallClos {
        /// Closure cell register.
        clos: Reg,
        /// Arguments (receiver prepended automatically when bound).
        args: Vec<Reg>,
        /// Destinations.
        rets: Vec<Reg>,
    },
    /// Host intrinsic call.
    CallBuiltin {
        /// Which intrinsic.
        b: Builtin,
        /// Arguments.
        args: Vec<Reg>,
        /// Destinations (zero or one).
        rets: Vec<Reg>,
    },
    /// dst ← closure cell over `func` (+ optional bound receiver).
    MakeClos {
        /// Destination.
        dst: Reg,
        /// Target function.
        func: FuncId,
        /// Receiver to bind.
        recv: Option<Reg>,
    },
    /// dst ← closure bound via bind-time vtable lookup (null-checked).
    MakeClosVirt {
        /// Destination.
        dst: Reg,
        /// Vtable slot.
        slot: u32,
        /// Receiver.
        recv: Reg,
    },
    /// dst ← new object of `class`, fields zeroed (explicit allocation).
    NewObject {
        /// Destination.
        dst: Reg,
        /// Class index.
        class: u32,
    },
    /// dst ← new array of `len` default slots; traps on negative length.
    NewArray {
        /// Destination.
        dst: Reg,
        /// Length register.
        len: Reg,
        /// Elements default to `null` when reference-typed.
        nullable: bool,
    },
    /// dst ← array literal from registers.
    ArrayLit {
        /// Destination.
        dst: Reg,
        /// Element registers.
        elems: Vec<Reg>,
    },
    /// dst ← array length (null-checked).
    ArrayLen {
        /// Destination.
        dst: Reg,
        /// Array.
        arr: Reg,
    },
    /// dst ← `arr[idx]` (null- and bounds-checked).
    ArrayGet {
        /// Destination.
        dst: Reg,
        /// Array.
        arr: Reg,
        /// Index.
        idx: Reg,
    },
    /// `arr[idx]` ← val.
    ArraySet {
        /// Array.
        arr: Reg,
        /// Index.
        idx: Reg,
        /// Value.
        val: Reg,
    },
    /// dst ← obj.slot (null-checked).
    FieldGet {
        /// Destination.
        dst: Reg,
        /// Object.
        obj: Reg,
        /// Field slot.
        slot: u32,
    },
    /// obj.slot ← val (null-checked).
    FieldSet {
        /// Object.
        obj: Reg,
        /// Field slot.
        slot: u32,
        /// Value.
        val: Reg,
    },
    /// dst ← global.
    GlobalGet {
        /// Destination.
        dst: Reg,
        /// Global index.
        g: u32,
    },
    /// global ← src.
    GlobalSet {
        /// Global index.
        g: u32,
        /// Source.
        src: Reg,
    },
    /// dst ← `obj` is an instance of the class preorder range `[lo, hi]`
    /// (false for null) — Cohen-style constant-time type test.
    ClassQuery {
        /// Destination (bool).
        dst: Reg,
        /// Object.
        obj: Reg,
        /// Range start.
        lo: u32,
        /// Range end (inclusive).
        hi: u32,
    },
    /// Traps unless `obj` is null or within the range.
    ClassCast {
        /// Object.
        obj: Reg,
        /// Range start.
        lo: u32,
        /// Range end.
        hi: u32,
    },
    /// dst ← closure type test via precomputed per-function admissibility.
    ClosQuery {
        /// Destination (bool).
        dst: Reg,
        /// Closure.
        clos: Reg,
        /// Index into [`VmProgram::clos_tests`].
        test: u32,
    },
    /// Traps unless the closure passes the test (null passes).
    ClosCast {
        /// Closure.
        clos: Reg,
        /// Test index.
        test: u32,
    },
    /// dst ← src checked into byte range (traps when out of 0..=255).
    IntToByte {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// Traps when the register is null; otherwise no effect.
    CheckNull(Reg),
    /// dst ← src is null.
    IsNull(Reg, Reg),
    /// Return the given registers to the caller.
    Ret(Vec<Reg>),
    /// Raise an exception.
    Trap(Exception),
}

/// Number of distinct opcodes — the length of [`OPCODE_NAMES`] and of the
/// profiler's retired-instruction histogram.
pub const OPCODE_COUNT: usize = 37;

/// Opcode mnemonics, indexed by [`Instr::opcode`].
pub const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "const_i",
    "const_null",
    "const_pool",
    "mov",
    "bin",
    "neg",
    "not",
    "eq_rr",
    "eq_clos",
    "jump",
    "br_false",
    "br_true",
    "call",
    "call_virt",
    "call_clos",
    "call_builtin",
    "make_clos",
    "make_clos_virt",
    "new_object",
    "new_array",
    "array_lit",
    "array_len",
    "array_get",
    "array_set",
    "field_get",
    "field_set",
    "global_get",
    "global_set",
    "class_query",
    "class_cast",
    "clos_query",
    "clos_cast",
    "int_to_byte",
    "check_null",
    "is_null",
    "ret",
    "trap",
];

impl Instr {
    /// A dense opcode index in `0..OPCODE_COUNT`, used by the profiler's
    /// per-opcode histogram.
    pub fn opcode(&self) -> usize {
        match self {
            Instr::ConstI(..) => 0,
            Instr::ConstNull(..) => 1,
            Instr::ConstPool(..) => 2,
            Instr::Mov(..) => 3,
            Instr::Bin(..) => 4,
            Instr::Neg(..) => 5,
            Instr::Not(..) => 6,
            Instr::EqRR(..) => 7,
            Instr::EqClos(..) => 8,
            Instr::Jump(..) => 9,
            Instr::BrFalse(..) => 10,
            Instr::BrTrue(..) => 11,
            Instr::Call { .. } => 12,
            Instr::CallVirt { .. } => 13,
            Instr::CallClos { .. } => 14,
            Instr::CallBuiltin { .. } => 15,
            Instr::MakeClos { .. } => 16,
            Instr::MakeClosVirt { .. } => 17,
            Instr::NewObject { .. } => 18,
            Instr::NewArray { .. } => 19,
            Instr::ArrayLit { .. } => 20,
            Instr::ArrayLen { .. } => 21,
            Instr::ArrayGet { .. } => 22,
            Instr::ArraySet { .. } => 23,
            Instr::FieldGet { .. } => 24,
            Instr::FieldSet { .. } => 25,
            Instr::GlobalGet { .. } => 26,
            Instr::GlobalSet { .. } => 27,
            Instr::ClassQuery { .. } => 28,
            Instr::ClassCast { .. } => 29,
            Instr::ClosQuery { .. } => 30,
            Instr::ClosCast { .. } => 31,
            Instr::IntToByte { .. } => 32,
            Instr::CheckNull(..) => 33,
            Instr::IsNull(..) => 34,
            Instr::Ret(..) => 35,
            Instr::Trap(..) => 36,
        }
    }

    /// The mnemonic for this instruction's opcode.
    pub fn opcode_name(&self) -> &'static str {
        OPCODE_NAMES[self.opcode()]
    }
}

/// Per-function admissibility for closure type tests: whether each function,
/// in bound and unbound form, satisfies the target function type.
#[derive(Clone, Debug, Default)]
pub struct ClosTest {
    /// `allowed_bound[f]`: a closure cell (f, recv) passes.
    pub allowed_bound: Vec<bool>,
    /// `allowed_unbound[f]`: a closure cell (f, —) passes.
    pub allowed_unbound: Vec<bool>,
}

/// A compiled function.
#[derive(Clone, Debug)]
pub struct VmFunc {
    /// Name (diagnostics/disassembly).
    pub name: String,
    /// Number of parameter registers.
    pub param_count: usize,
    /// Total frame registers.
    pub reg_count: usize,
    /// Number of returned values.
    pub ret_count: usize,
    /// The code.
    pub code: Vec<Instr>,
}

/// A compiled class.
#[derive(Clone, Debug)]
pub struct VmClass {
    /// Name.
    pub name: String,
    /// Total (flattened) field slots.
    pub field_count: usize,
    /// Which field slots default to `null` (reference-typed).
    pub field_nullable: Vec<bool>,
    /// Virtual dispatch table.
    pub vtable: Vec<FuncId>,
    /// Preorder number.
    pub pre: u32,
    /// Largest preorder number among descendants.
    pub max_desc: u32,
}

/// A compiled program.
#[derive(Clone, Debug, Default)]
pub struct VmProgram {
    /// All functions.
    pub funcs: Vec<VmFunc>,
    /// All classes.
    pub classes: Vec<VmClass>,
    /// Number of global slots.
    pub global_count: usize,
    /// Whether each global defaults to `null` (reference-typed).
    pub global_nullable: Vec<bool>,
    /// Initialization: `(global slot, init function)` in order; each init
    /// function takes no arguments and returns one value.
    pub global_inits: Vec<(u32, FuncId)>,
    /// Constant pool for string/array literals.
    pub pool: Vec<Vec<u8>>,
    /// Closure type tests.
    pub clos_tests: Vec<ClosTest>,
    /// Entry function.
    pub main: Option<FuncId>,
}

impl VmProgram {
    /// Total instruction count (static code size — the E4 metric at the
    /// bytecode level).
    pub fn code_size(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}
