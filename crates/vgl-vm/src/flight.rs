//! The VM's crash flight recorder: a fixed-capacity ring of the last N
//! runtime events (calls, inline-cache misses, collections, traps), dumped
//! when a run ends in a trap or `System.error`.
//!
//! Recording is opt-in (`--flight-record` / [`crate::Vm::enable_flight_recorder`])
//! and allocation-free after construction: the ring overwrites its oldest
//! entry in place, so a recorder can ride along an arbitrarily long run and
//! still hand back the final moments when something goes wrong. The fuzz
//! oracle attaches the dump to differential failures so a shrunk repro ships
//! with the trace that led into the divergence or trap.

use crate::bytecode::{FuncId, VmProgram};
use crate::vm::VmError;
use vgl_obs::flight::Ring;
use vgl_runtime::heap::GcKind;

/// How a recorded call was dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// Direct `Call` (or the `call_function` entry itself).
    Static,
    /// `CallVirt` through the vtable / inline cache.
    Virtual,
    /// `CallClos` through a closure cell.
    Closure,
}

impl CallKind {
    fn label(self) -> &'static str {
        match self {
            CallKind::Static => "call",
            CallKind::Virtual => "callvirt",
            CallKind::Closure => "callclos",
        }
    }
}

/// What happened at one recorded moment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlightKind {
    /// A function was entered.
    Call {
        /// Dispatch mechanism.
        kind: CallKind,
        /// The callee.
        func: FuncId,
    },
    /// A `CallVirt` inline cache missed and was refilled.
    IcMiss {
        /// The dense call-site index.
        site: u32,
        /// The receiver class that missed.
        class: u32,
        /// The callee the vtable resolved to.
        func: FuncId,
    },
    /// A garbage collection ran.
    Gc {
        /// Minor (nursery) or major (full-heap) collection.
        kind: GcKind,
        /// Slots surviving the collection.
        live_slots: usize,
        /// Heap capacity at collection time.
        capacity_slots: usize,
    },
    /// A function crossed its hotness threshold and installed a hot-tier
    /// body re-fused from its own runtime profile.
    TierUp {
        /// The function that tiered up.
        func: FuncId,
    },
    /// A speculation guard failed: the frame fell back to the baseline body
    /// and the site was marked megamorphic.
    Deopt {
        /// The guarded call site.
        site: u32,
        /// The receiver class that broke the guard (`u32::MAX` for null).
        class: u32,
        /// The function whose tiered body deoptimized.
        func: FuncId,
    },
    /// Execution ended abnormally (language trap, `System.error`, or fuel).
    Trap {
        /// Why execution stopped.
        error: VmError,
        /// The function on top of the stack when it stopped.
        func: FuncId,
        /// Its program counter (the instruction *after* the faulting one).
        pc: usize,
    },
}

/// One entry in the flight ring: an event plus the retired-instruction
/// clock it happened at.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlightEvent {
    /// Instructions retired when the event was recorded.
    pub at_instr: u64,
    /// The event itself.
    pub kind: FlightKind,
}

/// The recorder: a [`Ring`] of [`FlightEvent`]s plus rendering.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    ring: Ring<FlightEvent>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder { ring: Ring::new(capacity) }
    }

    /// Records one event.
    #[inline]
    pub fn record(&mut self, at_instr: u64, kind: FlightKind) {
        self.ring.push(FlightEvent { at_instr, kind });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events ever recorded (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.ring.total()
    }

    /// Events lost to the ring's fixed capacity.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    fn func_name(program: &VmProgram, func: FuncId) -> &str {
        program
            .funcs
            .get(func as usize)
            .map(|f| f.name.as_str())
            .unwrap_or("<unknown>")
    }

    /// Renders the retained events oldest-first as a human-readable dump,
    /// with a header stating how much of the run the ring still covers.
    pub fn dump(&self, program: &VmProgram) -> String {
        let mut out = format!(
            "--- flight recorder: last {} of {} events ({} dropped) ---\n",
            self.len(),
            self.total(),
            self.dropped()
        );
        for e in self.events() {
            out.push_str(&format!("[instr {:>8}] ", e.at_instr));
            match e.kind {
                FlightKind::Call { kind, func } => {
                    out.push_str(&format!(
                        "{:<8} {}\n",
                        kind.label(),
                        FlightRecorder::func_name(program, func)
                    ));
                }
                FlightKind::IcMiss { site, class, func } => {
                    out.push_str(&format!(
                        "ic-miss  site {site} class {class} -> {}\n",
                        FlightRecorder::func_name(program, func)
                    ));
                }
                FlightKind::Gc { kind, live_slots, capacity_slots } => {
                    out.push_str(&format!(
                        "gc-{}: live {live_slots}/{capacity_slots} slots\n",
                        kind.label()
                    ));
                }
                FlightKind::TierUp { func } => {
                    out.push_str(&format!(
                        "tier-up  {}\n",
                        FlightRecorder::func_name(program, func)
                    ));
                }
                FlightKind::Deopt { site, class, func } => {
                    out.push_str(&format!(
                        "deopt    site {site} class {class} in {}\n",
                        FlightRecorder::func_name(program, func)
                    ));
                }
                FlightKind::Trap { error, func, pc } => {
                    out.push_str(&format!(
                        "trap     {error} in {} @ pc {pc}\n",
                        FlightRecorder::func_name(program, func)
                    ));
                }
            }
        }
        out
    }
}
