//! The register VM: executes bytecode over tagged words with the semispace
//! GC heap. No instruction allocates implicitly — the heap statistics after a
//! run *prove* the §4.2 claim that compiled programs only allocate at
//! explicit `new`/literals (plus closure cells, reported separately).
//!
//! The dispatch loop is **allocation-free in steady state** (the Rust side,
//! not just the VM heap): call frames keep their return registers in inline
//! storage ([`RetSlots`], spilling only for >2 returns — counted by
//! [`VmStats::ret_spills`]), arguments are copied directly between stack
//! frames with no temporary `Vec`, the value stack is pre-sized from the
//! static max-frame analysis done at lowering/fusion time
//! ([`crate::VmProgram::max_frame_regs`]), and the fuel check runs only at
//! loop back-edges and calls — the two places a program can cycle — instead
//! of once per instruction.
//!
//! Virtual calls go through **monomorphic inline caches** (Hölzle): each
//! `CallVirt` site caches its last (class-id → callee) pair and skips the
//! vtable load on a hit. Hit/miss counts are in [`VmStats`].

use crate::bytecode::*;
use crate::flight::{CallKind, FlightKind, FlightRecorder};
use crate::fuse::{tier_fuse_func, TierFeedback, TieredBody};
use crate::profile::{GcEvent, RuntimeProfile, TraceLog, VmProfile};
use crate::tier::{site_speculation, Speculation, TierState};
use std::rc::Rc;
use std::time::Instant;
use vgl_runtime::heap::GcRecord;
use vgl_ir::ops::{self, Exception};
use vgl_ir::Builtin;
use vgl_runtime::heap::{
    self, as_i32, from_i32, is_ref, CellKind, Heap, HeapStats, NeedsGc, Word, NULL,
};

/// Default nursery size in slots (128 KiB of tagged words): small enough
/// that minor pauses stay far below a full-heap copy, large enough that
/// short-lived request/response churn dies in place without promotion.
pub const DEFAULT_NURSERY_SLOTS: usize = 1 << 14;

/// Why execution stopped abnormally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// A language-level exception.
    Exception(Exception),
    /// The configured instruction budget ran out.
    OutOfFuel,
    /// The program has no main function.
    NoMain,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Exception(e) => write!(f, "{e}"),
            VmError::OutOfFuel => write!(f, "out of fuel"),
            VmError::NoMain => write!(f, "program has no main"),
        }
    }
}

impl std::error::Error for VmError {}

/// Execution statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct VmStats {
    /// Instructions executed.
    pub instrs: u64,
    /// Calls performed (all kinds).
    pub calls: u64,
    /// Virtual dispatches.
    pub virtual_calls: u64,
    /// Closure invocations. Note there is **no calling-convention check**:
    /// normalization made every function scalar, so arities always match
    /// (E6's compiled side).
    pub closure_calls: u64,
    /// Inline-cache hits: `CallVirt` sites whose receiver class matched the
    /// cached class, skipping the vtable load.
    pub ic_hits: u64,
    /// Inline-cache misses (first execution of a site, or a megamorphic
    /// receiver change); each miss refills the cache.
    pub ic_misses: u64,
    /// Return-register lists that spilled to the Rust heap because a callee
    /// returns more than [`RET_INLINE`] values. Zero for all-scalar code —
    /// the steady-state dispatch loop performs **no Rust-side allocation**.
    pub ret_spills: u64,
    /// Functions promoted to the hot tier (counting re-tiers).
    pub tier_ups: u64,
    /// Guard failures that deoptimized a frame back to its baseline body.
    pub deopts: u64,
    /// Devirtualized virtual calls dispatched through a passing
    /// `CallGuard` receiver-class guard.
    pub guarded_calls: u64,
    /// Virtual calls whose one-instruction callee ran inline via
    /// `CallInline` — no frame was pushed.
    pub inlined_calls: u64,
    /// Heap statistics (tuple_boxes is always 0 — E1's compiled side).
    pub heap: HeapStats,
}

impl VmStats {
    /// Inline-cache hit rate in `[0, 1]`, or 1.0 when no virtual calls ran.
    pub fn ic_hit_rate(&self) -> f64 {
        let total = self.ic_hits + self.ic_misses;
        if total == 0 {
            1.0
        } else {
            self.ic_hits as f64 / total as f64
        }
    }
}

/// Return registers kept inline in the frame; larger lists spill.
pub const RET_INLINE: usize = 2;

/// A call frame's return-destination registers: inline array for the common
/// ≤[`RET_INLINE`] case, boxed slice fallback for wide multi-returns
/// (normalized tuples can return up to 16 scalars).
enum RetSlots {
    Inline { len: u8, regs: [Reg; RET_INLINE] },
    Spill(Box<[Reg]>),
}

impl RetSlots {
    #[inline]
    fn new(rets: &[Reg], spills: &mut u64) -> RetSlots {
        if rets.len() <= RET_INLINE {
            let mut regs = [0; RET_INLINE];
            regs[..rets.len()].copy_from_slice(rets);
            RetSlots::Inline { len: rets.len() as u8, regs }
        } else {
            *spills += 1;
            RetSlots::Spill(rets.into())
        }
    }

    #[inline]
    fn as_slice(&self) -> &[Reg] {
        match self {
            RetSlots::Inline { len, regs } => &regs[..*len as usize],
            RetSlots::Spill(b) => b,
        }
    }
}

/// One monomorphic inline-cache entry: the last receiver class seen at a
/// `CallVirt` site and the callee its vtable resolved to.
#[derive(Clone, Copy)]
struct IcEntry {
    class: u32,
    func: FuncId,
}

/// No class has this id; an entry holding it always misses.
const IC_EMPTY: u32 = u32::MAX;

struct FrameInfo {
    func: FuncId,
    pc: usize,
    base: usize,
    rets: RetSlots,
    /// `stats.instrs` at frame entry — the runtime profiler derives
    /// inclusive instruction counts from this at frame exit.
    entry_instr: u64,
    /// Instructions retired by completed callees of this frame; the
    /// profiler subtracts it from the inclusive total at frame exit to
    /// get the exclusive share without any bookkeeping at call time.
    child_instrs: u64,
    /// The hot-tier body this frame executes, pinned at frame push — `None`
    /// runs the baseline body. The `Rc` keeps the code alive even if the
    /// function re-tiers or deoptimizes while this frame is live; tier
    /// transitions only affect *future* frame pushes (no on-stack
    /// replacement), except that a failing guard clears this frame's own
    /// handle as it transfers to the baseline body.
    code: Option<Rc<TieredBody>>,
}

/// The virtual machine.
pub struct Vm<'p> {
    program: &'p VmProgram,
    heap: Heap,
    globals: Vec<Word>,
    stack: Vec<Word>,
    frames: Vec<FrameInfo>,
    /// One entry per `CallVirt` site (dense `site` indices from lowering).
    ic: Vec<IcEntry>,
    out: Vec<u8>,
    /// Statistics.
    pub stats: VmStats,
    /// `u64::MAX` when unbounded, so the hot check is one compare.
    fuel_limit: u64,
    /// Boxed so the disabled case costs the dispatch loop nothing: the loop
    /// is monomorphized over a `PROFILE` const and picked once per run.
    profile: Option<Box<VmProfile>>,
    /// Per-function hotness counters (calls, back-edge ticks, incl/excl
    /// retired instructions). Held inline with empty rows when disabled:
    /// every hook gates on `rows.get_mut(func)`, so the disabled case is
    /// one always-failing bounds check and the enabled case touches one
    /// packed row — checked only at calls, returns, and back-edges, never
    /// per instruction, which keeps it inside the `bench_obs` 5% gate.
    hotness: RuntimeProfile,
    /// When true, the runtime profiler also maintains exact
    /// inclusive/exclusive retired-instruction counts at every frame exit
    /// (precise mode — costs more than the default tick sampling).
    hot_precise: bool,
    /// `stats.instrs` at the last call/return boundary. The profiler
    /// attributes the instructions retired since the previous boundary to
    /// the function that was running — exclusive counts without touching
    /// the caller's frame on every return.
    /// Wall-clock function spans + GC instants for `vglc trace`.
    tracelog: Option<Box<TraceLog>>,
    /// Crash flight recorder (`--flight-record`).
    flight: Option<Box<FlightRecorder>>,
    /// Tiered-execution state ([`Vm::enable_tiering`]): per-function
    /// hot-tier bodies, re-tier schedule, and speculation bookkeeping.
    /// Boxed like the profilers; the dispatch loop is monomorphized over a
    /// `TIER` const so the disabled case costs nothing.
    tier: Option<Box<TierState>>,
    /// Bumped on every frame push, pop, and deopt. The dispatch loop keys
    /// its cached tier-body handle on this, so the per-instruction cost of
    /// tiering is one compare instead of an `Rc` clone.
    code_gen: u64,
}

impl<'p> Vm<'p> {
    /// Creates a VM over a compiled program with the given heap size (slots)
    /// and the default nursery ([`DEFAULT_NURSERY_SLOTS`]).
    pub fn new(program: &'p VmProgram) -> Vm<'p> {
        Vm::with_heap_config(program, 1 << 20, DEFAULT_NURSERY_SLOTS)
    }

    /// Creates a VM with a specific heap capacity in slots and **no
    /// nursery** — the pure semispace collector (every collection major).
    pub fn with_heap(program: &'p VmProgram, heap_slots: usize) -> Vm<'p> {
        Vm::with_heap_config(program, heap_slots, 0)
    }

    /// Creates a VM with a specific heap capacity and nursery size in
    /// slots; `nursery_slots == 0` disables the generational split.
    pub fn with_heap_config(
        program: &'p VmProgram,
        heap_slots: usize,
        nursery_slots: usize,
    ) -> Vm<'p> {
        Vm {
            program,
            heap: Heap::with_nursery(heap_slots, nursery_slots),
            globals: (0..program.global_count)
                .map(|i| {
                    if program.global_nullable.get(i).copied().unwrap_or(false) {
                        NULL
                    } else {
                        0
                    }
                })
                .collect(),
            // Pre-size from the static max-frame analysis: room for a
            // healthy call depth of the largest frame before any realloc.
            stack: Vec::with_capacity((program.max_frame_regs * 64).max(4096)),
            frames: Vec::with_capacity(64),
            ic: vec![IcEntry { class: IC_EMPTY, func: 0 }; program.virt_sites],
            out: Vec::new(),
            stats: VmStats::default(),
            fuel_limit: u64::MAX,
            profile: None,
            hotness: RuntimeProfile::default(),
            hot_precise: false,
            tracelog: None,
            flight: None,
            tier: None,
            code_gen: 0,
        }
    }

    /// Limits execution to an instruction budget. The budget is checked at
    /// loop back-edges and calls (the only ways a program can run forever),
    /// so a run may overshoot by the length of one straight-line block.
    pub fn set_fuel(&mut self, instrs: u64) {
        self.fuel_limit = instrs;
    }

    /// Turns on profiling: per-opcode retired-instruction histogram and GC
    /// pause events, readable afterwards via [`Vm::profile`].
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::default());
        }
    }

    /// The profile collected so far, when profiling is enabled.
    pub fn profile(&self) -> Option<&VmProfile> {
        self.profile.as_deref()
    }

    /// Consumes the collected profile.
    pub fn take_profile(&mut self) -> Option<VmProfile> {
        self.profile.take().map(|b| *b)
    }

    /// Turns on the per-function runtime (hotness) profiler: call counts
    /// plus coarse cost sampling — one tick per loop back-edge, attributed
    /// to the running function at the existing fuel-check points. This is
    /// the low-overhead production configuration tier-up will consume;
    /// read the result via [`Vm::runtime_profile`]. Fully deterministic —
    /// no clocks — so output stays byte-identical.
    pub fn enable_runtime_profiling(&mut self) {
        if self.hotness.rows.is_empty() {
            self.hotness = RuntimeProfile::new(self.program.funcs.len());
        }
    }

    /// [`Vm::enable_runtime_profiling`] plus exact inclusive/exclusive
    /// retired-instruction accounting at every frame exit. Still
    /// deterministic, but the extra per-return work costs more than the
    /// default tick sampling — use for offline analysis (`vglc stats`,
    /// `vglc profile`), not for always-on telemetry.
    pub fn enable_runtime_profiling_precise(&mut self) {
        self.enable_runtime_profiling();
        self.hot_precise = true;
    }

    /// The runtime profile collected so far, when enabled.
    pub fn runtime_profile(&self) -> Option<&RuntimeProfile> {
        if self.hotness.rows.is_empty() {
            None
        } else {
            Some(&self.hotness)
        }
    }

    /// Consumes the collected runtime profile.
    pub fn take_runtime_profile(&mut self) -> Option<RuntimeProfile> {
        if self.hotness.rows.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.hotness))
        }
    }

    /// Turns on tiered execution: every function starts in the cheap
    /// unfused (baseline) tier, and when its sampled hotness — calls plus
    /// back-edge ticks — crosses `threshold` (clamped to ≥ 1) the VM
    /// re-fuses it using its own runtime profile: IC-feedback
    /// devirtualization behind receiver-class guards, profile-selected
    /// superinstructions, and deoptimization back to the baseline body on
    /// guard failure. Implies [`Vm::enable_runtime_profiling`] (tiering
    /// consumes the sampling rows).
    pub fn enable_tiering(&mut self, threshold: u64) {
        self.enable_runtime_profiling();
        if self.tier.is_none() {
            self.tier = Some(Box::new(TierState::new(self.program, threshold)));
        }
    }

    /// The tiering state, when enabled — `vglc disasm --tiered` and the
    /// tier tests read hot-tier bodies and megamorphic marks through this.
    pub fn tier_state(&self) -> Option<&TierState> {
        self.tier.as_deref()
    }

    /// Turns on the wall-clock trace log for Chrome-trace export: one span
    /// per function execution (capped at `max_spans`) plus GC instants.
    pub fn enable_trace_log(&mut self, max_spans: usize) {
        if self.tracelog.is_none() {
            self.tracelog = Some(Box::new(TraceLog::new(max_spans)));
        }
    }

    /// Consumes the collected trace log.
    pub fn take_trace_log(&mut self) -> Option<TraceLog> {
        self.tracelog.take().map(|b| *b)
    }

    /// Turns on the crash flight recorder, keeping the last `capacity`
    /// runtime events (calls, IC misses, GC, traps).
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        if self.flight.is_none() {
            self.flight = Some(Box::new(FlightRecorder::new(capacity)));
        }
    }

    /// The flight recorder, when enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_deref()
    }

    /// Renders the flight recorder's dump (oldest event first), when
    /// enabled and non-empty.
    pub fn flight_dump(&self) -> Option<String> {
        match self.flight.as_deref() {
            Some(fr) if !fr.is_empty() => Some(fr.dump(self.program)),
            _ => None,
        }
    }

    /// Turns on the heap's per-collection telemetry timeline.
    pub fn enable_gc_timeline(&mut self) {
        self.heap.enable_timeline();
    }

    /// The heap's telemetry timeline (empty when not enabled).
    pub fn gc_timeline(&self) -> &[GcRecord] {
        self.heap.timeline()
    }

    /// Captured output.
    pub fn output(&self) -> String {
        String::from_utf8_lossy(&self.out).into_owned()
    }

    /// Runs global initializers then `main`; returns main's return words.
    pub fn run(&mut self) -> Result<Vec<Word>, VmError> {
        let Some(main) = self.program.main else {
            return Err(VmError::NoMain);
        };
        for (g, fid) in self.program.global_inits.clone() {
            let vals = self.call_function(fid, &[])?;
            self.globals[g as usize] = vals.first().copied().unwrap_or(0);
        }
        self.call_function(main, &[])
    }

    /// Calls a function with arguments (testing hook).
    pub fn call_function(&mut self, func: FuncId, args: &[Word]) -> Result<Vec<Word>, VmError> {
        let f = &self.program.funcs[func as usize];
        debug_assert_eq!(args.len(), f.param_count, "arity calling {}", f.name);
        let base = self.stack.len();
        self.stack.resize(base + f.reg_count, 0);
        self.stack[base..base + args.len()].copy_from_slice(args);
        let ret_count = f.ret_count;
        if let Some(h) = self.hotness.rows.get_mut(func as usize) {
            h.calls += 1;
        }
        if let Some(t) = self.tracelog.as_deref_mut() {
            t.enter(func);
        }
        if let Some(fr) = self.flight.as_deref_mut() {
            fr.record(self.stats.instrs, FlightKind::Call { kind: CallKind::Static, func });
        }
        self.code_gen = self.code_gen.wrapping_add(1);
        self.frames.push(FrameInfo {
            func,
            pc: 0,
            base,
            rets: RetSlots::Inline { len: 0, regs: [0; RET_INLINE] },
            entry_instr: self.stats.instrs,
            child_instrs: 0,
            code: self
                .tier
                .as_deref()
                .and_then(|t| t.slots[func as usize].body.clone()),
        });
        let depth = self.frames.len();
        // Monomorphize the dispatch loop over the profilers once per run:
        // the disabled cases pay nothing per instruction or per call, and
        // the enabled hooks compile to straight-line counter updates.
        // HOT: 0 = off, 1 = sampling (calls + back-edge ticks), 2 = precise
        // (sampling plus exact inclusive/exclusive accounting per return).
        // TIER requires the sampling rows, so it never combines with HOT=0.
        let hot = match (self.hotness.rows.is_empty(), self.hot_precise) {
            (true, _) => 0,
            (false, false) => 1,
            (false, true) => 2,
        };
        let tier = self.tier.is_some();
        let r = match (self.profile.is_some(), hot, tier) {
            (false, 0, _) => self.interp_until::<false, 0, false>(depth - 1),
            (false, 1, false) => self.interp_until::<false, 1, false>(depth - 1),
            (false, 1, true) => self.interp_until::<false, 1, true>(depth - 1),
            (false, _, false) => self.interp_until::<false, 2, false>(depth - 1),
            (false, _, true) => self.interp_until::<false, 2, true>(depth - 1),
            (true, 0, _) => self.interp_until::<true, 0, false>(depth - 1),
            (true, 1, false) => self.interp_until::<true, 1, false>(depth - 1),
            (true, 1, true) => self.interp_until::<true, 1, true>(depth - 1),
            (true, _, false) => self.interp_until::<true, 2, false>(depth - 1),
            (true, _, true) => self.interp_until::<true, 2, true>(depth - 1),
        };
        match r {
            Ok(values) => {
                debug_assert_eq!(values.len(), ret_count);
                Ok(values)
            }
            Err(e) => {
                // Record the trap before unwinding: the deepest frame is
                // still on the stack and names the faulting function.
                if let Some(fr) = self.flight.as_deref_mut() {
                    let (tf, tpc) =
                        self.frames.last().map(|f| (f.func, f.pc)).unwrap_or((func, 0));
                    fr.record(
                        self.stats.instrs,
                        FlightKind::Trap { error: e, func: tf, pc: tpc },
                    );
                }
                if let Some(t) = self.tracelog.as_deref_mut() {
                    t.close_all();
                }
                self.frames.truncate(depth - 1);
                self.stack.truncate(base);
                Err(e)
            }
        }
    }

    /// Runs frames until the frame stack drops back to `floor`, returning
    /// the popped frame's return values.
    fn interp_until<const PROFILE: bool, const HOT: u8, const TIER: bool>(
        &mut self,
        floor: usize,
    ) -> Result<Vec<Word>, VmError> {
        let program: &'p VmProgram = self.program;
        // The top frame's pinned tier body. Holding a clone of the frame's
        // `Rc` handle keeps the instruction borrow independent of `self`,
        // so deopt can swap the frame's handle mid-arm; keying the cache on
        // `code_gen` (bumped at every frame push, pop, and deopt) makes the
        // per-instruction cost one compare instead of an `Rc` clone.
        let mut tier_code: Option<Rc<TieredBody>> = None;
        let mut tier_gen: u64 = u64::MAX;
        loop {
            self.stats.instrs += 1;
            let fi = self.frames.len() - 1;
            let (func, pc, base) = {
                let f = &self.frames[fi];
                (f.func, f.pc, f.base)
            };
            // Default: advance to the next instruction.
            self.frames[fi].pc = pc + 1;
            if TIER && tier_gen != self.code_gen {
                tier_gen = self.code_gen;
                tier_code = self.frames[fi].code.clone();
            }
            let instr = match if TIER { tier_code.as_deref() } else { None } {
                Some(t) => &t.code[pc],
                None => {
                    let i = &program.funcs[func as usize].code[pc];
                    if TIER {
                        // Histogram only while in the baseline tier: this
                        // is the profile that picks the hot tier's fusion
                        // patterns, and the hot tier itself stays free of
                        // per-instruction bookkeeping.
                        if let Some(t) = self.tier.as_deref_mut() {
                            t.hist[func as usize][i.opcode()] += 1;
                        }
                    }
                    i
                }
            };
            if PROFILE {
                if let Some(p) = self.profile.as_deref_mut() {
                    p.opcodes[instr.opcode()] += 1;
                }
            }
            macro_rules! reg {
                ($r:expr) => {
                    self.stack[base + $r as usize]
                };
            }
            // Every loop in the bytecode crosses a backward branch, so the
            // fuel check lives here (and at calls) instead of per-instruction.
            macro_rules! jump {
                ($off:expr) => {{
                    let off = $off;
                    if off < 0 {
                        if self.stats.instrs >= self.fuel_limit {
                            return Err(VmError::OutOfFuel);
                        }
                        // Back-edge tick: the loop-hotness signal. Rides the
                        // existing fuel-check point so straight-line code
                        // never sees the profiler.
                        if HOT != 0 {
                            self.hotness.rows[func as usize].ticks += 1;
                            if TIER {
                                self.check_tier_up(func);
                            }
                        }
                    }
                    self.frames[fi].pc = (pc as i64 + off as i64) as usize;
                }};
            }
            macro_rules! check_fuel {
                () => {
                    if self.stats.instrs >= self.fuel_limit {
                        return Err(VmError::OutOfFuel);
                    }
                };
            }
            match instr {
                Instr::ConstI(d, v) => reg!(*d) = heap::scalar(*v),
                Instr::ConstNull(d) => reg!(*d) = NULL,
                Instr::ConstPool(d, ix) => {
                    let bytes = self.program.pool[*ix as usize].clone();
                    let r = self.alloc(CellKind::Array, 0, bytes.len())?;
                    for (i, b) in bytes.iter().enumerate() {
                        self.heap.set(r, i, heap::scalar(*b as i64));
                    }
                    self.stack[base + *d as usize] = r;
                }
                Instr::Mov(d, s) => reg!(*d) = reg!(*s),
                Instr::Bin(k, d, a, b) => {
                    let x = as_i32(reg!(*a));
                    let y = as_i32(reg!(*b));
                    reg!(*d) = bin_value(*k, x, y)?;
                }
                Instr::Neg(d, a) => {
                    let x = as_i32(reg!(*a));
                    reg!(*d) = from_i32(ops::int_sub(0, x));
                }
                Instr::Not(d, a) => {
                    let x = as_i32(reg!(*a));
                    reg!(*d) = heap::scalar(i64::from(x == 0));
                }
                Instr::EqRR(d, a, b) => {
                    let eq = reg!(*a) == reg!(*b);
                    reg!(*d) = heap::scalar(i64::from(eq));
                }
                Instr::EqClos(d, a, b) => {
                    let (x, y) = (reg!(*a), reg!(*b));
                    let eq = if x == y {
                        true
                    } else if x == NULL || y == NULL {
                        false
                    } else {
                        self.heap.get(x, 0) == self.heap.get(y, 0)
                            && self.heap.get(x, 1) == self.heap.get(y, 1)
                    };
                    self.stack[base + *d as usize] = heap::scalar(i64::from(eq));
                }
                Instr::Jump(off) => jump!(*off),
                Instr::BrFalse(c, off) => {
                    if as_i32(reg!(*c)) == 0 {
                        jump!(*off);
                    }
                }
                Instr::BrTrue(c, off) => {
                    if as_i32(reg!(*c)) != 0 {
                        jump!(*off);
                    }
                }
                Instr::Call { func: callee, args, rets } => {
                    self.stats.calls += 1;
                    check_fuel!();
                    let rets = RetSlots::new(rets, &mut self.stats.ret_spills);
                    self.note_call::<HOT, TIER>(*callee);
                    self.push_frame_args::<TIER>(*callee, CallKind::Static, base, None, args, rets);
                }
                Instr::CallVirt { slot, site, args, rets } => {
                    self.stats.calls += 1;
                    self.stats.virtual_calls += 1;
                    check_fuel!();
                    let recv = reg!(args[0]);
                    if recv == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let class = self.heap.meta(recv);
                    // Monomorphic inline cache: one compare against the last
                    // receiver class replaces the two-load vtable walk.
                    let cached = self.ic[*site as usize];
                    let callee = if cached.class == class {
                        self.stats.ic_hits += 1;
                        cached.func
                    } else {
                        self.stats.ic_misses += 1;
                        let f = self.program.classes[class as usize].vtable[*slot as usize];
                        self.ic[*site as usize] = IcEntry { class, func: f };
                        if TIER {
                            // Stability signal for speculation: a site that
                            // keeps missing is never devirtualized.
                            if let Some(t) = self.tier.as_deref_mut() {
                                t.site_miss[*site as usize] += 1;
                            }
                        }
                        if let Some(fr) = self.flight.as_deref_mut() {
                            fr.record(
                                self.stats.instrs,
                                FlightKind::IcMiss { site: *site, class, func: f },
                            );
                        }
                        f
                    };
                    let rets = RetSlots::new(rets, &mut self.stats.ret_spills);
                    self.note_call::<HOT, TIER>(callee);
                    self.push_frame_args::<TIER>(callee, CallKind::Virtual, base, None, args, rets);
                }
                Instr::CallGuard { class, func: callee, site, deopt_pc, args, rets } => {
                    // Speculative devirtualization (tier-only): one class
                    // compare replaces IC probe + vtable walk. A mismatching
                    // (or null) receiver deoptimizes this frame to the
                    // baseline body, which re-executes the site as a plain
                    // `CallVirt` — identical observable behaviour, including
                    // the null-check trap.
                    debug_assert!(TIER, "CallGuard outside tiered body");
                    let recv = reg!(args[0]);
                    let seen = if recv == NULL { IC_EMPTY } else { self.heap.meta(recv) };
                    if seen == *class {
                        self.stats.calls += 1;
                        self.stats.virtual_calls += 1;
                        self.stats.guarded_calls += 1;
                        check_fuel!();
                        let rets = RetSlots::new(rets, &mut self.stats.ret_spills);
                        self.note_call::<HOT, TIER>(*callee);
                        self.push_frame_args::<TIER>(
                            *callee,
                            CallKind::Virtual,
                            base,
                            None,
                            args,
                            rets,
                        );
                    } else {
                        self.deopt(fi, func, *site, *deopt_pc, seen);
                    }
                }
                Instr::CallInline { class, site, deopt_pc, op, args, rets } => {
                    // Speculatively inlined one-instruction leaf callee: the
                    // whole call collapses to the callee's single operation,
                    // with no frame push at all.
                    debug_assert!(TIER, "CallInline outside tiered body");
                    let recv = reg!(args[0]);
                    let seen = if recv == NULL { IC_EMPTY } else { self.heap.meta(recv) };
                    if seen == *class {
                        self.stats.calls += 1;
                        self.stats.virtual_calls += 1;
                        self.stats.inlined_calls += 1;
                        let v = match *op {
                            InlOp::Arg(p) => reg!(args[p as usize]),
                            InlOp::Const(c) => heap::scalar(c as i64),
                            InlOp::Bin(k, a, b) => {
                                let x = as_i32(reg!(args[a as usize]));
                                let y = as_i32(reg!(args[b as usize]));
                                bin_value(k, x, y)?
                            }
                            InlOp::BinI(k, a, imm) => {
                                let x = as_i32(reg!(args[a as usize]));
                                bin_value(k, x, imm)?
                            }
                            InlOp::Field(slot, obj) => {
                                let o = reg!(args[obj as usize]);
                                if o == NULL {
                                    return Err(VmError::Exception(Exception::NullCheck));
                                }
                                self.heap.get(o, slot as usize)
                            }
                        };
                        if let Some(&dst) = rets.first() {
                            reg!(dst) = v;
                        }
                    } else {
                        self.deopt(fi, func, *site, *deopt_pc, seen);
                    }
                }
                Instr::CallClos { clos, args, rets } => {
                    self.stats.calls += 1;
                    self.stats.closure_calls += 1;
                    check_fuel!();
                    let c = reg!(*clos);
                    if c == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let fnid = as_i32(self.heap.get(c, 0)) as FuncId;
                    let recv = self.heap.get(c, 1);
                    // NOTE: no calling-convention check here — arity is
                    // statically exact after normalization (§4.1/§4.2).
                    let rets = RetSlots::new(rets, &mut self.stats.ret_spills);
                    let prepend = (recv != NULL).then_some(recv);
                    self.note_call::<HOT, TIER>(fnid);
                    self.push_frame_args::<TIER>(fnid, CallKind::Closure, base, prepend, args, rets);
                }
                Instr::CallBuiltin { b, args, rets } => {
                    debug_assert!(args.len() <= 2, "builtin arity");
                    let mut argv = [0 as Word; 2];
                    for (i, &a) in args.iter().enumerate() {
                        argv[i] = reg!(a);
                    }
                    let r = self.builtin(*b, &argv[..args.len()])?;
                    if let (Some(&dst), Some(v)) = (rets.first(), r) {
                        reg!(dst) = v;
                    }
                }
                Instr::MakeClos { dst, func: f2, recv } => {
                    // Allocate FIRST: the receiver must be re-read from its
                    // register after a potential collection (registers are
                    // roots and get forwarded; a cached copy would dangle).
                    let (f2, dst, recv) = (*f2, *dst, *recv);
                    let c = self.alloc(CellKind::Closure, 0, 2)?;
                    let rv = recv
                        .map(|r| self.stack[base + r as usize])
                        .unwrap_or(NULL);
                    self.heap.set(c, 0, heap::scalar(f2 as i64));
                    // The fresh cell may be pre-tenured: barrier the receiver.
                    self.heap.set_ref(c, 1, rv);
                    self.stack[base + dst as usize] = c;
                }
                Instr::MakeClosVirt { dst, slot, recv } => {
                    let rv = reg!(*recv);
                    if rv == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let class = self.heap.meta(rv) as usize;
                    let callee = self.program.classes[class].vtable[*slot as usize];
                    let (dst, recv) = (*dst, *recv);
                    let c = self.alloc(CellKind::Closure, 0, 2)?;
                    // Re-read the receiver: it may have moved.
                    let rv = self.stack[base + recv as usize];
                    self.heap.set(c, 0, heap::scalar(callee as i64));
                    // The fresh cell may be pre-tenured: barrier the receiver.
                    self.heap.set_ref(c, 1, rv);
                    self.stack[base + dst as usize] = c;
                }
                Instr::NewObject { dst, class } => {
                    let n = self.program.classes[*class as usize].field_count;
                    let (dst, class) = (*dst, *class);
                    let r = self.alloc(CellKind::Object, class, n)?;
                    // Reference-typed fields default to null.
                    for (i, &nullable) in self.program.classes[class as usize]
                        .field_nullable
                        .clone()
                        .iter()
                        .enumerate()
                    {
                        if nullable {
                            self.heap.set(r, i, NULL);
                        }
                    }
                    self.stack[base + dst as usize] = r;
                }
                Instr::NewArray { dst, len, nullable } => {
                    let n = as_i32(reg!(*len));
                    if n < 0 {
                        return Err(VmError::Exception(Exception::BoundsCheck));
                    }
                    let (dst, nullable) = (*dst, *nullable);
                    let r = self.alloc(CellKind::Array, 0, n as usize)?;
                    if nullable {
                        for i in 0..n as usize {
                            self.heap.set(r, i, NULL);
                        }
                    }
                    self.stack[base + dst as usize] = r;
                }
                Instr::ArrayLit { dst, elems } => {
                    let elems = elems.clone();
                    let dst = *dst;
                    let r = self.alloc(CellKind::Array, 0, elems.len())?;
                    for (i, e) in elems.iter().enumerate() {
                        let v = self.stack[base + *e as usize];
                        // Elements may be references and the fresh array may
                        // be pre-tenured: store through the barrier.
                        self.heap.set_ref(r, i, v);
                    }
                    self.stack[base + dst as usize] = r;
                }
                Instr::ArrayLen { dst, arr } => {
                    let a = reg!(*arr);
                    if a == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let n = self.heap.len(a);
                    reg!(*dst) = heap::scalar(n as i64);
                }
                Instr::ArrayGet { dst, arr, idx } => {
                    let a = reg!(*arr);
                    if a == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let i = as_i32(reg!(*idx));
                    if i < 0 || i as usize >= self.heap.len(a) {
                        return Err(VmError::Exception(Exception::BoundsCheck));
                    }
                    reg!(*dst) = self.heap.get(a, i as usize);
                }
                Instr::ArraySet { arr, idx, val } => {
                    let a = reg!(*arr);
                    if a == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let i = as_i32(reg!(*idx));
                    if i < 0 || i as usize >= self.heap.len(a) {
                        return Err(VmError::Exception(Exception::BoundsCheck));
                    }
                    let v = reg!(*val);
                    self.heap.set(a, i as usize, v);
                }
                Instr::ArraySetRef { arr, idx, val } => {
                    let a = reg!(*arr);
                    if a == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let i = as_i32(reg!(*idx));
                    if i < 0 || i as usize >= self.heap.len(a) {
                        return Err(VmError::Exception(Exception::BoundsCheck));
                    }
                    let v = reg!(*val);
                    self.heap.set_ref(a, i as usize, v);
                }
                Instr::FieldGet { dst, obj, slot } => {
                    let o = reg!(*obj);
                    if o == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    reg!(*dst) = self.heap.get(o, *slot as usize);
                }
                Instr::FieldSet { obj, slot, val } => {
                    let o = reg!(*obj);
                    if o == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let v = reg!(*val);
                    self.heap.set(o, *slot as usize, v);
                }
                Instr::FieldSetRef { obj, slot, val } => {
                    let o = reg!(*obj);
                    if o == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let v = reg!(*val);
                    self.heap.set_ref(o, *slot as usize, v);
                }
                Instr::GlobalGet { dst, g } => reg!(*dst) = self.globals[*g as usize],
                Instr::GlobalSet { g, src } => self.globals[*g as usize] = reg!(*src),
                Instr::ClassQuery { dst, obj, lo, hi } => {
                    let o = reg!(*obj);
                    let ok = if o == NULL || !is_ref(o) {
                        false
                    } else {
                        let pre = self.program.classes[self.heap.meta(o) as usize].pre;
                        *lo <= pre && pre <= *hi
                    };
                    reg!(*dst) = heap::scalar(i64::from(ok));
                }
                Instr::ClassCast { obj, lo, hi } => {
                    let o = reg!(*obj);
                    if o != NULL {
                        let pre = self.program.classes[self.heap.meta(o) as usize].pre;
                        if !(*lo <= pre && pre <= *hi) {
                            return Err(VmError::Exception(Exception::TypeCheck));
                        }
                    }
                }
                Instr::ClosQuery { dst, clos, test } => {
                    let c = reg!(*clos);
                    let ok = if c == NULL {
                        false
                    } else {
                        let fnid = as_i32(self.heap.get(c, 0)) as usize;
                        let bound = self.heap.get(c, 1) != NULL;
                        let t = &self.program.clos_tests[*test as usize];
                        if bound { t.allowed_bound[fnid] } else { t.allowed_unbound[fnid] }
                    };
                    reg!(*dst) = heap::scalar(i64::from(ok));
                }
                Instr::ClosCast { clos, test } => {
                    let c = reg!(*clos);
                    if c != NULL {
                        let fnid = as_i32(self.heap.get(c, 0)) as usize;
                        let bound = self.heap.get(c, 1) != NULL;
                        let t = &self.program.clos_tests[*test as usize];
                        let ok =
                            if bound { t.allowed_bound[fnid] } else { t.allowed_unbound[fnid] };
                        if !ok {
                            return Err(VmError::Exception(Exception::TypeCheck));
                        }
                    }
                }
                Instr::IntToByte { dst, src } => {
                    let v = as_i32(reg!(*src));
                    let b = ops::int_to_byte(v).map_err(VmError::Exception)?;
                    reg!(*dst) = heap::scalar(b as i64);
                }
                Instr::CheckNull(r) => {
                    if reg!(*r) == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                }
                Instr::IsNull(d, v) => {
                    let n = reg!(*v) == NULL;
                    reg!(*d) = heap::scalar(i64::from(n));
                }
                Instr::Ret(regs) => {
                    self.code_gen = self.code_gen.wrapping_add(1);
                    let frame = self.frames.pop().expect("frame present");
                    self.note_return::<HOT>(&frame);
                    if self.frames.len() == floor {
                        // Boundary of this `call_function`: the only
                        // allocation on the return path, once per entry.
                        let values: Vec<Word> =
                            regs.iter().map(|&r| self.stack[base + r as usize]).collect();
                        self.stack.truncate(frame.base);
                        return Ok(values);
                    }
                    let cbase = self.frames.last().expect("caller present").base;
                    // Copy returned words straight into the caller's
                    // registers: the regions are disjoint (cbase < base).
                    for (&dst, &src) in frame.rets.as_slice().iter().zip(regs.iter()) {
                        self.stack[cbase + dst as usize] = self.stack[base + src as usize];
                    }
                    self.stack.truncate(frame.base);
                }
                Instr::Trap(x) => return Err(VmError::Exception(*x)),

                // ---- superinstructions (fusion-emitted) -------------------
                Instr::BinI { k, dst, a, imm } => {
                    let x = as_i32(reg!(*a));
                    reg!(*dst) = bin_value(*k, x, *imm)?;
                }
                Instr::IncLocal { r, imm } => {
                    let slot = base + *r as usize;
                    self.stack[slot] =
                        from_i32(ops::int_add(as_i32(self.stack[slot]), *imm));
                }
                Instr::CmpBr { k, a, b, off, expect } => {
                    let x = as_i32(reg!(*a));
                    let y = as_i32(reg!(*b));
                    if cmp_value(*k, x, y) == *expect {
                        jump!(*off);
                    }
                }
                Instr::CmpBrI { k, a, imm, off, expect } => {
                    let x = as_i32(reg!(*a));
                    if cmp_value(*k, x, *imm) == *expect {
                        jump!(*off);
                    }
                }
                Instr::EqBr { a, b, off, expect } => {
                    if (reg!(*a) == reg!(*b)) == *expect {
                        jump!(*off);
                    }
                }
                Instr::NullBr { v, off, expect } => {
                    if (reg!(*v) == NULL) == *expect {
                        jump!(*off);
                    }
                }
                Instr::GlobalBin { k, dst, g, b } => {
                    let x = as_i32(self.globals[*g as usize]);
                    let y = as_i32(reg!(*b));
                    reg!(*dst) = bin_value(*k, x, y)?;
                }
                Instr::GlobalAccum { k, g, b } => {
                    let x = as_i32(self.globals[*g as usize]);
                    let y = as_i32(reg!(*b));
                    self.globals[*g as usize] = bin_value(*k, x, y)?;
                }
                Instr::FieldGetRet { obj, slot } => {
                    let o = reg!(*obj);
                    if o == NULL {
                        return Err(VmError::Exception(Exception::NullCheck));
                    }
                    let v = self.heap.get(o, *slot as usize);
                    self.code_gen = self.code_gen.wrapping_add(1);
                    let frame = self.frames.pop().expect("frame present");
                    self.note_return::<HOT>(&frame);
                    self.stack.truncate(frame.base);
                    if self.frames.len() == floor {
                        return Ok(vec![v]);
                    }
                    let cbase = self.frames.last().expect("caller present").base;
                    if let Some(&dst) = frame.rets.as_slice().first() {
                        self.stack[cbase + dst as usize] = v;
                    }
                }
            }
        }
    }



    /// Records a call in the runtime profile — a single counter bump; all
    /// cost attribution happens at frame exit. Kept out of
    /// [`Vm::push_frame_args`] so the frame-push fast path stays small.
    #[inline]
    fn note_call<const HOT: u8, const TIER: bool>(&mut self, callee: FuncId) {
        if HOT != 0 {
            self.hotness.rows[callee as usize].calls += 1;
            if TIER {
                // Checked before the frame push reads the tier slot, so the
                // threshold-crossing call itself already runs the hot tier.
                self.check_tier_up(callee);
            }
        }
    }

    /// Tier-up trigger, checked at the fuel-check points (calls and loop
    /// back-edges). A function (re-)tiers once its hotness weight — calls
    /// plus back-edge ticks — reaches its slot's `next_at`.
    #[inline]
    fn check_tier_up(&mut self, func: FuncId) {
        let Some(t) = self.tier.as_deref() else { return };
        let row = &self.hotness.rows[func as usize];
        let w = row.calls + row.ticks;
        if w >= t.slots[func as usize].next_at {
            self.tier_up(func, w);
        }
    }

    /// Re-runs fusion on one function using its own runtime profile and
    /// installs the result as the function's hot-tier body. Frames already
    /// running the old body keep their pinned `Rc` — there is no OSR; the
    /// new body applies to future pushes only.
    #[cold]
    fn tier_up(&mut self, func: FuncId, weight: u64) {
        let body = {
            let t = self.tier.as_deref().expect("tiering enabled");
            let ic = &self.ic;
            // Speculate only on sites the IC history says are monomorphic
            // and stable, and that never deopted (sticky mega mark).
            let spec = |site: u32| {
                let e = ic[site as usize];
                let cached = (e.class != IC_EMPTY).then_some((e.class, e.func));
                match site_speculation(cached, t.site_miss[site as usize], t.mega[site as usize])
                {
                    Speculation::Speculate { class, func } => Some((class, func)),
                    _ => None,
                }
            };
            let fb = TierFeedback {
                spec: &spec,
                hist: &t.hist[func as usize],
                hot_min: t.hot_min,
            };
            tier_fuse_func(self.program, func, &fb)
        };
        let t = self.tier.as_deref_mut().expect("tiering enabled");
        let threshold = t.threshold;
        let slot = &mut t.slots[func as usize];
        slot.body = Some(Rc::new(body));
        slot.tier_ups += 1;
        // Doubling schedule bounds re-fuse churn on functions that stay hot.
        slot.next_at = weight.max(threshold).saturating_mul(2);
        self.stats.tier_ups += 1;
        if let Some(fr) = self.flight.as_deref_mut() {
            fr.record(self.stats.instrs, FlightKind::TierUp { func });
        }
        if let Some(tl) = self.tracelog.as_deref_mut() {
            tl.record_tier(func, false);
        }
    }

    /// Guard failure: transfer the current frame back to the baseline body
    /// at the pc the failed site originated from, and mark the site
    /// megamorphic so no future tier-up re-speculates it. The tier pipeline
    /// only performs transformations that keep every baseline-live register
    /// valid at guard points, so the transfer is a plain pc swap.
    #[cold]
    fn deopt(&mut self, fi: usize, func: FuncId, site: u32, deopt_pc: u32, seen: u32) {
        self.stats.deopts += 1;
        let t = self.tier.as_deref_mut().expect("tiering enabled");
        t.mega[site as usize] = true;
        t.slots[func as usize].body = None;
        // Re-tier at the next trigger point: the replacement body has the
        // failed site de-speculated but keeps everything else.
        t.slots[func as usize].next_at = 0;
        self.frames[fi].code = None;
        self.frames[fi].pc = deopt_pc as usize;
        self.code_gen = self.code_gen.wrapping_add(1);
        if let Some(fr) = self.flight.as_deref_mut() {
            fr.record(self.stats.instrs, FlightKind::Deopt { site, class: seen, func });
        }
        if let Some(tl) = self.tracelog.as_deref_mut() {
            tl.record_tier(func, true);
        }
    }

    /// Closes a popped frame's telemetry: the inclusive total is the
    /// instructions retired since entry, the exclusive share is that minus
    /// the completed callees accumulated in `child_instrs`, and the caller
    /// inherits the inclusive total as its own child cost. One profile row
    /// and the (cache-hot) caller frame per return — nothing is tracked
    /// between boundaries. Also ends the frame's trace-log span.
    #[inline]
    fn note_return<const HOT: u8>(&mut self, frame: &FrameInfo) {
        if HOT == 2 {
            let inc = self.stats.instrs - frame.entry_instr;
            let h = &mut self.hotness.rows[frame.func as usize];
            h.incl_instrs += inc;
            h.excl_instrs += inc - frame.child_instrs;
            if let Some(parent) = self.frames.last_mut() {
                parent.child_instrs += inc;
            }
        }
        if let Some(t) = self.tracelog.as_deref_mut() {
            t.exit();
        }
    }

    /// Pushes a callee frame, copying `prepend` (a bound receiver) and then
    /// the caller registers `args` directly into the new frame — no
    /// temporary argument vector.
    #[inline]
    fn push_frame_args<const TIER: bool>(
        &mut self,
        callee: FuncId,
        kind: CallKind,
        caller_base: usize,
        prepend: Option<Word>,
        args: &[Reg],
        rets: RetSlots,
    ) {
        let f = &self.program.funcs[callee as usize];
        debug_assert_eq!(
            args.len() + usize::from(prepend.is_some()),
            f.param_count,
            "arity calling {}",
            f.name
        );
        if let Some(t) = self.tracelog.as_deref_mut() {
            t.enter(callee);
        }
        if let Some(fr) = self.flight.as_deref_mut() {
            fr.record(self.stats.instrs, FlightKind::Call { kind, func: callee });
        }
        let base = self.stack.len();
        self.stack.resize(base + f.reg_count, 0);
        let mut at = base;
        if let Some(w) = prepend {
            self.stack[at] = w;
            at += 1;
        }
        for &r in args {
            self.stack[at] = self.stack[caller_base + r as usize];
            at += 1;
        }
        self.code_gen = self.code_gen.wrapping_add(1);
        self.frames.push(FrameInfo {
            func: callee,
            pc: 0,
            base,
            rets,
            entry_instr: self.stats.instrs,
            child_instrs: 0,
            code: if TIER {
                self.tier.as_deref().and_then(|t| t.slots[callee as usize].body.clone())
            } else {
                None
            },
        });
    }

    fn alloc(&mut self, kind: CellKind, meta: u32, len: usize) -> Result<Word, VmError> {
        match self.heap.try_alloc(kind, meta, len) {
            Ok(r) => {
                self.stats.heap = self.heap.stats;
                Ok(r)
            }
            Err(NeedsGc) => {
                // The retry ladder: collect (minor when the heap is
                // generational and the mature space has headroom, else
                // major) → retry → force a major → retry → grow → retry.
                self.collect_now(false);
                let r = match self.heap.try_alloc(kind, meta, len) {
                    Ok(r) => r,
                    Err(NeedsGc) => {
                        // A minor may not have freed enough (survivors
                        // promote rather than vanish, and pre-tenured cells
                        // need mature space): escalate to a full copy.
                        self.collect_now(true);
                        match self.heap.try_alloc(kind, meta, len) {
                            Ok(r) => r,
                            Err(NeedsGc) => {
                                self.heap.grow(len + 64);
                                self.heap
                                    .try_alloc(kind, meta, len)
                                    .expect("allocation after grow")
                            }
                        }
                    }
                };
                self.stats.heap = self.heap.stats;
                Ok(r)
            }
        }
    }

    /// Runs one collection with the stack and globals as roots and records
    /// it in every enabled telemetry surface (profile, trace log, flight
    /// recorder). `force_major` bypasses the minor/major heuristic.
    fn collect_now(&mut self, force_major: bool) {
        let sp = self.stack.len();
        let mut stack = std::mem::take(&mut self.stack);
        let mut globals = std::mem::take(&mut self.globals);
        let pause_start =
            (self.profile.is_some() || self.tracelog.is_some()).then(Instant::now);
        let roots = &mut [&mut stack[..sp], &mut globals[..]];
        let info = if force_major {
            self.heap.collect_major(roots)
        } else {
            self.heap.collect(roots)
        };
        let pause = pause_start.map(|t| t.elapsed()).unwrap_or_default();
        if let Some(p) = self.profile.as_deref_mut() {
            p.gc_events.push(GcEvent {
                kind: info.kind,
                pause,
                live_slots: info.live_slots,
                copied_slots: info.copied_slots,
                capacity_slots: info.capacity_slots,
                at_instr: self.stats.instrs,
            });
        }
        if let Some(t) = self.tracelog.as_deref_mut() {
            t.record_gc(info.kind, pause, info.live_slots, info.capacity_slots);
        }
        if let Some(fr) = self.flight.as_deref_mut() {
            fr.record(
                self.stats.instrs,
                FlightKind::Gc {
                    kind: info.kind,
                    live_slots: info.live_slots,
                    capacity_slots: info.capacity_slots,
                },
            );
        }
        self.stack = stack;
        self.globals = globals;
    }

    fn builtin(&mut self, b: Builtin, args: &[Word]) -> Result<Option<Word>, VmError> {
        match b {
            Builtin::Puts => {
                let a = args[0];
                if a == NULL {
                    return Err(VmError::Exception(Exception::NullCheck));
                }
                for i in 0..self.heap.len(a) {
                    self.out.push(as_i32(self.heap.get(a, i)) as u8);
                }
                Ok(None)
            }
            Builtin::Puti => {
                let s = as_i32(args[0]).to_string();
                self.out.extend_from_slice(s.as_bytes());
                Ok(None)
            }
            Builtin::Putb => {
                let s = if as_i32(args[0]) != 0 { "true" } else { "false" };
                self.out.extend_from_slice(s.as_bytes());
                Ok(None)
            }
            Builtin::Putc => {
                self.out.push(as_i32(args[0]) as u8);
                Ok(None)
            }
            Builtin::Ln => {
                self.out.push(b'\n');
                Ok(None)
            }
            Builtin::Ticks => Ok(Some(heap::scalar(self.stats.instrs as i64))),
            Builtin::Error => Err(VmError::Exception(Exception::UserError)),
        }
    }
}

/// Evaluates one scalar binary operation (shared by `Bin` and `BinI`).
#[inline(always)]
fn bin_value(k: BinKind, x: i32, y: i32) -> Result<Word, VmError> {
    Ok(match k {
        BinKind::Add => from_i32(ops::int_add(x, y)),
        BinKind::Sub => from_i32(ops::int_sub(x, y)),
        BinKind::Mul => from_i32(ops::int_mul(x, y)),
        BinKind::Div => from_i32(ops::int_div(x, y).map_err(VmError::Exception)?),
        BinKind::Mod => from_i32(ops::int_mod(x, y).map_err(VmError::Exception)?),
        BinKind::Lt => heap::scalar(i64::from(x < y)),
        BinKind::Le => heap::scalar(i64::from(x <= y)),
        BinKind::Gt => heap::scalar(i64::from(x > y)),
        BinKind::Ge => heap::scalar(i64::from(x >= y)),
        BinKind::And => from_i32(x & y),
        BinKind::Or => from_i32(x | y),
        BinKind::Xor => from_i32(x ^ y),
        BinKind::Shl => from_i32(ops::int_shl(x, y)),
        BinKind::Shr => from_i32(ops::int_shr(x, y)),
    })
}

/// Evaluates an ordering comparison for `CmpBr`/`CmpBrI`. The fusion
/// validator guarantees `k` is one of the four orderings.
#[inline(always)]
fn cmp_value(k: BinKind, x: i32, y: i32) -> bool {
    match k {
        BinKind::Lt => x < y,
        BinKind::Le => x <= y,
        BinKind::Gt => x > y,
        BinKind::Ge => x >= y,
        _ => {
            debug_assert!(false, "{k:?} is not a comparison kind");
            false
        }
    }
}

/// Convenience: decode a returned word as an `i32` (ints, bytes, bools).
pub fn ret_as_int(words: &[Word]) -> Option<i32> {
    words.first().map(|&w| as_i32(w))
}

/// Convenience: true if the single returned word is a reference.
pub fn ret_is_ref(words: &[Word]) -> bool {
    words.first().map(|&w| is_ref(w) && w != NULL).unwrap_or(false)
}
