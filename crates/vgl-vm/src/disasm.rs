//! Bytecode disassembler, for `vglc disasm` and debugging — including the
//! [`side_by_side`] view `vglc disasm` uses to show each function before and
//! after superinstruction fusion.

use crate::bytecode::{BinKind, Instr, VmProgram};
use std::fmt::Write as _;

fn bin_op(k: BinKind) -> &'static str {
    match k {
        BinKind::Add => "+",
        BinKind::Sub => "-",
        BinKind::Mul => "*",
        BinKind::Div => "/",
        BinKind::Mod => "%",
        BinKind::Lt => "<",
        BinKind::Le => "<=",
        BinKind::Gt => ">",
        BinKind::Ge => ">=",
        BinKind::And => "&",
        BinKind::Or => "|",
        BinKind::Xor => "^",
        BinKind::Shl => "<<",
        BinKind::Shr => ">>",
    }
}

/// Renders one instruction.
pub fn disasm_instr(i: &Instr) -> String {
    use Instr::*;
    fn regs(rs: &[u16]) -> String {
        let v: Vec<String> = rs.iter().map(|r| format!("r{r}")).collect();
        format!("[{}]", v.join(", "))
    }
    match i {
        ConstI(d, v) => format!("r{d} <- const {v}"),
        ConstNull(d) => format!("r{d} <- null"),
        ConstPool(d, ix) => format!("r{d} <- pool[{ix}]"),
        Mov(d, s) => format!("r{d} <- r{s}"),
        Bin(k, d, a, b) => format!("r{d} <- r{a} {} r{b}", bin_op(*k)),
        Neg(d, a) => format!("r{d} <- -r{a}"),
        Not(d, a) => format!("r{d} <- !r{a}"),
        EqRR(d, a, b) => format!("r{d} <- r{a} == r{b}"),
        EqClos(d, a, b) => format!("r{d} <- r{a} ==clos r{b}"),
        Jump(off) => format!("jump {off:+}"),
        BrFalse(c, off) => format!("br_false r{c} {off:+}"),
        BrTrue(c, off) => format!("br_true r{c} {off:+}"),
        Call { func, args, rets } => format!("call f{func} {} -> {}", regs(args), regs(rets)),
        CallVirt { slot, site, args, rets } => {
            format!("call_virt slot={slot} ic#{site} {} -> {}", regs(args), regs(rets))
        }
        CallClos { clos, args, rets } => {
            format!("call_clos r{clos} {} -> {}", regs(args), regs(rets))
        }
        CallBuiltin { b, args, rets } => {
            format!("call_builtin {b:?} {} -> {}", regs(args), regs(rets))
        }
        MakeClos { dst, func, recv } => match recv {
            Some(r) => format!("r{dst} <- closure f{func} bound r{r}"),
            None => format!("r{dst} <- closure f{func}"),
        },
        MakeClosVirt { dst, slot, recv } => {
            format!("r{dst} <- closure vtable[{slot}] bound r{recv}")
        }
        NewObject { dst, class } => format!("r{dst} <- new class#{class}"),
        NewArray { dst, len, nullable } => {
            format!("r{dst} <- new array[r{len}]{}", if *nullable { " null-init" } else { "" })
        }
        ArrayLit { dst, elems } => format!("r{dst} <- array {}", regs(elems)),
        ArrayLen { dst, arr } => format!("r{dst} <- len r{arr}"),
        ArrayGet { dst, arr, idx } => format!("r{dst} <- r{arr}[r{idx}]"),
        ArraySet { arr, idx, val } => format!("r{arr}[r{idx}] <- r{val}"),
        ArraySetRef { arr, idx, val } => format!("r{arr}[r{idx}] <- r{val} !barrier"),
        FieldGet { dst, obj, slot } => format!("r{dst} <- r{obj}.{slot}"),
        FieldSet { obj, slot, val } => format!("r{obj}.{slot} <- r{val}"),
        FieldSetRef { obj, slot, val } => format!("r{obj}.{slot} <- r{val} !barrier"),
        GlobalGet { dst, g } => format!("r{dst} <- g{g}"),
        GlobalSet { g, src } => format!("g{g} <- r{src}"),
        ClassQuery { dst, obj, lo, hi } => format!("r{dst} <- r{obj} instanceof [{lo}..{hi}]"),
        ClassCast { obj, lo, hi } => format!("checkcast r{obj} [{lo}..{hi}]"),
        ClosQuery { dst, clos, test } => format!("r{dst} <- r{clos} isfunc test#{test}"),
        ClosCast { clos, test } => format!("checkfunc r{clos} test#{test}"),
        IntToByte { dst, src } => format!("r{dst} <- byte(r{src})"),
        CheckNull(r) => format!("checknull r{r}"),
        IsNull(d, v) => format!("r{d} <- r{v} == null"),
        Ret(rs) => format!("ret {}", regs(rs)),
        Trap(x) => format!("trap {x}"),
        BinI { k, dst, a, imm } => format!("r{dst} <- r{a} {} #{imm}", bin_op(*k)),
        IncLocal { r, imm } => format!("r{r} <- r{r} + #{imm}"),
        CmpBr { k, a, b, off, expect } => {
            format!("br if (r{a} {} r{b}) == {expect} {off:+}", bin_op(*k))
        }
        CmpBrI { k, a, imm, off, expect } => {
            format!("br if (r{a} {} #{imm}) == {expect} {off:+}", bin_op(*k))
        }
        EqBr { a, b, off, expect } => format!("br if (r{a} == r{b}) == {expect} {off:+}"),
        NullBr { v, off, expect } => format!("br if (r{v} == null) == {expect} {off:+}"),
        FieldGetRet { obj, slot } => format!("ret r{obj}.{slot}"),
        GlobalBin { k, dst, g, b } => format!("r{dst} <- g{g} {} r{b}", bin_op(*k)),
        GlobalAccum { k, g, b } => format!("g{g} <- g{g} {} r{b}", bin_op(*k)),
        CallGuard { class, func, site, deopt_pc, args, rets } => format!(
            "call_guard class#{class} f{func} ic#{site} {} -> {} !deopt@{deopt_pc}",
            regs(args),
            regs(rets)
        ),
        CallInline { class, site, deopt_pc, op, args, rets } => format!(
            "call_inline class#{class} ic#{site} {} {} -> {} !deopt@{deopt_pc}",
            inl_op(op),
            regs(args),
            regs(rets)
        ),
    }
}

fn inl_op(op: &crate::bytecode::InlOp) -> String {
    use crate::bytecode::InlOp;
    match op {
        InlOp::Arg(p) => format!("arg{p}"),
        InlOp::Const(c) => format!("const {c}"),
        InlOp::Bin(k, a, b) => format!("arg{a} {} arg{b}", bin_op(*k)),
        InlOp::BinI(k, a, imm) => format!("arg{a} {} #{imm}", bin_op(*k)),
        InlOp::Field(slot, obj) => format!("arg{obj}.{slot}"),
    }
}

/// Renders a whole program: classes, globals, and every function.
pub fn disasm(p: &VmProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; {} functions, {} classes, {} globals, {} instructions",
        p.funcs.len(),
        p.classes.len(),
        p.global_count,
        p.code_size()
    );
    for (i, c) in p.classes.iter().enumerate() {
        let vt: Vec<String> = c.vtable.iter().map(|f| format!("f{f}")).collect();
        let _ = writeln!(
            out,
            "class#{i} {} fields={} pre=[{}..{}] vtable=[{}]",
            c.name,
            c.field_count,
            c.pre,
            c.max_desc,
            vt.join(", ")
        );
    }
    for (i, f) in p.funcs.iter().enumerate() {
        let _ = writeln!(
            out,
            "\nf{i} {} (params={}, regs={}, rets={}):",
            f.name, f.param_count, f.reg_count, f.ret_count
        );
        for (pc, instr) in f.code.iter().enumerate() {
            let _ = writeln!(out, "  {pc:4}  {}", disasm_instr(instr));
        }
    }
    out
}

/// Renders two variants of the same program function-by-function in two
/// columns — `vglc disasm`'s before/after-fusion view. `before` and `after`
/// must have the same function list (fusion rewrites bodies in place).
pub fn side_by_side(before: &VmProgram, after: &VmProgram) -> String {
    assert_eq!(before.funcs.len(), after.funcs.len(), "same program, two variants");
    const COL: usize = 38;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; {} functions; {} instructions unfused, {} fused",
        before.funcs.len(),
        before.code_size(),
        after.code_size()
    );
    let _ = writeln!(out, "; {:<COL$} | -- fused --", "-- unfused --");
    for (i, (bf, af)) in before.funcs.iter().zip(after.funcs.iter()).enumerate() {
        let _ = writeln!(
            out,
            "\nf{i} {} (params={}, regs={}, rets={}):",
            bf.name, bf.param_count, bf.reg_count, bf.ret_count
        );
        let rows = bf.code.len().max(af.code.len());
        for pc in 0..rows {
            let left = bf
                .code
                .get(pc)
                .map(|x| format!("{pc:4}  {}", disasm_instr(x)))
                .unwrap_or_default();
            let right = af
                .code
                .get(pc)
                .map(|x| format!("{pc:4}  {}", disasm_instr(x)))
                .unwrap_or_default();
            let _ = writeln!(out, "  {left:<COL$} | {right}");
        }
    }
    out
}

/// Renders every currently-tiered function as a baseline | hot-tier
/// two-column view with guard sites annotated — `vglc disasm --tiered`.
/// `p` must be the program the [`crate::TierState`] was collected against
/// (the baseline bodies the deopt pcs refer to).
pub fn tiered_view(p: &VmProgram, tier: &crate::TierState) -> String {
    const COL: usize = 38;
    let mut out = String::new();
    let tiered: Vec<_> = tier.tiered().collect();
    let _ = writeln!(
        out,
        "; {} of {} functions tiered (threshold {})",
        tiered.len(),
        p.funcs.len(),
        tier.threshold()
    );
    let mega = tier.mega_sites();
    if !mega.is_empty() {
        let sites: Vec<String> = mega.iter().map(|s| format!("ic#{s}")).collect();
        let _ = writeln!(out, "; megamorphic (never re-speculated): {}", sites.join(", "));
    }
    for (func, body, tier_ups) in tiered {
        let f = &p.funcs[func as usize];
        let _ = writeln!(
            out,
            "\nf{func} {} (tier-ups={tier_ups}, guards={}, inlines={}, fused={}):",
            f.name, body.guards, body.inlines, body.fused
        );
        let _ = writeln!(out, "  {:<COL$} | -- tiered --", "-- baseline --");
        let rows = f.code.len().max(body.code.len());
        for pc in 0..rows {
            let left = f
                .code
                .get(pc)
                .map(|x| format!("{pc:4}  {}", disasm_instr(x)))
                .unwrap_or_default();
            let right = body
                .code
                .get(pc)
                .map(|x| format!("{pc:4}  {}", disasm_instr(x)))
                .unwrap_or_default();
            let _ = writeln!(out, "  {left:<COL$} | {right}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{VmFunc, VmProgram};

    #[test]
    fn disasm_renders_every_instruction_kind() {
        use vgl_ir::ops::Exception;
        use Instr::*;
        let instrs = vec![
            ConstI(0, 5),
            ConstNull(1),
            ConstPool(2, 0),
            Mov(0, 1),
            Bin(BinKind::Add, 0, 1, 2),
            Neg(0, 1),
            Not(0, 1),
            EqRR(0, 1, 2),
            EqClos(0, 1, 2),
            Jump(3),
            BrFalse(0, -2),
            BrTrue(0, 2),
            Call { func: 0, args: vec![1], rets: vec![2] },
            CallVirt { slot: 0, site: 0, args: vec![1], rets: vec![] },
            CallClos { clos: 0, args: vec![], rets: vec![1] },
            CallBuiltin { b: vgl_ir::Builtin::Ln, args: vec![], rets: vec![] },
            MakeClos { dst: 0, func: 1, recv: Some(2) },
            MakeClosVirt { dst: 0, slot: 1, recv: 2 },
            NewObject { dst: 0, class: 1 },
            NewArray { dst: 0, len: 1, nullable: true },
            ArrayLit { dst: 0, elems: vec![1, 2] },
            ArrayLen { dst: 0, arr: 1 },
            ArrayGet { dst: 0, arr: 1, idx: 2 },
            ArraySet { arr: 0, idx: 1, val: 2 },
            FieldGet { dst: 0, obj: 1, slot: 2 },
            FieldSet { obj: 0, slot: 1, val: 2 },
            GlobalGet { dst: 0, g: 1 },
            GlobalSet { g: 0, src: 1 },
            ClassQuery { dst: 0, obj: 1, lo: 2, hi: 3 },
            ClassCast { obj: 0, lo: 1, hi: 2 },
            ClosQuery { dst: 0, clos: 1, test: 0 },
            ClosCast { clos: 0, test: 0 },
            IntToByte { dst: 0, src: 1 },
            CheckNull(0),
            IsNull(0, 1),
            Ret(vec![0]),
            Trap(Exception::TypeCheck),
            BinI { k: BinKind::Add, dst: 0, a: 1, imm: 3 },
            IncLocal { r: 0, imm: 1 },
            CmpBr { k: BinKind::Lt, a: 0, b: 1, off: -2, expect: true },
            CmpBrI { k: BinKind::Ge, a: 0, imm: 10, off: 2, expect: false },
            EqBr { a: 0, b: 1, off: 1, expect: true },
            NullBr { v: 0, off: 1, expect: false },
            FieldGetRet { obj: 0, slot: 1 },
            GlobalBin { k: BinKind::Add, dst: 0, g: 1, b: 2 },
            GlobalAccum { k: BinKind::Add, g: 0, b: 1 },
            CallGuard {
                class: 2,
                func: 1,
                site: 0,
                deopt_pc: 4,
                args: vec![1],
                rets: vec![2],
            },
            CallInline {
                class: 2,
                site: 0,
                deopt_pc: 4,
                op: crate::bytecode::InlOp::Field(1, 0),
                args: vec![1],
                rets: vec![2],
            },
        ];
        for i in &instrs {
            assert!(!disasm_instr(i).is_empty());
        }
        let p = VmProgram {
            funcs: vec![VmFunc {
                name: "f".into(),
                param_count: 0,
                reg_count: 3,
                ret_count: 1,
                code: instrs,
            }],
            ..VmProgram::default()
        };
        let text = disasm(&p);
        assert!(text.contains("f0 f"));
        assert!(text.contains("trap !TypeCheckException"));
    }
}
