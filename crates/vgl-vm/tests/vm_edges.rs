//! VM-specific edge coverage: explicit frames allow very deep recursion,
//! register pressure beyond 200 live temps, integer boundary arithmetic,
//! and exact agreement of Virgil shift/div semantics across engines.

use vgl_passes::compile_pipeline;
use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};
use vgl_vm::{lower, ret_as_int, Vm};

fn compile_vm(src: &str) -> vgl_vm::VmProgram {
    let mut d = Diagnostics::new();
    let ast = parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse: {:?}", d.into_vec());
    let m = analyze(&ast, &mut d).unwrap_or_else(|| panic!("sema: {:#?}", d.into_vec()));
    let (compiled, _) = compile_pipeline(&m);
    lower(&compiled)
}

fn run_int(src: &str) -> i32 {
    let p = compile_vm(src);
    let mut vm = Vm::new(&p);
    vm.set_fuel(1 << 32);
    let words = vm.run().unwrap_or_else(|e| panic!("vm: {e}"));
    ret_as_int(&words).expect("int result")
}

#[test]
fn vm_handles_very_deep_recursion() {
    // 100 000 frames: the interpreter would blow the Rust stack; the VM's
    // frames are explicit heap-side vectors.
    let r = run_int(
        "def count(n: int) -> int { return n == 0 ? 0 : 1 + count(n - 1); }\n\
         def main() -> int { return count(100000); }",
    );
    assert_eq!(r, 100000);
}

#[test]
fn vm_register_pressure() {
    // A single expression with ~128 live temporaries. Compiling a 128-deep
    // expression tree recurses deeply in debug builds; use a roomy stack.
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(|| {
            let mut expr = String::from("1");
            for i in 2..=128 {
                expr = format!("({expr} + {i})");
            }
            let src = format!("def main() -> int {{ return {expr}; }}");
            assert_eq!(run_int(&src), (1..=128).sum::<i32>());
        })
        .expect("spawn")
        .join()
        .expect("no panic");
}

#[test]
fn vm_integer_boundaries() {
    assert_eq!(
        run_int(
            "def main() -> int {\n\
               var max = 0x7FFFFFFF;\n\
               var min = max + 1;           // wraps to i32::MIN\n\
               var n = 0;\n\
               if (min < 0) n = n + 1;\n\
               if (min - 1 == max) n = n + 10;\n\
               if (min / (0 - 1) == min) n = n + 100;  // MIN / -1 wraps\n\
               if (min % (0 - 1) == 0) n = n + 1000;\n\
               return n;\n\
             }"
        ),
        1111
    );
}

#[test]
fn vm_shift_semantics() {
    // Virgil: out-of-range shifts produce 0 (or the sign for >>).
    assert_eq!(
        run_int(
            "def main() -> int {\n\
               var n = 0;\n\
               if (1 << 32 == 0) n = n + 1;\n\
               if (1 << 100 == 0) n = n + 10;\n\
               if ((0 - 8) >> 100 == 0 - 1) n = n + 100;\n\
               if (8 >> 100 == 0) n = n + 1000;\n\
               if (1 << 31 < 0) n = n + 10000;\n\
               return n;\n\
             }"
        ),
        11111
    );
}

#[test]
fn vm_many_functions_and_vtables() {
    // A wide hierarchy: 20 subclasses each overriding v; array dispatch over
    // all of them exercises the preorder range tests and vtables.
    let mut src = String::from("class Base { def v() -> int { return 0; } }\n");
    for i in 1..=20 {
        src.push_str(&format!(
            "class C{i} extends Base {{ def v() -> int {{ return {i}; }} }}\n"
        ));
    }
    src.push_str("def main() -> int {\n  var xs: Array<Base> = [Base.new()");
    for i in 1..=20 {
        src.push_str(&format!(", C{i}.new()"));
    }
    src.push_str(
        "];\n  var s = 0;\n  for (i = 0; i < xs.length; i = i + 1) s = s + xs[i].v();\n  return s;\n}\n",
    );
    assert_eq!(run_int(&src), (1..=20).sum::<i32>());
}

#[test]
fn vm_closure_heavy_loop() {
    // Create and call closures in a loop; closure cells become garbage and
    // must be collected under a small heap.
    let src = "class K { def k: int; new(k) { } def add(x: int) -> int { return x + k; } }\n\
               def main() -> int {\n\
                 var s = 0;\n\
                 for (i = 0; i < 5000; i = i + 1) {\n\
                   var f = K.new(i % 7).add;\n\
                   s = s + f(1);\n\
                 }\n\
                 return s;\n\
               }";
    let p = compile_vm(src);
    let mut vm = Vm::with_heap(&p, 1024);
    vm.set_fuel(1 << 30);
    let words = vm.run().expect("runs");
    let expect: i32 = (0..5000).map(|i| 1 + i % 7).sum();
    assert_eq!(ret_as_int(&words), Some(expect));
    assert!(vm.stats.heap.collections > 0);
    assert!(vm.stats.heap.closures >= 5000);
    assert_eq!(vm.stats.heap.tuple_boxes, 0);
}

#[test]
fn vm_string_pool_reallocation() {
    // Each loop iteration materializes a fresh string from the pool;
    // mutating it must not affect later copies.
    let src = "def main() -> int {\n\
                 var total = 0;\n\
                 for (i = 0; i < 100; i = i + 1) {\n\
                   var s = \"ab\";\n\
                   s[0] = byte.!(int.!('a') + i % 26);\n\
                   total = total + int.!(s[0]);\n\
                 }\n\
                 return total;\n\
               }";
    let expect: i32 = (0..100).map(|i| 97 + i % 26).sum();
    assert_eq!(run_int(src), expect);
}
