//! Back-end optimizer integration tests: monomorphic inline caches, the
//! allocation-free dispatch loop's spill accounting, and fused-vs-unfused
//! behavioral equivalence on real compiled programs.

use vgl_passes::compile_pipeline;
use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};
use vgl_vm::{check_fused, fuse, lower, ret_as_int, Vm, VmProgram, RET_INLINE};

fn compile(src: &str) -> VmProgram {
    let mut d = Diagnostics::new();
    let ast = parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse: {:?}", d.into_vec());
    let mut d = Diagnostics::new();
    let module = analyze(&ast, &mut d).unwrap_or_else(|| panic!("sema: {:#?}", d.into_vec()));
    let (compiled, _) = compile_pipeline(&module);
    lower(&compiled)
}

fn run(p: &VmProgram) -> (Option<i32>, String, vgl_vm::VmStats) {
    let mut vm = Vm::new(p);
    vm.set_fuel(100_000_000);
    let r = vm.run().ok().and_then(|w| ret_as_int(&w));
    let out = vm.output();
    (r, out, vm.stats)
}

/// A dynamically monomorphic call site: one miss fills the cache, every
/// later call at the same site with the same receiver class hits. A second
/// receiver class through the same site costs exactly one more miss.
#[test]
fn inline_cache_counts_hits_and_misses() {
    let p = compile(
        "class A { def m() -> int { return 1; } }\n\
         class B extends A { def m() -> int { return 2; } }\n\
         def call100(o: A) -> int {\n\
             var s = 0;\n\
             for (i = 0; i < 100; i = i + 1) s = s + o.m();\n\
             return s;\n\
         }\n\
         def main() -> int { return call100(A.new()) + call100(B.new()); }",
    );
    let (r, _, stats) = run(&p);
    assert_eq!(r, Some(300));
    assert_eq!(stats.virtual_calls, 200);
    assert_eq!(stats.ic_hits + stats.ic_misses, 200, "every virtual call consults the IC");
    assert_eq!(stats.ic_misses, 2, "one miss per receiver-class transition");
    assert!(stats.ic_hit_rate() > 0.98, "hit rate {}", stats.ic_hit_rate());
}

/// A site that alternates receiver classes every call thrashes the
/// monomorphic cache — every call is a miss. Behavior must be unaffected.
#[test]
fn inline_cache_thrashes_on_polymorphic_site() {
    let p = compile(
        "class A { def m() -> int { return 1; } }\n\
         class B extends A { def m() -> int { return 2; } }\n\
         def main() -> int {\n\
             var a = A.new();\n\
             var b: A = B.new();\n\
             var s = 0;\n\
             for (i = 0; i < 50; i = i + 1) {\n\
                 var o = a;\n\
                 if (i % 2 == 0) o = b;\n\
                 s = s + o.m();\n\
             }\n\
             return s;\n\
         }",
    );
    let (r, _, stats) = run(&p);
    assert_eq!(r, Some(75));
    assert_eq!(stats.ic_misses, 50, "alternating receivers miss every time");
    assert_eq!(stats.ic_hits, 0);
}

/// Calls returning at most [`RET_INLINE`] values use the frame-inline return
/// slots: a call-heavy steady state performs zero Rust-side allocations.
#[test]
fn narrow_returns_never_spill() {
    assert_eq!(RET_INLINE, 2);
    let p = compile(
        "def swap(p: (int, int)) -> (int, int) { return (p.1, p.0); }\n\
         def main() -> int {\n\
             var t = (1, 2);\n\
             for (i = 0; i < 1000; i = i + 1) t = swap(t);\n\
             return t.0 + t.1;\n\
         }",
    );
    let (r, _, stats) = run(&p);
    assert_eq!(r, Some(3));
    assert!(stats.calls >= 1000, "loop body calls: {}", stats.calls);
    assert_eq!(stats.ret_spills, 0, "two scalar returns fit the inline slots");
    assert_eq!(stats.heap.tuple_boxes, 0);
}

/// Returns wider than [`RET_INLINE`] take the boxed spill path — counted,
/// correct, and still tuple-box-free on the VM heap.
#[test]
fn wide_returns_spill_and_stay_correct() {
    let p = compile(
        "def three(x: int) -> (int, int, int) { return (x, x + 1, x + 2); }\n\
         def main() -> int {\n\
             var s = 0;\n\
             for (i = 0; i < 10; i = i + 1) {\n\
                 var t = three(i);\n\
                 s = s + t.0 + t.1 + t.2;\n\
             }\n\
             return s;\n\
         }",
    );
    let (r, _, stats) = run(&p);
    assert_eq!(r, Some(165));
    assert!(stats.ret_spills >= 10, "wide returns must spill: {}", stats.ret_spills);
    assert_eq!(stats.heap.tuple_boxes, 0, "spills are frames, not heap tuples");
}

/// The full fusion pass is observationally invisible across a spread of
/// language features, shrinks code, validates, and keeps the VM heap free of
/// tuple boxes.
#[test]
fn fusion_is_observationally_invisible() {
    let sources = [
        // Loops + arithmetic (CmpBrI/IncLocal territory).
        "def main() -> int { var s = 0; for (i = 0; i < 37; i = i + 1) s = s + i * 3; return s; }",
        // Virtual dispatch + fields (FieldGetRet, IC interplay).
        "class P { var x: int; new(x) { } def get() -> int { return x; } }\n\
         class Q extends P { new(x: int) super(x * 2) { } }\n\
         def main() -> int {\n\
             var p: P = Q.new(10);\n\
             var s = 0;\n\
             for (i = 0; i < 10; i = i + 1) s = s + p.get();\n\
             return s;\n\
         }",
        // Null tests + early exits (NullBr/EqBr).
        "class N { var next: N; new(next) { } }\n\
         def len(n: N) -> int {\n\
             var c = 0;\n\
             for (x = n; x != null; x = x.next) c = c + 1;\n\
             return c;\n\
         }\n\
         def main() -> int {\n\
             var none: N;\n\
             return len(N.new(N.new(N.new(none))));\n\
         }",
        // Bound-method delegates (closure calls through the fused code).
        "class Adder { var k: int; new(k) { } def add(x: int) -> int { return x + k; } }\n\
         def main() -> int { var f = Adder.new(5).add; return f(10) + f(20); }",
    ];
    for src in sources {
        let unfused = compile(src);
        let mut fused = unfused.clone();
        let stats = fuse(&mut fused);
        let violations = check_fused(&fused);
        assert!(violations.is_empty(), "{src}\n{violations:?}");
        assert!(
            stats.instrs_after <= stats.instrs_before,
            "{src}: fusion grew code ({} -> {})",
            stats.instrs_before,
            stats.instrs_after
        );
        let (r1, o1, s1) = run(&unfused);
        let (r2, o2, s2) = run(&fused);
        assert_eq!(r1, r2, "{src}: results diverge");
        assert_eq!(o1, o2, "{src}: output diverges");
        assert_eq!(s2.heap.tuple_boxes, 0, "{src}: fused run boxed a tuple");
        assert_eq!(
            s1.heap.objects, s2.heap.objects,
            "{src}: fusion changed the dynamic allocation count"
        );
    }
}
