//! VM profiling invariants: profiling changes no observable behavior, the
//! opcode histogram accounts for every retired instruction, and GC events
//! mirror the heap's collection counters.

use vgl_passes::compile_pipeline;
use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};
use vgl_vm::{lower, ret_as_int, Vm, VmProgram, OPCODE_COUNT, OPCODE_NAMES};

fn compile(src: &str) -> VmProgram {
    let mut d = Diagnostics::new();
    let ast = parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse: {:?}", d.into_vec());
    let mut d = Diagnostics::new();
    let module = analyze(&ast, &mut d).unwrap_or_else(|| panic!("sema: {:#?}", d.into_vec()));
    let (compiled, _) = compile_pipeline(&module);
    lower(&compiled)
}

const CHURN: &str = "class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
    def sum(l: List<int>) -> int {\n\
      var s = 0;\n\
      for (x = l; x != null; x = x.tail) s = s + x.head;\n\
      return s;\n\
    }\n\
    def main() -> int {\n\
      var keep: List<int>;\n\
      var total = 0;\n\
      for (i = 0; i < 200; i = i + 1) {\n\
        keep = List.new(i, keep);\n\
        var garbage = List.new(i * 2, null);\n\
        total = total + garbage.head;\n\
      }\n\
      return sum(keep) + total;\n\
    }";

#[test]
fn profiling_disabled_is_free() {
    // Same program, with and without profiling: identical result, output,
    // and execution counters — profiling must observe, never perturb.
    let program = compile(CHURN);
    let mut plain = Vm::with_heap(&program, 512);
    let r1 = plain.run().expect("runs");
    assert!(plain.profile().is_none(), "profiling is off by default");

    let mut profiled = Vm::with_heap(&program, 512);
    profiled.enable_profiling();
    let r2 = profiled.run().expect("runs");

    assert_eq!(ret_as_int(&r1), ret_as_int(&r2));
    assert_eq!(plain.output(), profiled.output());
    assert_eq!(plain.stats.instrs, profiled.stats.instrs);
    assert_eq!(plain.stats.calls, profiled.stats.calls);
    assert_eq!(plain.stats.heap.collections, profiled.stats.heap.collections);
    assert!(profiled.profile().is_some());
}

#[test]
fn histogram_accounts_for_every_retired_instruction() {
    let program = compile(CHURN);
    let mut vm = Vm::with_heap(&program, 512);
    vm.enable_profiling();
    vm.run().expect("runs");
    let profile = vm.profile().expect("profiling on");
    assert_eq!(
        profile.retired(),
        vm.stats.instrs,
        "histogram total must equal the instruction counter"
    );
    // The histogram only reports executed opcodes, sorted descending.
    let hist = profile.opcode_histogram();
    assert!(!hist.is_empty());
    assert!(hist.windows(2).all(|w| w[0].1 >= w[1].1), "sorted by count");
    assert!(hist.iter().all(|&(_, c)| c > 0));
}

#[test]
fn gc_events_mirror_heap_collections() {
    let program = compile(CHURN);
    let mut vm = Vm::with_heap(&program, 512); // small: forces collections
    vm.enable_profiling();
    vm.run().expect("runs");
    let profile = vm.take_profile().expect("profiling on");
    assert!(vm.stats.heap.collections > 0, "expected GC activity");
    assert_eq!(profile.gc_events.len(), vm.stats.heap.collections);
    let mut last_at = 0;
    for e in &profile.gc_events {
        assert!(e.live_slots <= e.capacity_slots);
        assert!(e.copied_slots >= e.live_slots, "copy includes headers");
        assert!(e.at_instr >= last_at, "events are ordered");
        last_at = e.at_instr;
    }
    // take_profile leaves the VM unprofiled.
    assert!(vm.profile().is_none());
}

#[test]
fn opcode_names_are_dense_and_unique() {
    assert_eq!(OPCODE_NAMES.len(), OPCODE_COUNT);
    let mut names: Vec<&str> = OPCODE_NAMES.to_vec();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), OPCODE_COUNT, "duplicate opcode name");
}
