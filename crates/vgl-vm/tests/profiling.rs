//! VM profiling invariants: profiling changes no observable behavior, the
//! opcode histogram accounts for every retired instruction, and GC events
//! mirror the heap's collection counters.

use vgl_passes::compile_pipeline;
use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};
use vgl_vm::{lower, ret_as_int, Vm, VmProgram, OPCODE_COUNT, OPCODE_NAMES};

fn compile(src: &str) -> VmProgram {
    let mut d = Diagnostics::new();
    let ast = parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse: {:?}", d.into_vec());
    let mut d = Diagnostics::new();
    let module = analyze(&ast, &mut d).unwrap_or_else(|| panic!("sema: {:#?}", d.into_vec()));
    let (compiled, _) = compile_pipeline(&module);
    lower(&compiled)
}

const CHURN: &str = "class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
    def sum(l: List<int>) -> int {\n\
      var s = 0;\n\
      for (x = l; x != null; x = x.tail) s = s + x.head;\n\
      return s;\n\
    }\n\
    def main() -> int {\n\
      var keep: List<int>;\n\
      var total = 0;\n\
      for (i = 0; i < 200; i = i + 1) {\n\
        keep = List.new(i, keep);\n\
        var garbage = List.new(i * 2, null);\n\
        total = total + garbage.head;\n\
      }\n\
      return sum(keep) + total;\n\
    }";

#[test]
fn profiling_disabled_is_free() {
    // Same program, with and without profiling: identical result, output,
    // and execution counters — profiling must observe, never perturb.
    let program = compile(CHURN);
    let mut plain = Vm::with_heap(&program, 512);
    let r1 = plain.run().expect("runs");
    assert!(plain.profile().is_none(), "profiling is off by default");

    let mut profiled = Vm::with_heap(&program, 512);
    profiled.enable_profiling();
    let r2 = profiled.run().expect("runs");

    assert_eq!(ret_as_int(&r1), ret_as_int(&r2));
    assert_eq!(plain.output(), profiled.output());
    assert_eq!(plain.stats.instrs, profiled.stats.instrs);
    assert_eq!(plain.stats.calls, profiled.stats.calls);
    assert_eq!(plain.stats.heap.collections, profiled.stats.heap.collections);
    assert!(profiled.profile().is_some());
}

#[test]
fn histogram_accounts_for_every_retired_instruction() {
    let program = compile(CHURN);
    let mut vm = Vm::with_heap(&program, 512);
    vm.enable_profiling();
    vm.run().expect("runs");
    let profile = vm.profile().expect("profiling on");
    assert_eq!(
        profile.retired(),
        vm.stats.instrs,
        "histogram total must equal the instruction counter"
    );
    // The histogram only reports executed opcodes, sorted descending.
    let hist = profile.opcode_histogram();
    assert!(!hist.is_empty());
    assert!(hist.windows(2).all(|w| w[0].1 >= w[1].1), "sorted by count");
    assert!(hist.iter().all(|&(_, c)| c > 0));
}

#[test]
fn gc_events_mirror_heap_collections() {
    let program = compile(CHURN);
    let mut vm = Vm::with_heap(&program, 512); // small: forces collections
    vm.enable_profiling();
    vm.run().expect("runs");
    let profile = vm.take_profile().expect("profiling on");
    assert!(vm.stats.heap.collections > 0, "expected GC activity");
    assert_eq!(profile.gc_events.len(), vm.stats.heap.collections);
    let mut last_at = 0;
    for e in &profile.gc_events {
        assert!(e.live_slots <= e.capacity_slots);
        assert!(e.copied_slots >= e.live_slots, "copy includes headers");
        assert!(e.at_instr >= last_at, "events are ordered");
        last_at = e.at_instr;
    }
    // take_profile leaves the VM unprofiled.
    assert!(vm.profile().is_none());
}

#[test]
fn runtime_profiling_observes_not_perturbs() {
    // Hotness profiling is deterministic telemetry: identical result,
    // output, and counters with it on or off — and two profiled runs of
    // the same program produce byte-identical profiles.
    let program = compile(CHURN);
    let mut plain = Vm::with_heap(&program, 512);
    let r1 = plain.run().expect("runs");
    assert!(plain.runtime_profile().is_none(), "off by default");

    let mut profiled = Vm::with_heap(&program, 512);
    profiled.enable_runtime_profiling();
    let r2 = profiled.run().expect("runs");
    assert_eq!(ret_as_int(&r1), ret_as_int(&r2));
    assert_eq!(plain.output(), profiled.output());
    assert_eq!(plain.stats.instrs, profiled.stats.instrs);

    let mut again = Vm::with_heap(&program, 512);
    again.enable_runtime_profiling();
    again.run().expect("runs");
    assert_eq!(
        profiled.runtime_profile(),
        again.runtime_profile(),
        "the runtime profile is deterministic"
    );
}

#[test]
fn sampling_profile_counts_calls_and_ticks_only() {
    // Default (sampling) mode: exact call counts, back-edge ticks for cost
    // attribution, and no per-return accounting — the configuration the
    // bench_obs overhead gate measures.
    let program = compile(CHURN);
    let mut vm = Vm::with_heap(&program, 512);
    vm.enable_runtime_profiling();
    vm.run().expect("runs");
    let profile = vm.take_runtime_profile().expect("enabled");
    let total_calls: u64 = profile.rows.iter().map(|r| r.calls).sum();
    assert_eq!(total_calls, vm.stats.calls + 1, "call counts stay exact");
    let ranked = profile.hotness_ranked(&program);
    assert!(ranked[0].ticks > 0, "loops tick at back-edges");
    assert!(
        profile.rows.iter().all(|r| r.incl_instrs == 0 && r.excl_instrs == 0),
        "sampling mode does no per-return accounting"
    );

    // Precise mode agrees with sampling mode on everything they share.
    let mut precise = Vm::with_heap(&program, 512);
    precise.enable_runtime_profiling_precise();
    precise.run().expect("runs");
    let pp = precise.take_runtime_profile().expect("enabled");
    for (a, b) in profile.rows.iter().zip(pp.rows.iter()) {
        assert_eq!(a.calls, b.calls);
        assert_eq!(a.ticks, b.ticks);
    }
}

#[test]
fn runtime_profile_accounts_for_every_instruction() {
    // Precise mode: exact inclusive/exclusive accounting at frame exits.
    let program = compile(CHURN);
    let mut vm = Vm::with_heap(&program, 512);
    vm.enable_runtime_profiling_precise();
    vm.run().expect("runs");
    let profile = vm.take_runtime_profile().expect("enabled");
    assert!(vm.runtime_profile().is_none(), "take disables");

    // Function entries = explicit call instructions + the two
    // `call_function` entries (no globals in CHURN, so just main).
    let total_calls: u64 = profile.rows.iter().map(|r| r.calls).sum();
    assert_eq!(total_calls, vm.stats.calls + 1);

    // Exclusive counts partition the run: every retired instruction
    // belongs to exactly one completed frame.
    let total_excl: u64 = profile.rows.iter().map(|r| r.excl_instrs).sum();
    assert_eq!(total_excl, vm.stats.instrs);

    // main's inclusive count covers the whole run, and inclusive ≥
    // exclusive everywhere.
    let ranked = profile.hotness_ranked(&program);
    assert!(!ranked.is_empty());
    let main_row = ranked.iter().find(|r| r.name.contains("main")).expect("main ran");
    assert_eq!(main_row.incl_instrs, vm.stats.instrs);
    for row in &ranked {
        assert!(row.incl_instrs >= row.excl_instrs, "{}", row.name);
        assert!(row.calls > 0);
    }
    // CHURN loops in main and sum: back-edge ticks observed, and the
    // ranking is tick-descending.
    assert!(ranked[0].ticks > 0);
    assert!(ranked.windows(2).all(|w| w[0].ticks >= w[1].ticks));

    // JSON round-trips through the in-tree parser.
    let j = profile.to_json(&program).render();
    let parsed = vgl_obs::json::parse(&j).expect("valid");
    assert_eq!(parsed.as_arr().unwrap().len(), ranked.len());
    let table = profile.render_table(&program);
    assert!(table.contains("ticks"));
}

const TRAPPING: &str = "class A { var x: int; new(x) { } }\n\
    def get(a: A) -> int { return a.x; }\n\
    def poke(i: int) -> int {\n\
      if (i <= 0) return 0;\n\
      return i + poke(i - 1);\n\
    }\n\
    def main() -> int {\n\
      var t = 0;\n\
      for (i = 0; i < 5; i = i + 1) t = t + poke(i);\n\
      var a: A;\n\
      return t + get(a);\n\
    }";

#[test]
fn flight_recorder_dumps_on_trap_with_ordering() {
    let program = compile(TRAPPING);
    let mut vm = Vm::new(&program);
    vm.enable_flight_recorder(64);
    let err = vm.run().expect_err("null deref traps");
    assert_eq!(format!("{err}"), "!NullCheckException");

    let fr = vm.flight().expect("enabled");
    // Oldest-first, instruction clock never goes backwards, trap is last.
    let events: Vec<_> = fr.events().collect();
    assert!(events.windows(2).all(|w| w[0].at_instr <= w[1].at_instr));
    assert!(matches!(
        events.last().unwrap().kind,
        vgl_vm::FlightKind::Trap { error: vgl_vm::VmError::Exception(_), .. }
    ));
    let calls = events
        .iter()
        .filter(|e| matches!(e.kind, vgl_vm::FlightKind::Call { .. }))
        .count();
    assert!(calls >= 7, "main + 5 pokes + get, got {calls}");

    let dump = vm.flight_dump().expect("non-empty");
    assert!(dump.starts_with("--- flight recorder"));
    assert!(dump.contains("poke"));
    assert!(
        dump.trim_end().lines().last().unwrap().contains("!NullCheckException in"),
        "trap is the final dump line:\n{dump}"
    );
    assert!(dump.contains("get"), "faulting function named");
}

#[test]
fn flight_recorder_wraps_but_keeps_the_trap() {
    let program = compile(TRAPPING);
    let mut vm = Vm::new(&program);
    vm.enable_flight_recorder(2);
    vm.run().expect_err("traps");
    let fr = vm.flight().expect("enabled");
    assert_eq!(fr.len(), 2);
    assert!(fr.dropped() > 0, "older events were overwritten");
    let last = fr.events().last().unwrap();
    assert!(matches!(last.kind, vgl_vm::FlightKind::Trap { .. }));
}

#[test]
fn flight_recorder_empty_dump_is_none() {
    let program = compile(CHURN);
    let mut vm = Vm::with_heap(&program, 512);
    assert!(vm.flight_dump().is_none(), "recorder disabled");
    vm.enable_flight_recorder(16);
    assert!(vm.flight_dump().is_none(), "enabled but nothing recorded yet");
    vm.run().expect("no trap");
    // A clean run still has its final moments available on request.
    assert!(vm.flight_dump().is_some());
}

#[test]
fn gc_timeline_mirrors_collections_through_the_vm() {
    let program = compile(CHURN);
    let mut vm = Vm::with_heap(&program, 512);
    vm.enable_gc_timeline();
    vm.run().expect("runs");
    assert!(vm.stats.heap.collections > 0, "expected GC activity");
    let timeline = vm.gc_timeline();
    assert_eq!(timeline.len(), vm.stats.heap.collections);
    for rec in timeline {
        assert!(rec.live_slots <= rec.capacity_slots);
        assert!(rec.used_before >= rec.live_slots);
        assert!(rec.occupancy() <= 1.0);
    }
}

#[test]
fn trace_log_records_spans_and_gc_instants() {
    let program = compile(CHURN);
    let mut vm = Vm::with_heap(&program, 512);
    vm.enable_trace_log(1 << 16);
    vm.run().expect("runs");
    let log = vm.take_trace_log().expect("enabled");
    // One span per frame: every call instruction plus the main entry.
    assert_eq!(log.span_count() as u64, vm.stats.calls + 1);
    assert_eq!(log.spans_dropped(), 0);
    assert_eq!(log.gc.len(), vm.stats.heap.collections);
    // The outermost span (depth 0) is main, closed last.
    let outer = log.spans().last().unwrap();
    assert_eq!(outer.depth, 0);
    assert!(program.funcs[outer.func as usize].name.contains("main"));

    // The ring keeps the *last* spans when it overflows — main (closed
    // last) always survives — and counts the overwritten ones rather than
    // hiding the truncation.
    let mut capped = Vm::with_heap(&program, 512);
    capped.enable_trace_log(3);
    capped.run().expect("runs");
    let log = capped.take_trace_log().expect("enabled");
    assert_eq!(log.span_count(), 3);
    assert_eq!(log.spans_dropped(), capped.stats.calls + 1 - 3);
    let outer = log.spans().last().unwrap();
    assert!(program.funcs[outer.func as usize].name.contains("main"));
}

#[test]
fn opcode_names_are_dense_and_unique() {
    assert_eq!(OPCODE_NAMES.len(), OPCODE_COUNT);
    let mut names: Vec<&str> = OPCODE_NAMES.to_vec();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), OPCODE_COUNT, "duplicate opcode name");
}
