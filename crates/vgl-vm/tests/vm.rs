//! Three-way differential tests: interpreter-on-source, interpreter-on-
//! compiled, and VM-on-compiled must agree on results, output, and
//! exceptions. Plus the VM-specific claims: zero tuple boxes, zero
//! calling-convention checks, GC correctness under pressure.

use vgl_interp::{Interp, InterpError};
use vgl_ir::ops::Exception;
use vgl_passes::compile_pipeline;
use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};
use vgl_vm::{lower, ret_as_int, Vm, VmError};

fn front(src: &str) -> vgl_ir::Module {
    let mut d = Diagnostics::new();
    let ast = parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse: {:?}", d.into_vec());
    let mut d = Diagnostics::new();
    match analyze(&ast, &mut d) {
        Some(m) => m,
        None => panic!("sema: {:#?}", d.into_vec()),
    }
}

/// Result normal form: Ok(int result or "()"/"ref") or Err(exception name).
type Observed = (Result<String, String>, String);

fn run_interp(m: &vgl_ir::Module) -> Observed {
    let mut i = Interp::new(m);
    i.set_fuel(200_000_000);
    let r = match i.run() {
        Ok(vgl_interp::Value::Int(v)) => Ok(v.to_string()),
        Ok(vgl_interp::Value::Bool(b)) => Ok(i64::from(b).to_string()),
        Ok(vgl_interp::Value::Byte(b)) => Ok((b as i64).to_string()),
        Ok(_) => Ok("_".into()),
        Err(InterpError::Exception(e)) => Err(e.to_string()),
        Err(o) => Err(o.to_string()),
    };
    (r, i.output())
}

fn run_vm(p: &vgl_vm::VmProgram) -> (Observed, vgl_vm::VmStats) {
    let mut vm = Vm::new(p);
    vm.set_fuel(500_000_000);
    let r = match vm.run() {
        Ok(words) => {
            if words.len() == 1 && !vgl_vm::ret_is_ref(&words) {
                Ok(ret_as_int(&words).expect("scalar").to_string())
            } else {
                Ok("_".into())
            }
        }
        Err(VmError::Exception(e)) => Err(e.to_string()),
        Err(o) => Err(o.to_string()),
    };
    ((r, vm.output()), vm.stats)
}

fn threeway(src: &str) -> vgl_vm::VmStats {
    let module = front(src);
    let (r1, o1) = run_interp(&module);
    let (compiled, _) = compile_pipeline(&module);
    let (r2, o2) = run_interp(&compiled);
    assert_eq!(r1, r2, "interp source vs compiled for:\n{src}");
    assert_eq!(o1, o2, "interp output source vs compiled for:\n{src}");
    let program = lower(&compiled);
    let ((r3, o3), stats) = run_vm(&program);
    assert_eq!(r1, r3, "interp vs VM result for:\n{src}");
    assert_eq!(o1, o3, "interp vs VM output for:\n{src}");
    // The structural E1 claim: the VM *cannot* box tuples.
    assert_eq!(stats.heap.tuple_boxes, 0);
    stats
}

#[test]
fn vm_arithmetic() {
    threeway("def main() -> int { return 6 * 7; }");
    threeway(
        "def main() -> int {\n\
           var s = 0;\n\
           for (i = 0; i < 100; i = i + 1) s = s + i;\n\
           return s;\n\
         }",
    );
    threeway(
        "def fib(n: int) -> int { return n < 2 ? n : fib(n - 1) + fib(n - 2); }\n\
         def main() -> int { return fib(18); }",
    );
}

#[test]
fn vm_shifts_and_bits() {
    threeway(
        "def main() -> int {\n\
           var x = 0x0F0F;\n\
           return ((x << 4) ^ (x >> 2)) & 0xFFFF | (x % 7) + (-x / 3);\n\
         }",
    );
}

#[test]
fn vm_tuples_and_multireturn() {
    threeway(
        "def divmod(a: int, b: int) -> (int, int) { return (a / b, a % b); }\n\
         def main() -> int {\n\
           var r = divmod(1234, 7);\n\
           var s = divmod(r.0, r.1);\n\
           return s.0 * 1000 + s.1;\n\
         }",
    );
}

#[test]
fn vm_swap_loop_zero_boxes() {
    let stats = threeway(
        "def swap(p: (int, int)) -> (int, int) { return (p.1, p.0); }\n\
         def main() -> int {\n\
           var t = (1, 2);\n\
           for (i = 0; i < 1000; i = i + 1) t = swap(t);\n\
           return t.0 * 10 + t.1;\n\
         }",
    );
    // Nothing in this program allocates at all.
    assert_eq!(stats.heap.objects, 0);
    assert_eq!(stats.heap.arrays, 0);
    assert_eq!(stats.heap.tuple_boxes, 0);
}

#[test]
fn vm_objects_and_virtual_calls() {
    threeway(
        "class A { def v() -> int { return 1; } }\n\
         class B extends A { def v() -> int { return 2; } }\n\
         class C extends B { def v() -> int { return 3; } }\n\
         def main() -> int {\n\
           var xs: Array<A> = [A.new(), B.new(), C.new()];\n\
           var s = 0;\n\
           for (i = 0; i < xs.length; i = i + 1) s = s * 10 + xs[i].v();\n\
           return s;\n\
         }",
    );
}

#[test]
fn vm_class_queries_constant_time_ranges() {
    threeway(
        "class A { }\n\
         class B extends A { }\n\
         class C extends A { }\n\
         class D extends B { }\n\
         def code(a: A) -> int {\n\
           if (D.?(a)) return 4;\n\
           if (B.?(a)) return 2;\n\
           if (C.?(a)) return 3;\n\
           return 1;\n\
         }\n\
         def main() -> int {\n\
           return code(A.new()) * 1000 + code(B.new()) * 100 + code(C.new()) * 10 + code(D.new());\n\
         }",
    );
}

#[test]
fn vm_first_class_functions() {
    threeway(
        "class A {\n\
           var f: int;\n\
           new(f) { }\n\
           def m(a: int) -> int { return f + a; }\n\
         }\n\
         def apply2(g: (int, int) -> int, a: int, b: int) -> int { return g(a, b); }\n\
         def main() -> int {\n\
           var a = A.new(100);\n\
           var m1 = a.m;\n\
           var m2 = A.m;\n\
           var s = m1(1) + m2(a, 2) + apply2(int.+, 3, 4);\n\
           var mk = A.new;\n\
           var b = mk(1000);\n\
           return s + b.m(5);\n\
         }",
    );
}

#[test]
fn vm_closure_equality() {
    threeway(
        "class A { def m(x: int) -> int { return x; } }\n\
         def main() -> int {\n\
           var a = A.new();\n\
           var b = A.new();\n\
           var n = 0;\n\
           var f = a.m, g = a.m, h = b.m;\n\
           if (f == g) n = n + 1;\n\
           if (f != h) n = n + 10;\n\
           if (int.+ == int.+) n = n + 100;\n\
           return n;\n\
         }",
    );
}

#[test]
fn vm_exceptions() {
    threeway("def main() { var x = 1 / 0; }");
    threeway("class A { var f: int; }\ndef main() { var a: A; System.puti(a.f); }");
    threeway("def main() { var a = Array<int>.new(3); a[3] = 1; }");
    threeway(
        "class A { }\nclass B extends A { }\n\
         def main() { var a = A.new(); var b = B.!(a); }",
    );
    threeway("def main() { var b = byte.!(300); }");
}

#[test]
fn vm_strings_and_output() {
    threeway(
        "def main() {\n\
           var s = \"hello\";\n\
           s[0] = 'H';\n\
           System.puts(s);\n\
           System.ln();\n\
           System.puti(-42);\n\
           System.putb(true);\n\
           System.putc('!');\n\
         }",
    );
}

#[test]
fn vm_print1_specialized() {
    threeway(
        "def print1<T>(a: T) {\n\
           if (int.?(a)) System.puti(int.!(a));\n\
           if (bool.?(a)) System.putb(bool.!(a));\n\
           if (byte.?(a)) System.putc(byte.!(a));\n\
         }\n\
         def main() {\n\
           print1(7);\n\
           print1(false);\n\
           print1('x');\n\
         }",
    );
}

#[test]
fn vm_polymorphic_matcher() {
    threeway(
        "class Any { }\n\
         class Box<T> extends Any {\n\
           def val: T;\n\
           new(val) { }\n\
           def unbox() -> T { return val; }\n\
         }\n\
         class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         class Matcher {\n\
           var matches: List<Any>;\n\
           def add<T>(f: T -> void) {\n\
             matches = List<Any>.new(Box<T -> void>.new(f), matches);\n\
           }\n\
           def dispatch<T>(v: T) {\n\
             for (l = matches; l != null; l = l.tail) {\n\
               var f = l.head;\n\
               if (Box<T -> void>.?(f)) {\n\
                 Box<T -> void>.!(f).unbox()(v);\n\
                 return;\n\
               }\n\
             }\n\
             System.puts(\"?\");\n\
           }\n\
         }\n\
         def printInt(a: int) { System.puti(a); }\n\
         def printBool(a: bool) { System.putb(a); }\n\
         def main() {\n\
           var m = Matcher.new();\n\
           m.add(printInt);\n\
           m.add(printBool);\n\
           m.dispatch(5);\n\
           m.dispatch(false);\n\
           m.dispatch(\"s\");\n\
         }",
    );
}

#[test]
fn vm_variant_instrs() {
    threeway(
        "class Buffer { }\n\
         class Instr { def emit(buf: Buffer); }\n\
         class InstrOf<T> extends Instr {\n\
           var emitFunc: (Buffer, T) -> void;\n\
           var val: T;\n\
           new(emitFunc, val) { }\n\
           def emit(buf: Buffer) { emitFunc(buf, val); }\n\
         }\n\
         class Reg { def n: int; new(n) { } }\n\
         def add(b: Buffer, ops: (Reg, Reg)) { System.puti(ops.0.n + ops.1.n); }\n\
         def neg(b: Buffer, ops: Reg) { System.puti(-ops.n); }\n\
         def main() {\n\
           var r0 = Reg.new(3), r1 = Reg.new(4);\n\
           var buf = Buffer.new();\n\
           var gs: Array<Instr> = [InstrOf.new(add, (r0, r1)), InstrOf.new(neg, r1)];\n\
           for (i = 0; i < gs.length; i = i + 1) gs[i].emit(buf);\n\
         }",
    );
}

#[test]
fn vm_array_of_tuples_soa() {
    threeway(
        "def main() -> int {\n\
           var a = Array<(int, bool)>.new(8);\n\
           for (i = 0; i < 8; i = i + 1) a[i] = (i * i, i % 2 == 0);\n\
           var s = 0;\n\
           for (i = 0; i < a.length; i = i + 1) {\n\
             var e = a[i];\n\
             if (e.1) s = s + e.0;\n\
           }\n\
           return s;\n\
         }",
    );
}

#[test]
fn vm_gc_under_pressure() {
    // A small heap forces many collections while a live linked list keeps
    // growing and temporaries die.
    let src = "class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
               def sum(l: List<int>) -> int {\n\
                 var s = 0;\n\
                 for (x = l; x != null; x = x.tail) s = s + x.head;\n\
                 return s;\n\
               }\n\
               def main() -> int {\n\
                 var keep: List<int>;\n\
                 var total = 0;\n\
                 for (i = 0; i < 200; i = i + 1) {\n\
                   keep = List.new(i, keep);\n\
                   var garbage = List.new(i * 2, null);\n\
                   garbage = List.new(garbage.head, garbage);\n\
                   total = total + garbage.head;\n\
                 }\n\
                 return sum(keep) + total;\n\
               }";
    let module = front(src);
    let (r1, _) = run_interp(&module);
    let (compiled, _) = compile_pipeline(&module);
    let program = lower(&compiled);
    let mut vm = Vm::with_heap(&program, 512);
    vm.set_fuel(50_000_000);
    let got = match vm.run() {
        Ok(w) => Ok(ret_as_int(&w).expect("int").to_string()),
        Err(e) => Err(e.to_string()),
    };
    assert_eq!(r1, got);
    assert!(vm.stats.heap.collections > 0, "expected GC activity");
}

#[test]
fn vm_globals() {
    threeway(
        "var a = 10;\n\
         var b = a + 32;\n\
         var pair = (b, a);\n\
         def main() -> int { return pair.0 - pair.1; }",
    );
}

#[test]
fn vm_hashmap_pattern() {
    threeway(
        "class HashMap<K, V> {\n\
           def hash: K -> int;\n\
           def equals: (K, K) -> bool;\n\
           var keys: Array<K>;\n\
           var vals: Array<V>;\n\
           var used: Array<bool>;\n\
           new(hash, equals) {\n\
             keys = Array<K>.new(16);\n\
             vals = Array<V>.new(16);\n\
             used = Array<bool>.new(16);\n\
           }\n\
           def set(key: K, val: V) {\n\
             var i = (hash(key) & 15);\n\
             while (used[i]) {\n\
               if (equals(keys[i], key)) { vals[i] = val; return; }\n\
               i = (i + 1) & 15;\n\
             }\n\
             keys[i] = key; vals[i] = val; used[i] = true;\n\
           }\n\
           def get(key: K) -> V {\n\
             var i = (hash(key) & 15);\n\
             while (used[i]) {\n\
               if (equals(keys[i], key)) return vals[i];\n\
               i = (i + 1) & 15;\n\
             }\n\
             var d: V; return d;\n\
           }\n\
         }\n\
         def idhash(x: int) -> int { return x; }\n\
         def pairhash(p: (int, int)) -> int { return p.0 * 31 + p.1; }\n\
         def paireq(a: (int, int), b: (int, int)) -> bool { return a == b; }\n\
         def main() {\n\
           var m = HashMap<int, int>.new(idhash, int.==);\n\
           m.set(1, 10);\n\
           m.set(17, 20);\n\
           System.puti(m.get(1));\n\
           System.puti(m.get(17));\n\
           var pm = HashMap<(int, int), int>.new(pairhash, paireq);\n\
           pm.set((1, 2), 99);\n\
           System.puti(pm.get((1, 2)));\n\
         }",
    );
}

#[test]
fn vm_no_callsite_checks_vs_interp() {
    // E6: the interpreter performs a dynamic calling-convention check per
    // first-class call; the VM performs none (structurally absent).
    // `pick` mixes scalar- and tuple-parameter implementations behind one
    // function type, so the interpreter must adapt dynamically (§4.1).
    let src = "def f(a: int, b: int) -> int { return a + b; }\n\
               def g2(a: (int, int)) -> int { return a.0 + a.1; }\n\
               def pick(z: bool) -> ((int, int) -> int) { return z ? f : g2; }\n\
               def main() -> int {\n\
                 var s = 0;\n\
                 for (i = 0; i < 50; i = i + 1) {\n\
                   s = pick(i % 2 == 0)(s, 1);\n\
                 }\n\
                 return s;\n\
               }";
    let module = front(src);
    let mut i = Interp::new(&module);
    i.run().expect("interp runs");
    assert!(i.stats.callsite_checks >= 50);
    assert!(i.stats.callsite_adaptations >= 25, "mixed-convention calls adapt");
    let (compiled, _) = compile_pipeline(&module);
    let program = lower(&compiled);
    let ((r, _), _) = run_vm(&program);
    assert_eq!(r, Ok("50".into()));
}

#[test]
fn vm_listing_p_both_conventions() {
    threeway(
        "def f(a: int, b: int) { System.puts(\"f\"); System.puti(a + b); }\n\
         def g(a: (int, int)) { System.puts(\"g\"); System.puti(a.0 * a.1); }\n\
         def pick(z: bool) -> ((int, int) -> void) { return z ? f : g; }\n\
         def main() {\n\
           var t = (3, 4);\n\
           var x = pick(true);\n\
           x(3, 4);\n\
           x(t);\n\
           x = pick(false);\n\
           x(3, 4);\n\
           x(t);\n\
         }",
    );
}

#[test]
fn vm_function_type_queries() {
    threeway(
        "def pi(a: int) { System.puti(a); }\n\
         def pb(a: bool) { System.putb(a); }\n\
         def isf<F, T>(f: T) -> bool { return F.?<T>(f); }\n\
         def test<T>(f: T) -> int {\n\
           if (isf<int -> void, T>(f)) return 1;\n\
           if (isf<bool -> void, T>(f)) return 2;\n\
           return 0;\n\
         }\n\
         def main() -> int { return test(pi) * 10 + test(pb); }",
    );
}

#[test]
fn vm_byte_arithmetic_and_compares() {
    threeway(
        "def main() -> int {\n\
           var a = 'a', z = 'z';\n\
           var n = 0;\n\
           if (a < z) n = n + 1;\n\
           if (z >= a) n = n + 10;\n\
           if (a == 'a') n = n + 100;\n\
           return n + int.!(a);\n\
         }",
    );
}

#[test]
fn vm_fuel_guard() {
    let module = front("def main() { while (true) { } }");
    let (compiled, _) = compile_pipeline(&module);
    let program = lower(&compiled);
    let mut vm = Vm::new(&program);
    vm.set_fuel(100_000);
    assert!(matches!(vm.run(), Err(VmError::OutOfFuel)));
}

#[test]
fn exception_name_check() {
    // Keep the Display mapping stable across engines.
    assert_eq!(Exception::TypeCheck.to_string(), "!TypeCheckException");
}
