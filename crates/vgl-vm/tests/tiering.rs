//! Tiered-execution integration tests: behavioral identity under tiering
//! (including a forced threshold-1 tier storm), speculation of monomorphic
//! sites into guarded and inlined calls, guard-failure deoptimization with
//! sticky megamorphic marking, and the flight recorder's view of tier
//! transitions.

use vgl_passes::compile_pipeline;
use vgl_sema::analyze;
use vgl_syntax::{parse_program, Diagnostics};
use vgl_vm::{ret_as_int, Vm, VmProgram, VmStats};

fn compile(src: &str) -> VmProgram {
    let mut d = Diagnostics::new();
    let ast = parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse: {:?}", d.into_vec());
    let mut d = Diagnostics::new();
    let module = analyze(&ast, &mut d).unwrap_or_else(|| panic!("sema: {:#?}", d.into_vec()));
    let (compiled, _) = compile_pipeline(&module);
    vgl_vm::lower(&compiled)
}

fn run_plain(p: &VmProgram) -> (Option<i32>, String) {
    let mut vm = Vm::new(p);
    vm.set_fuel(100_000_000);
    let r = vm.run().ok().and_then(|w| ret_as_int(&w));
    (r, vm.output())
}

fn run_tiered(p: &VmProgram, threshold: u64) -> (Option<i32>, String, VmStats) {
    let mut vm = Vm::new(p);
    vm.set_fuel(100_000_000);
    vm.enable_tiering(threshold);
    let r = vm.run().ok().and_then(|w| ret_as_int(&w));
    let out = vm.output();
    (r, out, vm.stats)
}

/// A monomorphic hot walker: the virtual call site only ever sees `Inc`,
/// so tiering speculates it — and because `Inc.apply` is a one-expression
/// body, the speculation inlines it to a micro-op (no callee frame).
const MONO: &str = "class Op { def apply(x: int) -> int { return x; } }\n\
     class Inc extends Op { def apply(x: int) -> int { return x + 1; } }\n\
     class Node { var op: Op; var next: Node; new(op, next) { } }\n\
     def walk(chain: Node, x0: int) -> int {\n\
         var x = x0;\n\
         for (n = chain; n != null; n = n.next) x = n.op.apply(x);\n\
         return x;\n\
     }\n\
     def main() -> int {\n\
         var none: Node;\n\
         var mono: Node;\n\
         for (k = 0; k < 16; k = k + 1) mono = Node.new(Inc.new(), mono);\n\
         var acc = 0;\n\
         for (i = 0; i < 200; i = i + 1) acc = (acc + walk(mono, i)) % 8191;\n\
         return acc;\n\
     }";

/// Polymorphic warmup, then a guard-failing receiver, then a long
/// monomorphic tail: exercises tier-up, deopt, and the sticky megamorphic
/// bit end to end.
const DEOPT: &str = "class Op { def apply(x: int) -> int { return x; } }\n\
     class Inc extends Op { def apply(x: int) -> int { return x + 1; } }\n\
     class Tri extends Op { def apply(x: int) -> int { return x * 3; } }\n\
     def walk(o: Op, n: int) -> int {\n\
         var x = 1;\n\
         for (i = 0; i < n; i = i + 1) x = (x + o.apply(i)) % 8191;\n\
         return x;\n\
     }\n\
     def main() -> int {\n\
         var a = walk(Inc.new(), 200);\n\
         var b = walk(Tri.new(), 200);\n\
         var c = walk(Inc.new(), 200);\n\
         return a + b + c;\n\
     }";

#[test]
fn tiering_is_behaviorally_invisible() {
    for src in [MONO, DEOPT] {
        let p = compile(src);
        let (r, out) = run_plain(&p);
        assert!(r.is_some());
        // Default-ish, aggressive, and degenerate thresholds all agree.
        for threshold in [256, 16, 1] {
            let (rt, ot, _) = run_tiered(&p, threshold);
            assert_eq!(r, rt, "threshold {threshold} changed the result");
            assert_eq!(out, ot, "threshold {threshold} changed the output");
        }
    }
}

#[test]
fn hot_monomorphic_site_tiers_up_and_inlines() {
    let p = compile(MONO);
    let (r, out) = run_plain(&p);
    let (rt, ot, stats) = run_tiered(&p, 64);
    assert_eq!((r, out), (rt, ot));
    assert!(stats.tier_ups > 0, "walker never tiered up");
    assert_eq!(stats.deopts, 0, "monomorphic site must not deopt");
    assert!(
        stats.inlined_calls > 0,
        "one-expression callee should inline behind the guard: {stats:?}"
    );
    // Inlined calls still count as virtual calls, and the IC totals keep
    // covering only the unspeculated path.
    assert!(stats.virtual_calls >= stats.inlined_calls + stats.guarded_calls);
}

#[test]
fn guard_failure_deopts_once_and_site_goes_megamorphic() {
    let p = compile(DEOPT);
    let (r, out) = run_plain(&p);
    let mut vm = Vm::new(&p);
    vm.set_fuel(100_000_000);
    vm.enable_tiering(16);
    let rt = vm.run().ok().and_then(|w| ret_as_int(&w));
    assert_eq!(r, rt);
    assert_eq!(out, vm.output());
    let stats = vm.stats;
    assert!(stats.tier_ups >= 2, "expected a re-tier after the deopt: {stats:?}");
    assert_eq!(stats.deopts, 1, "the failed guard deopts exactly once: {stats:?}");
    let tier = vm.tier_state().expect("tiering enabled");
    let mega = tier.mega_sites();
    assert_eq!(mega.len(), 1, "exactly one site goes megamorphic");
    assert!(tier.is_mega(mega[0]));
    // The long monomorphic tail re-tiers `walk`, but the megamorphic site
    // stays a plain virtual call — no new guards, no second deopt.
    assert_eq!(stats.guarded_calls, 0, "mega site must never be re-speculated: {stats:?}");
    assert_eq!(stats.inlined_calls, 0, "mega site must never be re-inlined: {stats:?}");
}

#[test]
fn forced_tier_storm_stays_correct_and_bounded() {
    // Threshold 1: every function tiers up at its first trigger point and
    // the deopt path runs under maximum churn. The doubling re-tier
    // schedule must keep the tier-up count far below the trigger count.
    let p = compile(DEOPT);
    let (r, out) = run_plain(&p);
    let (rt, ot, stats) = run_tiered(&p, 1);
    assert_eq!((r, out), (rt, ot));
    assert!(stats.tier_ups > 0);
    assert!(
        stats.tier_ups < 100,
        "doubling schedule should bound re-tiers: {}",
        stats.tier_ups
    );
}

#[test]
fn flight_recorder_orders_tier_up_before_deopt() {
    let p = compile(DEOPT);
    let mut vm = Vm::new(&p);
    vm.set_fuel(100_000_000);
    vm.enable_tiering(16);
    vm.enable_flight_recorder(4096);
    assert!(vm.run().is_ok());
    let fr = vm.flight().expect("enabled");
    let events: Vec<String> = fr
        .events()
        .filter_map(|e| {
            use vgl_vm::FlightKind::*;
            match e.kind {
                TierUp { .. } => Some("tier-up".to_string()),
                Deopt { .. } => Some("deopt".to_string()),
                _ => None,
            }
        })
        .collect();
    let first_tier = events.iter().position(|e| e == "tier-up").expect("a tier-up event");
    let deopt = events.iter().position(|e| e == "deopt").expect("a deopt event");
    assert!(first_tier < deopt, "speculation precedes its failure: {events:?}");
    // The ring keeps instruction counters monotone across wraps.
    let ats: Vec<u64> = fr.events().map(|e| e.at_instr).collect();
    assert!(ats.windows(2).all(|w| w[0] <= w[1]), "flight ring out of order");
    let dump = vm.flight_dump().expect("non-empty");
    assert!(dump.contains("tier-up"), "dump renders tier-ups:\n{dump}");
    assert!(dump.contains("deopt"), "dump renders deopts:\n{dump}");
}
