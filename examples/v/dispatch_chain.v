// The §3.3 dispatch chain, class-hierarchy edition: a linked chain of
// operation nodes walked in a hot loop. The `n.op.apply(x)` site exercises
// the VM's monomorphic inline caches, and the counting loops compile to
// fused compare-and-branch / add-immediate superinstructions — see
// `vglc disasm examples/v/dispatch_chain.v` for the before/after view.
class Op {
    def apply(x: int) -> int { return x; }
}
class Inc extends Op {
    def apply(x: int) -> int { return x + 1; }
}
class Dbl extends Op {
    def apply(x: int) -> int { return x + x; }
}
class Mask extends Op {
    def apply(x: int) -> int { return x % 1000; }
}
class Node {
    var op: Op;
    var next: Node;
    new(op, next) { }
}
def run(chain: Node, x0: int) -> int {
    var x = x0;
    for (n = chain; n != null; n = n.next) x = n.op.apply(x);
    return x;
}
// A second walker kept separate from `run` on purpose: its apply site only
// ever sees `Inc`, so once it tiers up the site is speculated into a
// class-guarded inlined `x + 1` — `vglc disasm --tiered` shows the
// `call_inline` where `run`'s mixed-chain site stays a plain virtual call.
def runinc(chain: Node, x0: int) -> int {
    var x = x0;
    for (n = chain; n != null; n = n.next) x = n.op.apply(x);
    return x;
}
def main() -> int {
    var none: Node;
    var chain = Node.new(Dbl.new(), Node.new(Mask.new(), none));
    // A mostly-monomorphic prefix: the apply site sees Inc six times per
    // walk, so its inline cache hits on five of them.
    for (j = 0; j < 6; j = j + 1) chain = Node.new(Inc.new(), chain);
    var mono: Node;
    for (k = 0; k < 8; k = k + 1) mono = Node.new(Inc.new(), mono);
    var acc = 0;
    for (i = 0; i < 64; i = i + 1) acc = (acc + run(chain, i)) % 9973;
    for (i = 0; i < 64; i = i + 1) acc = (acc + runinc(mono, i)) % 9973;
    System.puti(acc);
    System.ln();
    return acc;
}
