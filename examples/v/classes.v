// Single inheritance, virtual dispatch, and type queries/casts (paper
// §2.1/§3.3): the optimizer folds statically decidable queries; the VM
// answers the rest with constant-time class-id range checks.
class Shape {
    def area() -> int { return 0; }
}
class Rect extends Shape {
    def w: int;
    def h: int;
    new(w, h) { }
    def area() -> int { return w * h; }
}
class Square extends Rect {
    new(s: int) super(s, s) { }
}

def describe(s: Shape) -> int {
    if (Square.?(s)) return 1000 + s.area();
    if (Rect.?(s)) return 100 + Rect.!(s).w;
    return s.area();
}

def main() -> int {
    var shapes = Array<Shape>.new(3);
    shapes[0] = Shape.new();
    shapes[1] = Rect.new(3, 4);
    shapes[2] = Square.new(5);
    var total = 0;
    for (i = 0; i < 3; i = i + 1) {
        var d = describe(shapes[i]);
        total = total + d;
        System.puti(d);
        System.putc(' ');
    }
    System.ln();
    return total;
}
