// Type parameters on functions and classes (paper §2.4/§4.3): the
// interpreter passes type arguments at runtime; the compiled pipeline
// monomorphizes them away.
class Box<T> {
    def val: T;
    new(val) { }
    def get() -> T { return val; }
}

def id<T>(x: T) -> T { return x; }

def apply<A, B>(f: A -> B, x: A) -> B { return f(x); }

def main() -> int {
    var bi = Box<int>.new(17);
    var bb = Box<bool>.new(true);
    var n = id(apply(bi.get, ()));
    System.puti(n);
    System.putc(' ');
    System.putb(id(bb.get()));
    System.ln();
    return n + (bb.get() ? 25 : 0);
}
