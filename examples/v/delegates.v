// Bound delegates (paper §2.3/§3.2): `obj.method` closes over the receiver
// at *bind time* — virtual resolution happens when the delegate is created,
// not when it is applied, and rebinding after a field update sees new state.
class Scaler {
    var factor: int;
    new(factor) { }
    def apply(x: int) -> int { return x * factor; }
}
class Offset extends Scaler {
    new(factor: int) super(factor) { }
    def apply(x: int) -> int { return x + factor; }
}

def runAll(fs: Array<int -> int>, x: int) -> int {
    var acc = 0;
    for (i = 0; i < fs.length; i = i + 1) acc = acc + fs[i](x);
    return acc;
}

def main() -> int {
    var s = Scaler.new(3);
    var o: Scaler = Offset.new(100);
    var fs = Array<int -> int>.new(3);
    fs[0] = s.apply;          // binds Scaler.apply with receiver s
    fs[1] = o.apply;          // virtual at bind time: Offset.apply
    s.factor = 5;             // the bound receiver is shared, not copied:
    fs[2] = s.apply;          // both delegates now scale by 5
    var a = runAll(fs, 7);    // 35 + 107 + 35 = 177
    System.puti(a);
    System.putc(' ');
    System.puti(fs[0](2));    // 10 — same receiver as fs[2]
    System.ln();
    return a;
}
