// Wide tuples (paper §2.2/§4.2): width-8 values flow through parameters,
// returns, locals, and element-wise arithmetic. Normalization flattens each
// into eight scalars — the VM never sees a tuple, only a scalar calling
// convention with multi-value returns.
def iota8(base: int) -> (int, int, int, int, int, int, int, int) {
    return (base, base + 1, base + 2, base + 3,
            base + 4, base + 5, base + 6, base + 7);
}

def rev8(t: (int, int, int, int, int, int, int, int))
        -> (int, int, int, int, int, int, int, int) {
    return (t.7, t.6, t.5, t.4, t.3, t.2, t.1, t.0);
}

def add8(a: (int, int, int, int, int, int, int, int),
         b: (int, int, int, int, int, int, int, int))
        -> (int, int, int, int, int, int, int, int) {
    return (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3,
            a.4 + b.4, a.5 + b.5, a.6 + b.6, a.7 + b.7);
}

def sum8(t: (int, int, int, int, int, int, int, int)) -> int {
    return t.0 + t.1 + t.2 + t.3 + t.4 + t.5 + t.6 + t.7;
}

def main() -> int {
    var t = iota8(1);                  // (1..8)
    var u = add8(t, rev8(t));          // every lane is 9
    System.puti(u.0);
    System.putc(' ');
    System.puti(u.7);
    System.putc(' ');
    System.puti(sum8(u));              // 72
    System.ln();
    var total = 0;
    for (i = 0; i < 3; i = i + 1) total = total + sum8(iota8(i));
    System.puti(total);                // 28+36+44 = 108
    System.ln();
    return sum8(u) + total;            // 180
}
