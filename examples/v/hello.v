// Smallest observable program: prints and returns an int.
def main() -> int {
    System.puts("hello, virgil");
    System.ln();
    return 42;
}
