// First-class functions from every binding form (paper §2.3/§4.1):
// top-level defs, bound methods (o.m), and partial application all meet at
// the same arrow type and call sites.
class Counter {
    var count: int;
    new(count) { }
    def bump(by: int) -> int {
        count = count + by;
        return count;
    }
}

def twice(f: int -> int, x: int) -> int { return f(f(x)); }

def addThree(x: int) -> int { return x + 3; }

def main() -> int {
    var c = Counter.new(10);
    var bound = c.bump;
    var a = twice(bound, 2);     // 10+2=12, 12+12=24 -> count drives result
    var b = twice(addThree, 5);  // 5+3+3 = 11
    System.puti(a);
    System.putc(' ');
    System.puti(b);
    System.putc(' ');
    System.puti(c.count);
    System.ln();
    return a + b + c.count;
}
