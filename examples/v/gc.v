// Allocation churn: builds and drops list cells so the semispace collector
// runs during VM execution (`vglc profile` shows the GC events).
class Node {
    def val: int;
    def next: Node;
    new(val, next) { }
}

def sum(n: Node) -> int {
    var total = 0;
    var cur = n;
    while (cur != null) {
        total = total + cur.val;
        cur = cur.next;
    }
    return total;
}

def build(len: int, seed: int) -> Node {
    var head: Node = null;
    for (i = 0; i < len; i = i + 1) head = Node.new(seed + i, head);
    return head;
}

def main() -> int {
    var acc = 0;
    for (round = 0; round < 2000; round = round + 1) {
        acc = (acc + sum(build(200, round))) % 99991;
    }
    System.puti(acc);
    System.ln();
    return acc;
}
