// Tuples across parameters, returns, arrays, and fields (paper §2.2/§4.2):
// the interpreter boxes them; normalization flattens every one to scalars.
def swap(p: (int, int)) -> (int, int) { return (p.1, p.0); }

def minmax(a: int, b: int) -> (int, int) {
    return a < b ? (a, b) : (b, a);
}

def main() -> int {
    var ps = Array<(int, int)>.new(4);
    for (i = 0; i < 4; i = i + 1) ps[i] = minmax(7 - i, i * 3);
    var total = 0;
    for (i = 0; i < 4; i = i + 1) {
        var q = swap(ps[i]);
        total = total + q.0 * 10 + q.1;
        System.puti(q.0);
        System.putc(',');
        System.puti(q.1);
        System.putc(' ');
    }
    System.ln();
    return total;
}
