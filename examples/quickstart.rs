//! Quickstart: compile a Virgil III program and run it on both execution
//! engines — the type-passing reference interpreter and the compiled VM —
//! then show what the static pipeline (monomorphize → normalize → optimize)
//! did to it.
//!
//! Run with: `cargo run --example quickstart`

use vgl::Compiler;

const PROGRAM: &str = r#"
// Listing (e1-e5) of the paper: a timing utility that works for *any*
// function thanks to type parameters + tuples + first-class functions.
def time<A, B>(func: A -> B, a: A) -> (B, int) {
    var start = System.ticks();
    return (func(a), System.ticks() - start);
}

def sumTo(n: int) -> int {
    var s = 0;
    for (i = 1; i <= n; i = i + 1) s = s + i;
    return s;
}

def hypot2(p: (int, int)) -> int { return p.0 * p.0 + p.1 * p.1; }

def main() -> int {
    var r1 = time(sumTo, 1000);
    System.puts("sumTo(1000) = "); System.puti(r1.0); System.ln();
    var r2 = time(hypot2, (3, 4));
    System.puts("hypot2(3, 4) = "); System.puti(r2.0); System.ln();
    return r1.0 + r2.0;
}
"#;

fn main() {
    let compilation = match Compiler::new().compile(PROGRAM) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compilation failed:\n{e}");
            std::process::exit(1);
        }
    };

    println!("== interpreter (type-argument passing, boxed tuples) ==");
    let interp = compilation.interpret();
    print!("{}", interp.output);
    println!("result: {:?}", interp.result);
    let is = interp.interp_stats.expect("interp stats");
    println!(
        "tuple boxes: {}, runtime type substitutions: {}, call-site checks: {}",
        is.allocs.tuples, is.type_substitutions, is.callsite_checks
    );

    println!();
    println!("== VM (monomorphized, normalized, optimized) ==");
    let vm = compilation.execute();
    print!("{}", vm.output);
    println!("result: {:?}", vm.result);
    let vs = vm.vm_stats.expect("vm stats");
    println!(
        "tuple boxes: {} (structurally impossible), closure cells: {}, GC runs: {}",
        vs.heap.tuple_boxes, vs.heap.closures, vs.heap.collections
    );

    println!();
    println!("== pipeline ==");
    println!("before:      {}", compilation.stats.size_before);
    println!("after mono:  {}", compilation.stats.size_after_mono);
    println!("after all:   {}", compilation.stats.size_after);
    println!(
        "mono: {} method instances from {} live methods (expansion x{:.2})",
        compilation.stats.mono.method_instances,
        compilation.stats.mono.live_source_methods,
        compilation.expansion_ratio()
    );
    println!(
        "norm: {} tuple exprs removed, {} params expanded, {} multi-return methods",
        compilation.stats.norm.tuple_exprs_removed,
        compilation.stats.norm.params_expanded,
        compilation.stats.norm.multi_return_methods
    );
    println!(
        "opt: {} queries folded, {} branches folded, {} devirtualized",
        compilation.stats.opt.queries_folded,
        compilation.stats.opt.branches_folded,
        compilation.stats.opt.devirtualized
    );

    assert_eq!(interp.result, vm.result, "engines must agree");
    assert_eq!(interp.output, vm.output, "engines must agree");
}
