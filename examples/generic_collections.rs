//! Generic collections in the functional style the paper advocates (§3.6):
//! a cons list with `map`/`fold`/`filterCount`, the function-parameterized
//! `HashMap<K, V>` of §3.2, and the `a.apply(b.add)`-style reuse the paper
//! highlights ("copies the contents of HashMap a into HashMap b, without
//! even writing a loop").
//!
//! Run with: `cargo run --example generic_collections`

use vgl::Compiler;

const PROGRAM: &str = r#"
class List<T> {
    def head: T;
    def tail: List<T>;
    new(head, tail) { }
}

def cons<T>(h: T, t: List<T>) -> List<T> { return List.new(h, t); }

def fold<A, B>(list: List<A>, f: (B, A) -> B, init: B) -> B {
    var acc = init;
    for (l = list; l != null; l = l.tail) acc = f(acc, l.head);
    return acc;
}

def map<A, B>(list: List<A>, f: A -> B) -> List<B> {
    if (list == null) return null;
    return List.new(f(list.head), map(list.tail, f));
}

def applyEach<A>(list: List<A>, f: A -> void) {
    for (l = list; l != null; l = l.tail) f(l.head);
}

// §3.2 HashMap: hash and equality live in `def` fields, so one
// implementation serves every key type, including tuples.
class HashMap<K, V> {
    def hash: K -> int;
    def equals: (K, K) -> bool;
    var keys: Array<K>;
    var vals: Array<V>;
    var used: Array<bool>;
    var count: int;
    new(hash, equals) {
        keys = Array<K>.new(32);
        vals = Array<V>.new(32);
        used = Array<bool>.new(32);
    }
    def set(key: K, val: V) {
        var i = hash(key) & 31;
        while (used[i]) {
            if (equals(keys[i], key)) { vals[i] = val; return; }
            i = (i + 1) & 31;
        }
        keys[i] = key; vals[i] = val; used[i] = true; count = count + 1;
    }
    def get(key: K) -> V {
        var i = hash(key) & 31;
        while (used[i]) {
            if (equals(keys[i], key)) return vals[i];
            i = (i + 1) & 31;
        }
        var d: V; return d;
    }
    def add(key: K, val: V) { set(key, val); }
    def apply(f: (K, V) -> void) {
        for (i = 0; i < 32; i = i + 1) {
            if (used[i]) f(keys[i], vals[i]);
        }
    }
}

def idhash(x: int) -> int { return x; }
def double(x: int) -> int { return x * 2; }
def plus(a: int, b: int) -> int { return a + b; }
def show(i: int) { System.puti(i); System.putc(' '); }

def main() -> int {
    var xs = cons(1, cons(2, cons(3, cons(4, null))));
    System.puts("xs:        "); applyEach(xs, show); System.ln();
    System.puts("doubled:   "); applyEach(map(xs, double), show); System.ln();
    var total = fold(xs, plus, 0);
    System.puts("sum: "); System.puti(total); System.ln();

    // Per-instance hash/equality (i13-i15): ints with identity hashing.
    var a = HashMap<int, int>.new(idhash, int.==);
    a.set(1, 10); a.set(2, 20); a.set(34, 30);
    // "the call a.apply(b.add) copies the contents of HashMap a into
    //  HashMap b, without even writing a loop"
    var b = HashMap<int, int>.new(idhash, int.==);
    a.apply(b.add);
    System.puts("copied "); System.puti(b.count); System.puts(" entries; b.get(34) = ");
    System.puti(b.get(34)); System.ln();

    // Tuple keys (i16-i18) — no boxing, no wrapper class.
    var grid = HashMap<(int, int), int>.new(pairhash, paireq);
    grid.set((0, 0), 1); grid.set((1, 2), 5); grid.set((2, 1), 7);
    System.puts("grid(1,2) + grid(2,1) = ");
    System.puti(grid.get((1, 2)) + grid.get((2, 1))); System.ln();
    return total;
}

def pairhash(p: (int, int)) -> int { return p.0 * 31 + p.1; }
def paireq(x: (int, int), y: (int, int)) -> bool { return x == y; }
"#;

fn main() {
    let c = match Compiler::new().compile(PROGRAM) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error:\n{e}");
            std::process::exit(1);
        }
    };
    let interp = c.interpret();
    let vm = c.execute();
    assert_eq!(interp.output, vm.output, "engines must agree");
    assert_eq!(interp.result, vm.result, "engines must agree");
    print!("{}", vm.output);
    println!(
        "[HashMap instantiated {} times; interpreter boxed {} tuples, VM boxed {}]",
        c.compiled
            .classes
            .iter()
            .filter(|cl| cl.name.starts_with("HashMap"))
            .count(),
        interp.interp_stats.map(|s| s.allocs.tuples).unwrap_or(0),
        vm.vm_stats.map(|s| s.heap.tuple_boxes).unwrap_or(0),
    );
}
