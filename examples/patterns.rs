//! The multi-paradigm design patterns of Section 3, each as a running
//! Virgil program: interface adapters (§3.1), abstract data types (§3.2),
//! ad hoc polymorphism (§3.3), the polymorphic matcher (§3.4), the
//! footnote-5 formatted print, an enum emulation (§6.1 future work), and
//! the variance discussion (§3.6). The variant-type pattern (§3.5) has its
//! own example, `instr_backend`.
//!
//! Run with: `cargo run --example patterns`

use vgl::Compiler;

struct Pattern {
    name: &'static str,
    paper: &'static str,
    source: &'static str,
}

const PATTERNS: &[Pattern] = &[
    Pattern {
        name: "interface adapter",
        paper: "§3.1, listings (f1)-(g9)",
        source: r#"
class Record { def tag: int; new(tag) { } }
class Key { def id: int; new(id) { } }

// "a dictionary of named interface methods" — fields hold functions.
class DatastoreInterface(
    create: () -> Record,
    load: Key -> Record,
    store: Record -> ()) {
}

class DatastoreImpl {
    var stored: int;
    def create() -> Record { return Record.new(0); }
    def load(k: Key) -> Record { return Record.new(k.id); }
    def store(r: Record) { stored = stored + 1; }
    // "simply construct an instance of the interface using its own methods"
    def adapt() -> DatastoreInterface {
        return DatastoreInterface.new(create, load, store);
    }
}

def main() {
    var impl = DatastoreImpl.new();
    var ds = impl.adapt();
    ds.store(ds.create());
    ds.store(ds.load(Key.new(7)));
    System.puts("records stored: "); System.puti(impl.stored);
    System.puts(", loaded tag: "); System.puti(ds.load(Key.new(42)).tag);
    System.ln();
}
"#,
    },
    Pattern {
        name: "abstract data type",
        paper: "§3.2, listings (h1)-(i18)",
        source: r#"
// A number with unknown representation but known operations (h1-h9).
class NumberInterface<T>(
    add: (T, T) -> T,
    sub: (T, T) -> T,
    compare: (T, T) -> bool,
    one: T,
    zero: T) {
}

// "the basic operators like int.+ as first class functions make it easy
//  to adapt the basic primitive type int to the ADT interface"
var IntInterface = NumberInterface.new(int.+, int.-, int.==, 1, 0);

def sumN<T>(num: NumberInterface<T>, n: int) -> T {
    var acc = num.zero;
    for (i = 0; i < n; i = i + 1) acc = num.add(acc, num.one);
    return acc;
}

def main() {
    System.puts("sum of 42 ones: ");
    System.puti(sumN(IntInterface, 42));
    System.ln();
}
"#,
    },
    Pattern {
        name: "ad hoc polymorphism",
        paper: "§3.3, listings (j1)-(j9)",
        source: r#"
def printInt(a: int)    { System.puts("int: ");    System.puti(a); System.ln(); }
def printBool(a: bool)  { System.puts("bool: ");   System.putb(a); System.ln(); }
def printString(a: string) { System.puts("string: "); System.puts(a); System.ln(); }
def printByte(a: byte)  { System.puts("byte: ");   System.putc(a); System.ln(); }

// "a design pattern that admits a small number of overloads, making use
//  of type parameters and casts" — the compiler folds the whole chain
//  away per specialization.
def print1<T>(a: T) {
    if (int.?(a))    printInt(int.!(a));
    if (bool.?(a))   printBool(bool.!(a));
    if (string.?(a)) printString(string.!(a));
    if (byte.?(a))   printByte(byte.!(a));
}

def main() {
    print1(0);
    print1(false);
    print1("hello");
    print1('!');
}
"#,
    },
    Pattern {
        name: "polymorphic matcher",
        paper: "§3.4, listings (k1)-(m8)",
        source: r#"
// "declaring a base class Any and a subclass Box<T> extends Any allows
//  any value to be boxed" — subtyping hides the type parameter; the
//  un-erased type arguments recover it at runtime.
class Any { }
class Box<T> extends Any {
    def val: T;
    new(val) { }
    def unbox() -> T { return val; }
}
class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }

class Matcher {
    var matches: List<Any>;
    def add<T>(f: T -> void) {
        matches = List<Any>.new(Box<T -> void>.new(f), matches);
    }
    def dispatch<T>(v: T) {
        for (l = matches; l != null; l = l.tail) {
            var f = l.head;
            if (Box<T -> void>.?(f)) {
                Box<T -> void>.!(f).unbox()(v);
                return;
            }
        }
        System.puts("no match"); System.ln();
    }
}

def printInt(a: int)   { System.puts("got int ");  System.puti(a); System.ln(); }
def printBool(a: bool) { System.puts("got bool "); System.putb(a); System.ln(); }
def printPair(a: (int, int)) {
    System.puts("got pair ("); System.puti(a.0); System.puts(", ");
    System.puti(a.1); System.puts(")"); System.ln();
}

def main() {
    var m = Matcher.new();
    m.add(printInt);
    m.add(printBool);
    m.add(printPair);
    m.dispatch(1);
    m.dispatch(true);
    m.dispatch((2, 3));
    m.dispatch("unhandled");
}
"#,
    },
    Pattern {
        name: "formatted print (%1 substitution)",
        paper: "§3.3, listings (j7)-(j9) and footnote 5",
        source: r#"
// The paper's print1 calls look like print1("Result: %1\n", 0): the format
// string's %1 is replaced by the rendered argument. Footnote 5: "our
// implementation of print accepts the standard primitive types and also
// functions of type StringBuffer -> void".
class StringBuffer {
    var data: Array<byte>;
    var len: int;
    new() { data = Array<byte>.new(16); }
    def putc(c: byte) {
        if (len == data.length) {
            var nd = Array<byte>.new(data.length * 2);
            for (i = 0; i < len; i = i + 1) nd[i] = data[i];
            data = nd;
        }
        data[len] = c;
        len = len + 1;
    }
    def puts(s: string) { for (i = 0; i < s.length; i = i + 1) putc(s[i]); }
    def puti(v: int) {
        if (v < 0) { putc('-'); puti(0 - v); return; }
        if (v >= 10) puti(v / 10);
        putc(byte.!(int.!('0') + v % 10));
    }
    def flush() {
        for (i = 0; i < len; i = i + 1) System.putc(data[i]);
        len = 0;
    }
}

def isa<F, T>(x: T) -> bool { return F.?<T>(x); }
def asa<F, T>(x: T) -> F { return F.!<T>(x); }

def render<T>(buf: StringBuffer, a: T) {
    if (int.?(a)) { buf.puti(int.!(a)); return; }
    if (bool.?(a)) { buf.puts(bool.!(a) ? "true" : "false"); return; }
    if (string.?(a)) { buf.puts(string.!(a)); return; }
    if (byte.?(a)) { buf.putc(byte.!(a)); return; }
    // Footnote 5: objects render themselves via a passed method.
    if (isa<StringBuffer -> void, T>(a)) {
        asa<StringBuffer -> void, T>(a)(buf);
        return;
    }
    buf.puts("?");
}

def print1<T>(fmt: string, a: T) {
    var buf = StringBuffer.new();
    var i = 0;
    while (i < fmt.length) {
        if (fmt[i] == '%' && i + 1 < fmt.length && fmt[i + 1] == '1') {
            render(buf, a);
            i = i + 2;
        } else {
            buf.putc(fmt[i]);
            i = i + 1;
        }
    }
    buf.flush();
}

class Point {
    def x: int; def y: int;
    new(x, y) { }
    // "we equip those classes that need to be printed with methods that
    //  render the object into a StringBuffer; we can then simply pass
    //  o.render to the print method."
    def render(buf: StringBuffer) {
        buf.puts("Point("); buf.puti(x); buf.puts(", "); buf.puti(y); buf.puts(")");
    }
}

def main() {
    print1("Result: %1\n", 42);
    print1("Boolean: %1\n", false);
    print1("Hello %1!\n", "world");
    var p = Point.new(3, 4);
    print1("Where: %1\n", p.render);
}
"#,
    },
    Pattern {
        name: "enumerated types (future work, emulated)",
        paper: "§6.1: \"enumerated types are of high priority\"",
        source: r#"
// Until the language grows enums, the four features emulate them: a class
// whose instances are fixed globals, with ordinal and name, plus exhaustive
// dispatch through a function array.
class Color {
    def ordinal: int;
    def name: string;
    new(ordinal, name) { }
}
def RED = Color.new(0, "RED");
def GREEN = Color.new(1, "GREEN");
def BLUE = Color.new(2, "BLUE");
var ALL = [RED, GREEN, BLUE];

def wavelength(c: Color) -> int {
    var table = [700, 546, 435];
    return table[c.ordinal];
}

def main() {
    for (i = 0; i < ALL.length; i = i + 1) {
        var c = ALL[i];
        System.puts(c.name);
        System.puts(" = ");
        System.puti(wavelength(c));
        System.puts("nm ");
        // Identity works like enum equality.
        if (c == GREEN) System.puts("(the eye's favorite) ");
    }
    System.ln();
}
"#,
    },
    Pattern {
        name: "variance via functions",
        paper: "§3.6, listings (o1)-(o7)",
        source: r#"
class Animal { def sound() -> string { return "..."; } }
class Bat extends Animal { def sound() -> string { return "squeak"; } }
class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }

def apply<A>(list: List<A>, f: A -> void) {
    for (l = list; l != null; l = l.tail) f(l.head);
}

def g(a: Animal) { System.puts(a.sound()); System.puts(" "); }

def main() {
    // List<Bat> is NOT a List<Animal> (classes are invariant), but
    // `Animal -> void <: Bat -> void` (contravariance), so passing g works.
    var bats: List<Bat> = List.new(Bat.new(), List.new(Bat.new(), null));
    apply(bats, g);
    System.ln();
}
"#,
    },
];

fn main() {
    for p in PATTERNS {
        println!("=== {} ({}) ===", p.name, p.paper);
        match Compiler::new().compile(p.source) {
            Ok(c) => {
                let interp = c.interpret();
                let vm = c.execute();
                assert_eq!(interp.output, vm.output, "engines disagree on {}", p.name);
                assert_eq!(interp.result, vm.result, "engines disagree on {}", p.name);
                print!("{}", vm.output);
                println!(
                    "  [{} specializations, {} queries folded, both engines agree]",
                    c.stats.mono.method_instances, c.stats.opt.queries_folded
                );
            }
            Err(e) => {
                eprintln!("compile error:\n{e}");
                std::process::exit(1);
            }
        }
        println!();
    }
}
