//! The §3.5 variant-type pattern at full size: a miniature compiler backend
//! that models machine instructions with **two class definitions** instead of
//! one class per operand shape — "the Instr class in this case is like a
//! super-closure" (listings (n1)-(n20)).
//!
//! The program builds a small instruction stream for an imaginary two-address
//! machine, runs register allocation over it (iterating operands via a
//! second function field), emits "machine code" bytes, and then pattern-
//! matches instructions with runtime type queries.
//!
//! Run with: `cargo run --example instr_backend`

use vgl::Compiler;

const PROGRAM: &str = r#"
class Buffer {
    var bytes: Array<byte>;
    var len: int;
    new() { bytes = Array<byte>.new(64); }
    def put(b: byte) { bytes[len] = b; len = len + 1; }
    def dump() {
        for (i = 0; i < len; i = i + 1) {
            var v = int.!(bytes[i]);
            System.puti(v / 16); System.puti(v % 16); System.putc(' ');
        }
        System.ln();
    }
}

class Reg {
    def num: int;
    def name: string;
    new(num, name) { }
}

// (n1)-(n11): the two-class variant encoding. `emitFunc` assembles the
// instruction; `regsFunc` exposes the register operands for the register
// allocator — "it can have more than one operation, such as iterating over
// the register operands of the instruction for register allocation".
class Instr {
    def emit(buf: Buffer);
    def regs() -> Array<Reg>;
}
class InstrOf<T> extends Instr {
    var emitFunc: (Buffer, T) -> void;
    var regsFunc: T -> Array<Reg>;
    var val: T;
    new(emitFunc, regsFunc, val) { }
    def emit(buf: Buffer) { emitFunc(buf, val); }
    def regs() -> Array<Reg> { return regsFunc(val); }
}

// ---- the "assembler": plain functions reused as emitFuncs (n12)-(n14) ----
def emitAdd(buf: Buffer, ops: (Reg, Reg)) {
    buf.put('\0'); buf.put(byte.!(ops.0.num * 16 + ops.1.num));
}
def emitAddi(buf: Buffer, ops: (Reg, int)) {
    buf.put(byte.!(1)); buf.put(byte.!(ops.0.num)); buf.put(byte.!(ops.1 & 255));
}
def emitNeg(buf: Buffer, ops: Reg) {
    buf.put(byte.!(2)); buf.put(byte.!(ops.num));
}

// Operand iterators for the register allocator.
def regsRR(ops: (Reg, Reg)) -> Array<Reg> { return [ops.0, ops.1]; }
def regsRI(ops: (Reg, int)) -> Array<Reg> { return [ops.0]; }
def regsR(ops: Reg) -> Array<Reg> { return [ops]; }

def countUses(instrs: Array<Instr>, nregs: int) -> Array<int> {
    var uses = Array<int>.new(nregs);
    for (i = 0; i < instrs.length; i = i + 1) {
        var rs = instrs[i].regs();
        for (j = 0; j < rs.length; j = j + 1) {
            uses[rs[j].num] = uses[rs[j].num] + 1;
        }
    }
    return uses;
}

def describe(i: Instr) {
    // (n15)-(n20): pattern matching with dynamic type queries.
    if (InstrOf<(Reg, Reg)>.?(i)) {
        var v = InstrOf<(Reg, Reg)>.!(i).val;
        System.puts("add "); System.puts(v.0.name); System.puts(", "); System.puts(v.1.name);
    }
    if (InstrOf<(Reg, int)>.?(i)) {
        var v = InstrOf<(Reg, int)>.!(i).val;
        System.puts("addi "); System.puts(v.0.name); System.puts(", #"); System.puti(v.1);
    }
    if (InstrOf<Reg>.?(i)) {
        var v = InstrOf<Reg>.!(i).val;
        System.puts("neg "); System.puts(v.name);
    }
    System.ln();
}

def main() -> int {
    var rax = Reg.new(0, "rax"), rbx = Reg.new(1, "rbx"), rcx = Reg.new(2, "rcx");
    var is: Array<Instr> = [
        InstrOf.new(emitAdd, regsRR, (rax, rbx)),
        InstrOf.new(emitAddi, regsRI, (rcx, 11)),
        InstrOf.new(emitNeg, regsR, rax),
        InstrOf.new(emitAdd, regsRR, (rcx, rax))
    ];

    System.puts("listing:"); System.ln();
    for (i = 0; i < is.length; i = i + 1) { System.puts("  "); describe(is[i]); }

    var uses = countUses(is, 3);
    System.puts("register pressure: ");
    for (r = 0; r < uses.length; r = r + 1) { System.puti(uses[r]); System.putc(' '); }
    System.ln();

    var buf = Buffer.new();
    for (i = 0; i < is.length; i = i + 1) is[i].emit(buf);
    System.puts("encoded ("); System.puti(buf.len); System.puts(" bytes): ");
    buf.dump();
    return buf.len;
}
"#;

fn main() {
    let c = match Compiler::new().compile(PROGRAM) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error:\n{e}");
            std::process::exit(1);
        }
    };
    let interp = c.interpret();
    let vm = c.execute();
    assert_eq!(interp.output, vm.output, "engines must agree");
    print!("{}", vm.output);
    println!(
        "[{} InstrOf specializations live; VM ran {} instructions with {} GC runs]",
        c.compiled
            .classes
            .iter()
            .filter(|cl| cl.name.starts_with("InstrOf"))
            .count(),
        vm.vm_stats.map(|s| s.instrs).unwrap_or(0),
        vm.vm_stats.map(|s| s.heap.collections).unwrap_or(0),
    );
}
