// A `>>` outside any generic type: the split journal must back out cleanly
// and report an expression error, not panic.
def main() {
  var x = >>;
  var y: int = 3;
}
