// Duplicate class names and an unknown superclass.
class Dup { }
class Dup { def x: int; }
class Orphan extends Missing { }
def main() { }
