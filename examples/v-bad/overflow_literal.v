// Out-of-range integer literals. `-2147483648` (int min) is legal and must
// lex through the negation path; `-9223372036854775808` also lexes as one
// negated literal (i64 min) but draws a single, clean range error from the
// typechecker -- not lexer garbage.
def main() {
  var a = 9223372036854775808;
  var b = 0xFFFFFFFFFFFFFFFFFF;
  var ok = -2147483648;
  var c = -9223372036854775808;
}
