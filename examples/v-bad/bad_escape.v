// Malformed escapes in string and byte literals.
def main() {
  var s = "bad \q escape";
  var b = '\z';
  var c = 'xy';
}
