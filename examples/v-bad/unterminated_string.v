// The string literal never closes; the lexer must recover at the line end
// and the parser must keep going to find the second error.
def main() {
  var s = "this string never ends;
  var t: int = false;
}
