// Missing semicolons and a missing call argument; recovery must keep the
// rest of the function analyzable.
def f(a: int, b: int) -> int { return a + b; }
def main() {
  var x = f(, 2);
  var y = 1
  var z: int = false;
}
