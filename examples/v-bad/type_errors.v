// Several independent type errors across class and function boundaries.
class Point {
  def x: int;
  new(x) { }
}
def dist(p: Point) -> int { return p.x; }
def main() {
  var p = Point.new(true);
  var n: bool = dist(p);
  var q: Point = 3;
}
