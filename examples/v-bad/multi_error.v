// Five independent mistakes; `vglc check` must report every one of them in a
// single run (error recovery keeps analysis going past each failure).
def main() {
  var a: int = true;
  var b = unknown_name;
  var c: NoSuchType = null;
  var d: bool = 1 + false;
  undefined_fn(1);
}
