//! L1–L9: every numbered listing in Section 2 of the paper, compiled and
//! executed through the public facade on both engines.

use vgl::Compiler;

/// Compiles + runs on both engines, asserting agreement; returns (result,
/// output).
fn both(src: &str) -> (String, String) {
    let c = Compiler::new().compile(src).unwrap_or_else(|e| panic!("compile:\n{e}"));
    let i = c.interpret();
    let v = c.execute();
    assert_eq!(i.result, v.result, "results differ for:\n{src}");
    assert_eq!(i.output, v.output, "outputs differ for:\n{src}");
    (v.result.expect("runs"), v.output)
}

#[test]
fn listing_a_classes_and_inheritance() {
    // (a1)-(a10)
    let (r, _) = both(
        "class A {\n\
           var f: int;\n\
           def g: int;\n\
           new(f, g) { }\n\
           def m(a: byte) -> int { return f * 10 + g; }\n\
         }\n\
         class B extends A {\n\
           new() super(3, 4) { }\n\
           def m(a: byte) -> int { return int.!(a); }\n\
         }\n\
         def main() -> int {\n\
           var a: A = A.new(1, 2);\n\
           var b: A = B.new();\n\
           return a.m('\\0') * 1000 + b.m('!');\n\
         }",
    );
    assert_eq!(r, "12033");
}

#[test]
fn listing_b_first_class_functions() {
    // (b1)-(b15)
    let (r, _) = both(
        "class A {\n\
           var f: int;\n\
           def g: int;\n\
           new(f, g) { }\n\
           def m(a: byte) -> int { return f + int.!(a); }\n\
         }\n\
         class B extends A { new() super(9, 9) { } }\n\
         def main() -> int {\n\
           var a = A.new(0, 1);        // (b1)\n\
           var m1 = a.m;               // (b2) byte -> int\n\
           var m2 = A.m;               // (b3) (A, byte) -> int\n\
           var x = a.m('\\0');         // (b4)\n\
           var y = m1('\\0');          // (b5)\n\
           var z = m2(a, '\\0');       // (b6)\n\
           var w = A.new;              // (b7) (int, int) -> A\n\
           var zz = byte.==;           // (b8)\n\
           var ww = A.!=;              // (b9)\n\
           var p = int.+;              // (b10)\n\
           var mm = int.-;             // (b11)\n\
           var casted = A.!(B.new());  // (b12) upcast\n\
           var isa = A.?(a);           // (b13)\n\
           var cf = A.!<B>;            // (b14) B -> A\n\
           var qf = A.?<B>;            // (b15) B -> bool\n\
           var n = x + y + z;                        // 0\n\
           if (zz('q', 'q')) n = n + 1;\n\
           if (ww(a, casted)) n = n + 10;\n\
           n = n + p(100, mm(200, 100));             // +200\n\
           if (isa) n = n + 1000;\n\
           if (qf(B.new())) n = n + 10000;\n\
           var made = w(5, 6);\n\
           return n + made.f;                        // + 5\n\
         }",
    );
    assert_eq!(r, "11216");
}

#[test]
fn listing_c_tuples() {
    // (c1)-(c6)
    let (r, _) = both(
        "def main() -> int {\n\
           var x: (int, int) = (0, 1);\n\
           var y: (byte, bool) = ('a', true);\n\
           var z: ((int, int), (byte, bool)) = (x, y);\n\
           var w: (int) = x.0;\n\
           var u: byte = (z.1.0);\n\
           var v: () = ();\n\
           var n = 0;\n\
           if (x == (0, 1)) n = n + 1;          // tuple equality\n\
           if (z == ((0, 1), ('a', true))) n = n + 10;\n\
           if (v == ()) n = n + 100;            // void equality\n\
           return n + w + int.!(u);\n\
         }",
    );
    assert_eq!(r, "208"); // 111 + 0 + 97
}

#[test]
fn listing_d_generics() {
    // (d1)-(d14)
    let (_, out) = both(
        "class List<T> {\n\
           var head: T;\n\
           var tail: List<T>;\n\
           new(head, tail) { }\n\
         }\n\
         def apply<A>(list: List<A>, f: A -> void) {\n\
           for (l = list; l != null; l = l.tail) f(l.head);\n\
         }\n\
         def print(i: int) { System.puti(i); }\n\
         def main() {\n\
           var a = List<int>.new(0, null);                  // (d10)\n\
           var b = List<(int, int)>.new((3, 4), null);      // (d11)\n\
           apply<int>(a, print);                            // (d12)\n\
           var c = List.new(5, null);                       // (d10')\n\
           var d = List.new((3, 4), null);                  // (d11')\n\
           apply(c, print);                                 // (d12')\n\
           var e = List<bool>.?(a);                         // (d13)\n\
           var f = List<void>.?(a);                         // (d14)\n\
           System.putb(e); System.putb(f);\n\
         }",
    );
    assert_eq!(out, "05falsefalse");
}

#[test]
fn listing_e_time() {
    // (e1)-(e5)
    let (_, out) = both(
        "def time<A, B>(func: A -> B, a: A) -> (B, int) {\n\
           var start = System.ticks();\n\
           return (func(a), System.ticks() - start);\n\
         }\n\
         def sqrt(x: int) -> int { return x / 2; }\n\
         def main() { System.puti(time(sqrt, 36).0); }",
    );
    assert_eq!(out, "18");
}

#[test]
fn listing_f_g_interface_adapter() {
    let (_, out) = both(
        "class Record { def tag: int; new(tag) { } }\n\
         class Key { def k: int; new(k) { } }\n\
         class DatastoreInterface(\n\
           create: () -> Record,\n\
           load: Key -> Record,\n\
           store: Record -> ()) {\n\
         }\n\
         class DatastoreImpl {\n\
           def create() -> Record { return Record.new(1); }\n\
           def load(k: Key) -> Record { return Record.new(k.k); }\n\
           def store(r: Record) { System.puts(\"stored \"); System.puti(r.tag); }\n\
           def adapt() -> DatastoreInterface {\n\
             return DatastoreInterface.new(create, load, store);\n\
           }\n\
         }\n\
         def main() {\n\
           var ds = DatastoreImpl.new().adapt();\n\
           ds.store(ds.load(Key.new(7)));\n\
         }",
    );
    assert_eq!(out, "stored 7");
}

#[test]
fn listing_h_i_adt() {
    let (r, _) = both(
        "class NumberInterface<T>(\n\
           add: (T, T) -> T,\n\
           sub: (T, T) -> T,\n\
           compare: (T, T) -> bool,\n\
           one: T,\n\
           zero: T) {\n\
         }\n\
         var IntInterface = NumberInterface.new(int.+, int.-, int.==, 1, 0);\n\
         def main() -> int {\n\
           var two = IntInterface.add(IntInterface.one, IntInterface.one);\n\
           var one = IntInterface.sub(two, IntInterface.one);\n\
           return IntInterface.compare(one, 1) ? two : -1;\n\
         }",
    );
    assert_eq!(r, "2");
}

#[test]
fn listing_j_print1() {
    let (_, out) = both(
        "def print1<T>(a: T) {\n\
           if (int.?(a)) { System.puts(\"i\"); System.puti(int.!(a)); }\n\
           if (bool.?(a)) { System.puts(\"b\"); System.putb(bool.!(a)); }\n\
           if (string.?(a)) { System.puts(\"s\"); System.puts(string.!(a)); }\n\
           if (byte.?(a)) { System.puts(\"c\"); System.putc(byte.!(a)); }\n\
         }\n\
         def main() {\n\
           print1(0);\n\
           print1(false);\n\
           print1(\"hi\");\n\
           print1('!');\n\
         }",
    );
    assert_eq!(out, "i0bfalseshic!");
}

#[test]
fn listing_k_m_matcher() {
    let (_, out) = both(
        "class Any { }\n\
         class Box<T> extends Any {\n\
           def val: T;\n\
           new(val) { }\n\
           def unbox() -> T { return val; }\n\
         }\n\
         class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         class Matcher {\n\
           var matches: List<Any>;\n\
           def add<T>(f: T -> void) {\n\
             matches = List<Any>.new(Box<T -> void>.new(f), matches);\n\
           }\n\
           def dispatch<T>(v: T) {\n\
             for (l = matches; l != null; l = l.tail) {\n\
               var f = l.head;\n\
               if (Box<T -> void>.?(f)) {\n\
                 Box<T -> void>.!(f).unbox()(v);\n\
                 return;\n\
               }\n\
             }\n\
           }\n\
         }\n\
         def printInt(a: int) { System.puti(a); }\n\
         def printBool(a: bool) { System.putb(a); }\n\
         def printString(a: string) { System.puts(a); }\n\
         def main() {\n\
           var m = Matcher.new();\n\
           m.add(printInt);\n\
           m.add(printBool);\n\
           m.add(printString);\n\
           m.dispatch(1);       // printInt\n\
           m.dispatch(true);    // printBool\n\
           m.dispatch(\"x\");   // printString\n\
         }",
    );
    assert_eq!(out, "1truex");
}

#[test]
fn listing_n_variants() {
    let (_, out) = both(
        "class Buffer { }\n\
         class Instr { def emit(buf: Buffer); }\n\
         class InstrOf<T> extends Instr {\n\
           var emitFunc: (Buffer, T) -> void;\n\
           var val: T;\n\
           new(emitFunc, val) { }\n\
           def emit(buf: Buffer) { emitFunc(buf, val); }\n\
         }\n\
         class Reg { def n: int; new(n) { } }\n\
         def add(b: Buffer, ops: (Reg, Reg)) { System.puts(\"add\"); }\n\
         def addi(b: Buffer, ops: (Reg, int)) { System.puts(\"addi\"); }\n\
         def neg(b: Buffer, ops: Reg) { System.puts(\"neg\"); }\n\
         def main() {\n\
           var rax = Reg.new(0), rbx = Reg.new(1);\n\
           var i = InstrOf.new(add, (rax, rbx));    // (n12)\n\
           var j = InstrOf.new(addi, (rax, -11));   // (n13)\n\
           var k = InstrOf.new(neg, rax);           // (n14)\n\
           var buf = Buffer.new();\n\
           i.emit(buf); j.emit(buf); k.emit(buf);\n\
           if (InstrOf<Reg>.?(k)) System.puts(\" k:reg\");          // (n15)\n\
           if (InstrOf<(Reg, Reg)>.?(i)) System.puts(\" i:rr\");    // (n17)\n\
           if (InstrOf<(Reg, int)>.?(j)) System.puts(\" j:ri\");    // (n19)\n\
           if (InstrOf<(Reg, int)>.?(i)) System.puts(\" BAD\");\n\
         }",
    );
    assert_eq!(out, "addaddineg k:reg i:rr j:ri");
}

#[test]
fn listing_o_variance() {
    let (_, out) = both(
        "class Animal { def who() -> int { return 0; } }\n\
         class Bat extends Animal { def who() -> int { return 1; } }\n\
         class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }\n\
         def apply<A>(list: List<A>, f: A -> void) {\n\
           for (l = list; l != null; l = l.tail) f(l.head);\n\
         }\n\
         def g(a: Animal) { System.puti(a.who()); }\n\
         def main() {\n\
           var b: List<Bat> = List.new(Bat.new(), null);\n\
           apply(b, g);   // (o7): OK via contravariant function types\n\
         }",
    );
    assert_eq!(out, "1");
}

#[test]
fn listing_p_calling_conventions() {
    let (_, out) = both(
        "def f(a: int, b: int) { System.puti(a + b); }\n\
         def g(a: (int, int)) { System.puti(a.0 * a.1); }\n\
         def r<A>(a: A) { System.puts(\"r\"); }\n\
         var z = true;\n\
         def main() {\n\
           var x = z ? f : g, t = (4, 5);\n\
           x(0, 1);   // (p4)\n\
           x(t);      // (p5)\n\
           var y = z ? r<(int, int)> : f;   // (p7)\n\
           y(0, 2);   // (p8)\n\
         }",
    );
    assert_eq!(out, "19r");
}

#[test]
fn listing_p_override() {
    // (p10)-(p17)
    let (_, out) = both(
        "class A {\n\
           def m(a: int, b: int) { System.puti(a + b); }\n\
         }\n\
         class B extends A {\n\
           def m(a: (int, int)) { System.puti(a.0 * a.1); }\n\
         }\n\
         def main() {\n\
           var a: A = z() ? A.new() : B.new();\n\
           a.m(3, 4);      // B.m via tuple convention: 12\n\
         }\n\
         def z() -> bool { return false; }",
    );
    assert_eq!(out, "12");
}

#[test]
fn listing_q_normalization() {
    let (_, out) = both(
        "def m(a: (string, int)) { System.puts(a.0); System.puti(a.1); }\n\
         def f(v: void) { System.puts(\".\"); }\n\
         def main() {\n\
           var b = (\"hello\", 15);      // (q1)\n\
           m(b);                          // (q3)\n\
           m(\"goodbye\", b.1);           // (q4)\n\
           m(\"cheers\", (11, 22).0);     // (q5)\n\
           var t: void;                   // (q7)\n\
           f(t);                          // (q8)\n\
         }",
    );
    assert_eq!(out, "hello15goodbye15cheers11.");
}
