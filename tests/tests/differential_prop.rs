//! Randomized differential testing: generated Virgil programs must behave
//! identically on the type-passing interpreter (source module), the
//! interpreter over the compiled module, and the VM — results, output, and
//! exceptions. This is the strongest evidence that monomorphization,
//! normalization, optimization, and lowering are semantics-preserving.
//!
//! Also checks the parse∘print round-trip property on every generated
//! program.
//!
//! Generation is driven by a seeded in-tree xorshift PRNG, so every run of
//! a given case count is deterministic and a failure prints its seed. Set
//! `VGL_PROP_CASES` to raise the case count (default 48).

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn cases() -> u64 {
    std::env::var("VGL_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn gen_int(rng: &mut Rng, depth: u32) -> String {
    let leaf = |rng: &mut Rng| match rng.below(5) {
        0 => {
            let v = rng.below(40) as i32 - 20;
            if v < 0 {
                format!("(0 - {})", -v)
            } else {
                v.to_string()
            }
        }
        1 => "a".to_string(),
        2 => "b".to_string(),
        3 => "p.0".to_string(),
        _ => "p.1".to_string(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    let d = depth - 1;
    match rng.below(14) {
        0 => leaf(rng),
        1 => format!("({} + {})", gen_int(rng, d), gen_int(rng, d)),
        2 => format!("({} - {})", gen_int(rng, d), gen_int(rng, d)),
        3 => format!("({} * {})", gen_int(rng, d), gen_int(rng, d)),
        // Division guarded against zero: divisor in 1..=8.
        4 => format!("({} / (1 + ({} & 7)))", gen_int(rng, d), gen_int(rng, d)),
        5 => format!("({} % (1 + ({} & 7)))", gen_int(rng, d), gen_int(rng, d)),
        6 => format!("({} << (({}) & 7))", gen_int(rng, d), gen_int(rng, d)),
        7 => format!("({} >> (({}) & 7))", gen_int(rng, d), gen_int(rng, d)),
        8 => format!(
            "({} ? {} : {})",
            gen_bool(rng, d),
            gen_int(rng, d),
            gen_int(rng, d)
        ),
        9 => format!(
            "choose({}, {}, {})",
            gen_bool(rng, d),
            gen_int(rng, d),
            gen_int(rng, d)
        ),
        10 => format!("f2({}, {})", gen_int(rng, d), gen_int(rng, d)),
        11 => format!("fst({})", gen_pair(rng, d)),
        12 => format!("({}).0", gen_pair(rng, d)),
        _ => format!("({}).1", gen_pair(rng, d)),
    }
}

fn gen_bool(rng: &mut Rng, depth: u32) -> String {
    let leaf = |rng: &mut Rng| {
        if rng.below(2) == 0 { "true".to_string() } else { "false".to_string() }
    };
    if depth == 0 {
        return leaf(rng);
    }
    let d = depth - 1;
    match rng.below(9) {
        0 => leaf(rng),
        1 => format!("({} < {})", gen_int(rng, d), gen_int(rng, d)),
        2 => format!("({} == {})", gen_int(rng, d), gen_int(rng, d)),
        3 => format!("({} >= {})", gen_int(rng, d), gen_int(rng, d)),
        4 => format!("({} == {})", gen_pair(rng, d), gen_pair(rng, d)),
        5 => format!("!({})", gen_bool(rng, d)),
        6 => format!("({} && {})", gen_bool(rng, d), gen_bool(rng, d)),
        7 => format!("({} || {})", gen_bool(rng, d), gen_bool(rng, d)),
        _ => format!(
            "choose({}, {}, {})",
            gen_bool(rng, d),
            gen_bool(rng, d),
            gen_bool(rng, d)
        ),
    }
}

fn gen_pair(rng: &mut Rng, depth: u32) -> String {
    let leaf = |rng: &mut Rng| match rng.below(3) {
        0 => "p".to_string(),
        1 => "(1, 2)".to_string(),
        _ => "(a, b)".to_string(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    let d = depth - 1;
    match rng.below(6) {
        0 => leaf(rng),
        1 => format!("({}, {})", gen_int(rng, d), gen_int(rng, d)),
        2 => format!("swapp({})", gen_pair(rng, d)),
        3 => format!("addp({}, {})", gen_pair(rng, d), gen_pair(rng, d)),
        4 => format!(
            "choose({}, {}, {})",
            gen_bool(rng, d),
            gen_pair(rng, d),
            gen_pair(rng, d)
        ),
        _ => format!(
            "({} ? {} : {})",
            gen_bool(rng, d),
            gen_pair(rng, d),
            gen_pair(rng, d)
        ),
    }
}

/// A random statement for main's body, threading the mutable vars a/b/p.
fn gen_stmt(rng: &mut Rng, depth: u32) -> String {
    match rng.below(15) {
        0 => format!("a = {};", gen_int(rng, depth)),
        1 => format!("b = {};", gen_int(rng, depth)),
        2 => format!("p = {};", gen_pair(rng, depth)),
        3 => format!(
            "if ({}) a = {}; else b = {};",
            gen_bool(rng, depth),
            gen_int(rng, depth),
            gen_int(rng, depth)
        ),
        4 => format!(
            "for (i = 0; i < 3; i = i + 1) a = a + {};",
            gen_int(rng, depth)
        ),
        5 => format!("System.puti({}); System.putc(' ');", gen_int(rng, depth)),
        6 => format!("sink({});", gen_pair(rng, depth)),
        // Array traffic, including arrays of tuples (SoA after the pipeline).
        7 => format!(
            "xs[({}) & 3] = {};",
            gen_int(rng, depth),
            gen_int(rng, depth)
        ),
        8 => format!("a = a + xs[({}) & 3];", gen_int(rng, depth)),
        9 => format!(
            "ps[({}) & 3] = {};",
            gen_int(rng, depth),
            gen_pair(rng, depth)
        ),
        10 => format!("p = ps[({}) & 3];", gen_int(rng, depth)),
        // Byte round-trips through checked casts (masked into range).
        11 => format!("a = a + int.!(byte.!(({}) & 255));", gen_int(rng, depth)),
        // Virtual dispatch through a mutable receiver variable.
        12 => format!(
            "o = {} ? o : mkd({});",
            gen_bool(rng, depth),
            gen_int(rng, depth)
        ),
        13 => format!("a = a + o.v({});", gen_int(rng, depth)),
        // Bind-time virtual resolution (a.m closures).
        _ => format!("{{ var f = o.v; b = b + f({}); }}", gen_int(rng, depth)),
    }
}

fn gen_stmts(rng: &mut Rng, max: u64, depth: u32) -> Vec<String> {
    let n = 1 + rng.below(max);
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

fn program(stmts: Vec<String>) -> String {
    let body = stmts.join("\n    ");
    format!(
        r#"
def choose<T>(c: bool, x: T, y: T) -> T {{ return c ? x : y; }}
def f2(x: int, y: int) -> int {{ return x * 2 - y; }}
def fst(q: (int, int)) -> int {{ return q.0; }}
def swapp(q: (int, int)) -> (int, int) {{ return (q.1, q.0); }}
def addp(x: (int, int), y: (int, int)) -> (int, int) {{
    return (x.0 + y.0, x.1 + y.1);
}}
def sink(q: (int, int)) {{ System.puti(q.0 ^ q.1); }}
class VBase {{
    var bias: int;
    new(bias) {{ }}
    def v(x: int) -> int {{ return x + bias; }}
}}
class VDer extends VBase {{
    new(bias: int) super(bias) {{ }}
    def v(x: int) -> int {{ return x * 2 - bias; }}
}}
def mkd(bias: int) -> VBase {{ return VDer.new(bias & 15); }}
def main() -> int {{
    var a = 3, b = 5;
    var p = (1, 2);
    var xs = Array<int>.new(4);
    var ps = Array<(int, int)>.new(4);
    var o: VBase = VBase.new(1);
    {body}
    System.puti(a); System.puti(b); System.puti(p.0); System.puti(p.1);
    return a ^ (b << 1) ^ p.0 ^ (p.1 << 2);
}}
"#
    )
}

fn run_interp(m: &vgl::Module, fuel: u64) -> (Result<String, String>, String) {
    let mut i = vgl::Interp::new(m);
    i.set_fuel(fuel);
    let r = match i.run() {
        Ok(v) => Ok(v.to_string()),
        Err(e) => Err(e.to_string()),
    };
    (r, i.output())
}

#[test]
fn differential_three_way() {
    for case in 0..cases() {
        let seed = 0xD1FF_0000 + case;
        let mut rng = Rng::new(seed);
        let src = program(gen_stmts(&mut rng, 5, 3));
        // Front end must accept the generated program.
        let mut d = vgl::Diagnostics::new();
        let ast = vgl_syntax::parse_program(&src, &mut d);
        assert!(!d.has_errors(), "seed {seed}: parse errors in generated program:\n{src}");
        let module = vgl_sema::analyze(&ast, &mut d)
            .unwrap_or_else(|| panic!("seed {seed}: sema errors {:#?} in:\n{src}", d.into_vec()));

        let (r1, o1) = run_interp(&module, 10_000_000);
        let (compiled, _) = vgl_passes::compile_pipeline(&module);
        let (r2, o2) = run_interp(&compiled, 10_000_000);
        assert_eq!(r1, r2, "seed {seed}: interp source vs compiled:\n{src}");
        assert_eq!(o1, o2, "seed {seed}: interp output source vs compiled:\n{src}");

        let prog = vgl_vm::lower(&compiled);
        let mut vm = vgl_vm::Vm::new(&prog);
        vm.set_fuel(50_000_000);
        let r3 = match vm.run() {
            Ok(words) => Ok(vgl_vm::ret_as_int(&words).expect("int result").to_string()),
            Err(e) => Err(e.to_string()),
        };
        assert_eq!(r1, r3, "seed {seed}: interp vs VM:\n{src}");
        assert_eq!(o1, vm.output(), "seed {seed}: interp vs VM output:\n{src}");
    }
}

#[test]
fn printer_round_trip() {
    for case in 0..cases() {
        let seed = 0x9913_0000 + case;
        let mut rng = Rng::new(seed);
        let src = program(gen_stmts(&mut rng, 3, 2));
        let mut d = vgl::Diagnostics::new();
        let p1 = vgl_syntax::parse_program(&src, &mut d);
        assert!(!d.has_errors(), "seed {seed}: parse errors:\n{src}");
        let printed = vgl_syntax::print_program(&p1);
        let mut d2 = vgl::Diagnostics::new();
        let p2 = vgl_syntax::parse_program(&printed, &mut d2);
        assert!(!d2.has_errors(), "seed {seed}: reparse failed:\n{printed}");
        // Fixpoint: printing the reparse gives identical text.
        assert_eq!(vgl_syntax::print_program(&p2), printed, "seed {seed}");
    }
}

#[test]
fn generated_exprs_fold_consistently() {
    for case in 0..cases() {
        let seed = 0xF01D_0000 + case;
        let mut rng = Rng::new(seed);
        let e = gen_int(&mut rng, 4);
        // A single pure expression: the optimizer may fold it entirely; the
        // value must not change.
        let src = format!(
            "def choose<T>(c: bool, x: T, y: T) -> T {{ return c ? x : y; }}\n\
             def f2(x: int, y: int) -> int {{ return x * 2 - y; }}\n\
             def fst(q: (int, int)) -> int {{ return q.0; }}\n\
             def swapp(q: (int, int)) -> (int, int) {{ return (q.1, q.0); }}\n\
             def addp(x: (int, int), y: (int, int)) -> (int, int) {{\n\
                 return (x.0 + y.0, x.1 + y.1);\n\
             }}\n\
             def sink(q: (int, int)) {{ System.puti(q.0 ^ q.1); }}\n\
             def main() -> int {{ var a = 3, b = 5; var p = (1, 2); return {e}; }}"
        );
        let c = vgl::Compiler::new()
            .compile(&src)
            .unwrap_or_else(|err| panic!("seed {seed}: compile failed:\n{err}\nfor:\n{src}"));
        let i = c.interpret();
        let v = c.execute();
        assert_eq!(i.result, v.result, "seed {seed}: engines disagree on:\n{src}");
    }
}
