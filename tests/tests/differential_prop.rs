//! Randomized differential testing: generated Virgil programs must behave
//! identically on the type-passing interpreter (source module), the
//! interpreter over the compiled module, and the VM — results, output, and
//! exceptions. This is the strongest evidence that monomorphization,
//! normalization, optimization, and lowering are semantics-preserving.
//!
//! Program generation lives in `vgl-fuzz` (typed AST model over the full
//! §2–§3 surface: class hierarchies, virtual/abstract dispatch, bound
//! delegates, generics, tuples up to width 16, queries/casts, recursion,
//! GC churn); these tests drive it through the seven-engine oracle and the
//! `vgl::Compiler` facade. Every failure prints the seed; reproduce with
//! `vglc fuzz --seed <seed> --cases 1`. Set `VGL_PROP_CASES` to raise the
//! case count (default 48).

use vgl::fuzz;

fn cases() -> u64 {
    std::env::var("VGL_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Every generated program agrees across all seven engine configurations
/// (source interpreter, monomorphized interpreter, VM, both optimized
/// variants, the VM over fused bytecode, and the same fused build rebuilt
/// at jobs = 8) on result, output, and trap — checked by the vgl-fuzz
/// oracle, which also validates the §4 IR invariants between passes and
/// asserts the parallel rebuild is byte-identical to the serial one.
#[test]
fn differential_three_way() {
    let gen = fuzz::GenConfig::default();
    let oracle = fuzz::OracleConfig::default();
    for case in 0..cases() {
        let seed = 0xD1FF_0000 + case;
        let prog = fuzz::gen_program(seed, &gen);
        let src = fuzz::emit(&prog);
        let verdict = fuzz::check_source(&src, &oracle);
        assert!(
            !verdict.is_failure(),
            "seed {seed}: {}\nprogram:\n{src}",
            fuzz::describe(&verdict)
        );
    }
}

/// Pinned regression sweep for the bytecode back-end optimizer and the
/// parallel back end: 500 seeded cases (base seed 42) through the full
/// seven-engine oracle. The `vm-fused` configuration validates the fused
/// bytecode with `check_fused` before running and asserts zero tuple boxes
/// after; the `vm-fused-par` configuration rebuilds at jobs = 8 and asserts
/// byte-identical bytecode before running, so a clean sweep here is both the
/// fusion/IC acceptance gate and the parallel-determinism parity gate.
/// Override the count with `VGL_FUZZ_CASES`.
#[test]
fn fuzz_regression_seed42_seven_engines() {
    let cfg = fuzz::FuzzConfig {
        seed: 42,
        cases: std::env::var("VGL_FUZZ_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(500),
        ..Default::default()
    };
    let report = fuzz::run_fuzz(&cfg, |_, _| {});
    match &report.failure {
        None => {}
        Some(f) => panic!(
            "case {} (seed {}):\n{}\nshrunk repro:\n{}",
            f.case_index, f.seed, f.verdict, f.shrunk
        ),
    }
}

/// Parse∘print reaches a fixpoint on every generated program.
#[test]
fn printer_round_trip() {
    let gen = fuzz::GenConfig::default();
    for case in 0..cases() {
        let seed = 0x9913_0000 + case;
        let src = fuzz::emit(&fuzz::gen_program(seed, &gen));
        let mut d = vgl::Diagnostics::new();
        let p1 = vgl_syntax::parse_program(&src, &mut d);
        assert!(!d.has_errors(), "seed {seed}: parse errors:\n{src}");
        let printed = vgl_syntax::print_program(&p1);
        let mut d2 = vgl::Diagnostics::new();
        let p2 = vgl_syntax::parse_program(&printed, &mut d2);
        assert!(!d2.has_errors(), "seed {seed}: reparse failed:\n{printed}");
        // Fixpoint: printing the reparse gives identical text.
        assert_eq!(vgl_syntax::print_program(&p2), printed, "seed {seed}");
    }
}

/// The optimizer (constant folding, query folding, devirtualization) must
/// never change a program's observable behavior: compile each generated
/// program with the optimizer on and off through the `vgl::Compiler` facade
/// and compare both engines' results and output.
#[test]
fn generated_exprs_fold_consistently() {
    let gen = fuzz::GenConfig::default();
    for case in 0..cases() {
        let seed = 0xF01D_0000 + case;
        let src = fuzz::emit(&fuzz::gen_program(seed, &gen));
        let opt = vgl::Compiler::new()
            .compile(&src)
            .unwrap_or_else(|err| panic!("seed {seed}: compile failed:\n{err}\nfor:\n{src}"));
        let noopt = vgl::Compiler::new()
            .without_optimizer()
            .compile(&src)
            .unwrap_or_else(|err| panic!("seed {seed}: compile failed:\n{err}\nfor:\n{src}"));
        let runs = [opt.interpret(), opt.execute(), noopt.interpret(), noopt.execute()];
        for r in &runs[1..] {
            assert_eq!(
                runs[0].result, r.result,
                "seed {seed}: optimizer changed the result of:\n{src}"
            );
            assert_eq!(
                runs[0].output, r.output,
                "seed {seed}: optimizer changed the output of:\n{src}"
            );
        }
    }
}
