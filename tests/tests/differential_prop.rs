//! Property-based differential testing: randomly generated Virgil programs
//! must behave identically on the type-passing interpreter (source module),
//! the interpreter over the compiled module, and the VM — results, output,
//! and exceptions. This is the strongest evidence that monomorphization,
//! normalization, optimization, and lowering are semantics-preserving.
//!
//! Also checks the parse∘print round-trip property on every generated
//! program.

use proptest::prelude::*;

fn arb_int(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-20i32..20).prop_map(|v| if v < 0 { format!("(0 - {})", -v) } else { v.to_string() }),
        Just("a".to_string()),
        Just("b".to_string()),
        Just("p.0".to_string()),
        Just("p.1".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = move || arb_int(depth - 1);
    let subb = move || arb_bool(depth - 1);
    let subp = move || arb_pair(depth - 1);
    prop_oneof![
        leaf,
        (sub(), sub()).prop_map(|(x, y)| format!("({x} + {y})")),
        (sub(), sub()).prop_map(|(x, y)| format!("({x} - {y})")),
        (sub(), sub()).prop_map(|(x, y)| format!("({x} * {y})")),
        // Division guarded against zero: divisor in 1..=8.
        (sub(), sub()).prop_map(|(x, y)| format!("({x} / (1 + ({y} & 7)))")),
        (sub(), sub()).prop_map(|(x, y)| format!("({x} % (1 + ({y} & 7)))")),
        (sub(), sub()).prop_map(|(x, y)| format!("({x} << (({y}) & 7))")),
        (sub(), sub()).prop_map(|(x, y)| format!("({x} >> (({y}) & 7))")),
        (subb(), sub(), sub()).prop_map(|(c, x, y)| format!("({c} ? {x} : {y})")),
        (subb(), sub(), sub()).prop_map(|(c, x, y)| format!("choose({c}, {x}, {y})")),
        (sub(), sub()).prop_map(|(x, y)| format!("f2({x}, {y})")),
        subp().prop_map(|p| format!("fst({p})")),
        subp().prop_map(|p| format!("({p}).0")),
        subp().prop_map(|p| format!("({p}).1")),
    ]
    .boxed()
}

fn arb_bool(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![Just("true".to_string()), Just("false".to_string())];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = move || arb_bool(depth - 1);
    let subi = move || arb_int(depth - 1);
    let subp = move || arb_pair(depth - 1);
    prop_oneof![
        leaf,
        (subi(), subi()).prop_map(|(x, y)| format!("({x} < {y})")),
        (subi(), subi()).prop_map(|(x, y)| format!("({x} == {y})")),
        (subi(), subi()).prop_map(|(x, y)| format!("({x} >= {y})")),
        (subp(), subp()).prop_map(|(x, y)| format!("({x} == {y})")),
        sub().prop_map(|x| format!("!({x})")),
        (sub(), sub()).prop_map(|(x, y)| format!("({x} && {y})")),
        (sub(), sub()).prop_map(|(x, y)| format!("({x} || {y})")),
        (sub(), sub(), sub()).prop_map(|(c, x, y)| format!("choose({c}, {x}, {y})")),
    ]
    .boxed()
}

fn arb_pair(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("p".to_string()),
        Just("(1, 2)".to_string()),
        Just("(a, b)".to_string()),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = move || arb_pair(depth - 1);
    let subi = move || arb_int(depth - 1);
    let subb = move || arb_bool(depth - 1);
    prop_oneof![
        leaf,
        (subi(), subi()).prop_map(|(x, y)| format!("({x}, {y})")),
        sub().prop_map(|x| format!("swapp({x})")),
        (sub(), sub()).prop_map(|(x, y)| format!("addp({x}, {y})")),
        (subb(), sub(), sub()).prop_map(|(c, x, y)| format!("choose({c}, {x}, {y})")),
        (subb(), sub(), sub()).prop_map(|(c, x, y)| format!("({c} ? {x} : {y})")),
    ]
    .boxed()
}

/// A random statement for main's body, threading the mutable vars a/b/p.
fn arb_stmt(depth: u32) -> BoxedStrategy<String> {
    prop_oneof![
        arb_int(depth).prop_map(|e| format!("a = {e};")),
        arb_int(depth).prop_map(|e| format!("b = {e};")),
        arb_pair(depth).prop_map(|e| format!("p = {e};")),
        (arb_bool(depth), arb_int(depth), arb_int(depth))
            .prop_map(|(c, x, y)| format!("if ({c}) a = {x}; else b = {y};")),
        (arb_int(depth)).prop_map(|e| format!(
            "for (i = 0; i < 3; i = i + 1) a = a + {e};"
        )),
        arb_int(depth).prop_map(|e| format!("System.puti({e}); System.putc(' ');")),
        arb_pair(depth).prop_map(|e| format!("sink({e});")),
        // Array traffic, including arrays of tuples (SoA after the pipeline).
        (arb_int(depth), arb_int(depth))
            .prop_map(|(i, v)| format!("xs[({i}) & 3] = {v};")),
        arb_int(depth).prop_map(|i| format!("a = a + xs[({i}) & 3];")),
        (arb_int(depth), arb_pair(depth))
            .prop_map(|(i, v)| format!("ps[({i}) & 3] = {v};")),
        arb_int(depth).prop_map(|i| format!("p = ps[({i}) & 3];")),
        // Byte round-trips through checked casts (masked into range).
        arb_int(depth).prop_map(|e| format!("a = a + int.!(byte.!(({e}) & 255));")),
        // Virtual dispatch through a mutable receiver variable.
        (arb_bool(depth), arb_int(depth))
            .prop_map(|(c, e)| format!("o = {c} ? o : mkd({e});")),
        arb_int(depth).prop_map(|e| format!("a = a + o.v({e});")),
        // Bind-time virtual resolution (a.m closures).
        arb_int(depth).prop_map(|e| format!("{{ var f = o.v; b = b + f({e}); }}")),
    ]
    .boxed()
}

fn program(stmts: Vec<String>) -> String {
    let body = stmts.join("\n    ");
    format!(
        r#"
def choose<T>(c: bool, x: T, y: T) -> T {{ return c ? x : y; }}
def f2(x: int, y: int) -> int {{ return x * 2 - y; }}
def fst(q: (int, int)) -> int {{ return q.0; }}
def swapp(q: (int, int)) -> (int, int) {{ return (q.1, q.0); }}
def addp(x: (int, int), y: (int, int)) -> (int, int) {{
    return (x.0 + y.0, x.1 + y.1);
}}
def sink(q: (int, int)) {{ System.puti(q.0 ^ q.1); }}
class VBase {{
    var bias: int;
    new(bias) {{ }}
    def v(x: int) -> int {{ return x + bias; }}
}}
class VDer extends VBase {{
    new(bias: int) super(bias) {{ }}
    def v(x: int) -> int {{ return x * 2 - bias; }}
}}
def mkd(bias: int) -> VBase {{ return VDer.new(bias & 15); }}
def main() -> int {{
    var a = 3, b = 5;
    var p = (1, 2);
    var xs = Array<int>.new(4);
    var ps = Array<(int, int)>.new(4);
    var o: VBase = VBase.new(1);
    {body}
    System.puti(a); System.puti(b); System.puti(p.0); System.puti(p.1);
    return a ^ (b << 1) ^ p.0 ^ (p.1 << 2);
}}
"#
    )
}

fn run_interp(m: &vgl::Module, fuel: u64) -> (Result<String, String>, String) {
    let mut i = vgl::Interp::new(m);
    i.set_fuel(fuel);
    let r = match i.run() {
        Ok(v) => Ok(v.to_string()),
        Err(e) => Err(e.to_string()),
    };
    (r, i.output())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48),
        ..ProptestConfig::default()
    })]

    #[test]
    fn differential_three_way(stmts in proptest::collection::vec(arb_stmt(3), 1..6)) {
        let src = program(stmts);
        // Front end must accept the generated program.
        let mut d = vgl::Diagnostics::new();
        let ast = vgl_syntax::parse_program(&src, &mut d);
        prop_assert!(!d.has_errors(), "parse errors in generated program:\n{src}");
        let module = vgl_sema::analyze(&ast, &mut d)
            .unwrap_or_else(|| panic!("sema errors {:#?} in:\n{src}", d.into_vec()));

        let (r1, o1) = run_interp(&module, 10_000_000);
        let (compiled, _) = vgl_passes::compile_pipeline(&module);
        let (r2, o2) = run_interp(&compiled, 10_000_000);
        prop_assert_eq!(&r1, &r2, "interp source vs compiled:\n{}", src);
        prop_assert_eq!(&o1, &o2, "interp output source vs compiled:\n{}", src);

        let prog = vgl_vm::lower(&compiled);
        let mut vm = vgl_vm::Vm::new(&prog);
        vm.set_fuel(50_000_000);
        let r3 = match vm.run() {
            Ok(words) => Ok(vgl_vm::ret_as_int(&words).expect("int result").to_string()),
            Err(e) => Err(e.to_string()),
        };
        prop_assert_eq!(&r1, &r3, "interp vs VM:\n{}", src);
        prop_assert_eq!(&o1, &vm.output(), "interp vs VM output:\n{}", src);
    }

    #[test]
    fn printer_round_trip(stmts in proptest::collection::vec(arb_stmt(2), 1..4)) {
        let src = program(stmts);
        let mut d = vgl::Diagnostics::new();
        let p1 = vgl_syntax::parse_program(&src, &mut d);
        prop_assert!(!d.has_errors());
        let printed = vgl_syntax::print_program(&p1);
        let mut d2 = vgl::Diagnostics::new();
        let p2 = vgl_syntax::parse_program(&printed, &mut d2);
        prop_assert!(!d2.has_errors(), "reparse failed:\n{printed}");
        // Fixpoint: printing the reparse gives identical text.
        prop_assert_eq!(vgl_syntax::print_program(&p2), printed);
    }

    #[test]
    fn generated_exprs_fold_consistently(e in arb_int(4)) {
        // A single pure expression: the optimizer may fold it entirely; the
        // value must not change.
        let src = format!(
            "def choose<T>(c: bool, x: T, y: T) -> T {{ return c ? x : y; }}\n\
             def f2(x: int, y: int) -> int {{ return x * 2 - y; }}\n\
             def fst(q: (int, int)) -> int {{ return q.0; }}\n\
             def swapp(q: (int, int)) -> (int, int) {{ return (q.1, q.0); }}\n\
             def addp(x: (int, int), y: (int, int)) -> (int, int) {{\n\
                 return (x.0 + y.0, x.1 + y.1);\n\
             }}\n\
             def sink(q: (int, int)) {{ System.puti(q.0 ^ q.1); }}\n\
             def main() -> int {{ var a = 3, b = 5; var p = (1, 2); return {e}; }}"
        );
        let c = vgl::Compiler::new().compile(&src)
            .unwrap_or_else(|err| panic!("compile failed:\n{err}\nfor:\n{src}"));
        let i = c.interpret();
        let v = c.execute();
        prop_assert_eq!(&i.result, &v.result, "engines disagree on:\n{}", src);
    }
}
