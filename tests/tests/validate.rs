//! The `vgl_ir::validate` checkers must actually catch broken IR: compile a
//! valid program, then break an invariant by hand and assert the matching
//! checker reports it. This guards the guards — a checker that silently
//! accepts everything would make the fuzzer's pass-level validation (and the
//! `validate_ir` compile option) worthless.

use vgl_ir::{check_monomorphic, check_normalized, check_tuple_free};

fn compiled_module(src: &str) -> vgl::Module {
    let mut d = vgl::Diagnostics::new();
    let ast = vgl_syntax::parse_program(src, &mut d);
    assert!(!d.has_errors(), "parse errors");
    let module = vgl_sema::analyze(&ast, &mut d).expect("typechecks");
    let (compiled, _) = vgl_passes::compile_pipeline(&module);
    compiled
}

const CLEAN: &str = "def main() -> int { return 42; }";

/// The unlowered source module of a generic program still carries type
/// parameters — `check_monomorphic` must flag it, and the monomorphized
/// module must be clean.
#[test]
fn polymorphic_source_trips_check_monomorphic() {
    let src = "def id<T>(x: T) -> T { return x; }\n\
               def main() -> int { return id(3) + (id(true) ? 1 : 0); }";
    let mut d = vgl::Diagnostics::new();
    let ast = vgl_syntax::parse_program(src, &mut d);
    let module = vgl_sema::analyze(&ast, &mut d).expect("typechecks");
    let violations = check_monomorphic(&module);
    assert!(
        violations.iter().any(|v| v.message.contains("type parameters")),
        "expected a type-parameter violation, got {violations:?}"
    );
    let (mono, _) = vgl_passes::monomorphize(&module);
    assert!(check_monomorphic(&mono).is_empty());
}

/// Re-adding a type parameter to a compiled method must trip
/// `check_monomorphic`.
#[test]
fn injected_type_param_trips_check_monomorphic() {
    let mut m = compiled_module(CLEAN);
    assert!(check_monomorphic(&m).is_empty(), "clean module must validate");
    let main = m.main.expect("has main").0 as usize;
    m.methods[main].type_params.push(vgl_types::TypeVarId(0));
    let violations = check_monomorphic(&m);
    assert!(
        violations.iter().any(|v| v.message.contains("type parameters")),
        "expected a violation, got {violations:?}"
    );
}

/// A tuple-typed local injected into a normalized module must trip
/// `check_tuple_free` (the strict checker).
#[test]
fn injected_tuple_local_trips_check_tuple_free() {
    let mut m = compiled_module(CLEAN);
    assert!(check_tuple_free(&m).is_empty(), "clean module must validate");
    let main = m.main.expect("has main").0 as usize;
    let int = m.store.int;
    let pair = m.store.tuple(vec![int, int]);
    m.methods[main].locals.push(vgl_ir::Local {
        name: "injected".into(),
        ty: pair,
        mutable: true,
    });
    let violations = check_tuple_free(&m);
    assert!(
        violations.iter().any(|v| v.message.contains("tuple type")),
        "expected a tuple violation, got {violations:?}"
    );
}

/// A *nested* tuple-typed local is not a permitted boundary form and must
/// trip `check_normalized` too (a flat tuple-of-scalars local is a legal
/// call temp, so nest one level to break the invariant).
#[test]
fn injected_nested_tuple_local_trips_check_normalized() {
    let mut m = compiled_module(CLEAN);
    assert!(check_normalized(&m).is_empty(), "clean module must validate");
    let main = m.main.expect("has main").0 as usize;
    let int = m.store.int;
    let pair = m.store.tuple(vec![int, int]);
    let nested = m.store.tuple(vec![pair, int]);
    m.methods[main].locals.push(vgl_ir::Local {
        name: "injected".into(),
        ty: nested,
        mutable: true,
    });
    let violations = check_normalized(&m);
    assert!(
        violations.iter().any(|v| v.message.contains("nested tuple")),
        "expected a nested-tuple violation, got {violations:?}"
    );
}

/// A tuple-typed global must trip both `check_tuple_free` and
/// `check_normalized` — globals admit no boundary forms at all.
#[test]
fn injected_tuple_global_trips_both_tuple_checkers() {
    let src = "var g = 7;\ndef main() -> int { return g; }";
    let mut m = compiled_module(src);
    assert!(check_normalized(&m).is_empty(), "clean module must validate");
    let int = m.store.int;
    let pair = m.store.tuple(vec![int, int]);
    let g = m.globals.iter_mut().find(|g| g.name == "g").expect("global g");
    g.ty = pair;
    assert!(
        check_tuple_free(&m).iter().any(|v| v.location.starts_with("global ")),
        "check_tuple_free must flag the global"
    );
    assert!(
        check_normalized(&m).iter().any(|v| v.location.starts_with("global ")),
        "check_normalized must flag the global"
    );
}

/// A surviving tuple *construction* in a method body (not in a boundary
/// position) must trip `check_normalized`.
#[test]
fn surviving_tuple_construction_trips_check_normalized() {
    let mut m = compiled_module(CLEAN);
    let main = m.main.expect("has main").0 as usize;
    let int = m.store.int;
    let pair = m.store.tuple(vec![int, int]);
    let lit = |v| vgl_ir::Expr::new(vgl_ir::ExprKind::Int(v), int);
    let tup = vgl_ir::Expr::new(vgl_ir::ExprKind::Tuple(vec![lit(1), lit(2)]), pair);
    let body = m.methods[main].body.as_mut().expect("main has a body");
    body.stmts.insert(0, vgl_ir::Stmt::Expr(tup));
    let violations = check_normalized(&m);
    assert!(
        violations.iter().any(|v| v.message.contains("tuple construction")),
        "expected a construction violation, got {violations:?}"
    );
}

/// The `validate_ir` compiler option panics on broken IR and is on by
/// default in debug builds; a normal compile under it stays silent.
#[test]
fn validate_ir_option_is_quiet_on_valid_programs() {
    let opts = vgl::Options { validate_ir: true, ..vgl::Options::default() };
    let c = vgl::Compiler::with_options(opts)
        .compile("def pair() -> (int, int) { return (1, 2); }\n\
                  def main() -> int { var p = pair(); return p.0 + p.1; }")
        .expect("compiles with validation on");
    assert_eq!(c.execute().result.unwrap(), "3");
    assert!(vgl::Options::default().validate_ir == cfg!(debug_assertions));
}
