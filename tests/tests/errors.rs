//! Error-path coverage: every class of diagnostic the front end can emit,
//! checked through the public facade (so rendering also gets exercised).

use vgl::Compiler;

fn expect_err(src: &str, needle: &str) {
    let err = Compiler::new()
        .compile(src)
        .err()
        .unwrap_or_else(|| panic!("expected an error containing {needle:?} for:\n{src}"));
    let text = err.to_string();
    assert!(
        text.contains(needle),
        "expected {needle:?} in:\n{text}\nfor source:\n{src}"
    );
}

// ---- parse errors -----------------------------------------------------------

#[test]
fn parse_errors() {
    expect_err("def f( { }", "expected");
    expect_err("class { }", "expected");
    expect_err("def f() { return 1 }", "expected ';'");
    expect_err("def f() { var x = ; }", "expected an expression");
    expect_err("def f() { x = 5 @ 3; }", "unexpected character");
}

// ---- name resolution ----------------------------------------------------------

#[test]
fn unknown_names() {
    expect_err("def main() { nope(); }", "unknown identifier");
    expect_err("def main() { var x: Nope; }", "unknown type");
    expect_err("def main() { var x = Nope.new(); }", "unknown identifier");
    expect_err("class A { } def main(){ var a = A.new(); a.nope(); }", "no member");
    expect_err("class A { } def main(){ var a = A.new(); a.f = 1; }", "no field");
    expect_err("def main() { System.nope(); }", "System has no member");
}

#[test]
fn duplicates() {
    expect_err("class A { } class A { }", "duplicate class");
    expect_err("def f() { } def f() { }", "duplicate component declaration");
    expect_err("var x = 1; var x = 2;", "duplicate component declaration");
    expect_err("class A { var f: int; var f: int; }", "duplicate field");
    expect_err("def f(a: int, a: int) { }", "duplicate parameter");
    expect_err("class A<T, T> { }", "duplicate type parameter");
}

#[test]
fn builtin_shadowing() {
    expect_err("class int { }", "cannot redefine built-in name");
    expect_err("class System { }", "cannot redefine built-in name");
    expect_err("class Array<T> { }", "cannot redefine built-in name");
}

// ---- type errors -----------------------------------------------------------------

#[test]
fn type_mismatches() {
    expect_err("def main() { var x: int = true; }", "type mismatch");
    expect_err("def main() { var x: bool = 1; }", "type mismatch");
    expect_err("def f(x: int) { } def main() { f(true); }", "type mismatch");
    expect_err("def f() -> int { return true; }", "type mismatch");
    expect_err("def main() { if (1) { } }", "type mismatch");
    expect_err("def main() { var t = (1, true); var x: int = t; }", "type mismatch");
}

#[test]
fn arity_errors() {
    expect_err("def f(a: int, b: int) { } def main() { f(1, 2, 3); }", "argument");
    expect_err("class A<T> { } def main() { var x: A<int, int>; }", "type argument");
    expect_err("def f<T>(x: T) { } def main() { f<int, bool>(1); }", "type argument");
}

#[test]
fn tuple_errors() {
    expect_err("def main() { var t = (1, 2); var x = t.5; }", "out of range");
    expect_err("def main() { var x = 3; var y = x.1; }", "cannot index");
}

#[test]
fn arithmetic_type_errors() {
    expect_err("def main() { var x = true + 1; }", "type mismatch");
    expect_err("def main() { var x = !5; }", "type mismatch");
    expect_err("def main() { var x = -true; }", "type mismatch");
    expect_err(
        "class A { } class B { } def main() { var x = A.new() == B.new(); }",
        "cannot compare unrelated types",
    );
}

#[test]
fn cast_errors() {
    // §2.2: casts between unrelated types are rejected statically.
    expect_err("def main() { var x = int.!(true); }", "unrelated");
    expect_err(
        "class A { } class B { } def main() { var x = A.!(B.new()); }",
        "unrelated",
    );
    expect_err("def f(g: int -> int) { var x = bool.?(g); }", "unrelated");
}

#[test]
fn mutability_errors() {
    expect_err("def main() { def x = 1; x = 2; }", "immutable");
    expect_err(
        "class A { def g: int; new(g) { } } def main() { A.new(1).g = 2; }",
        "immutable",
    );
    expect_err("def k = 1; def main() { k = 2; }", "immutable");
}

#[test]
fn inheritance_errors() {
    expect_err("class A extends A { }", "cycle");
    expect_err("class A extends Nope { }", "unknown parent class");
    expect_err(
        "class A { def m() -> int { return 1; } }\n\
         class B extends A { def m() -> bool { return true; } }",
        "changes its type",
    );
    expect_err(
        "class A { def m(x: int); } def main() { var a = A.new(); }",
        "abstract",
    );
}

#[test]
fn overloading_rejected() {
    // §3.3: "Virgil chooses to disallow overloading altogether".
    expect_err(
        "class A { def m(x: int) { } def m(x: bool) { } }",
        "overloading",
    );
}

#[test]
fn control_flow_errors() {
    expect_err("def main() { break; }", "outside a loop");
    expect_err("def main() { continue; }", "outside a loop");
    expect_err("def f() -> int { var x = 1; }", "fall off the end");
    expect_err("def f() -> int { return; }", "must return a value");
}

#[test]
fn inference_failures() {
    expect_err("def f<T>() { } def main() { f(); }", "cannot infer");
    expect_err("def main() { var x = null; }", "cannot infer");
    expect_err("def main() { var e = []; }", "cannot infer");
    expect_err(
        "class B<T> { } def main() { var b = B.new(); }",
        "cannot infer",
    );
}

#[test]
fn ctor_errors() {
    expect_err("class A { new(x: int) { } new() { } }", "at most one constructor");
    expect_err(
        "class A(x: int) { new(y: int) { } }",
        "header parameters cannot also declare a constructor",
    );
    expect_err("class A { new(zz) { } }", "matching field to initialize");
    expect_err(
        "class A { def x: int; new(x) { } }\n\
         class B extends A { }",
        "must call the super constructor",
    );
}

#[test]
fn main_signature_errors() {
    expect_err("def main(x: int) { }", "main must take no parameters");
    expect_err("def main<T>() { }", "main must not have type parameters");
}

#[test]
fn polymorphic_recursion_rejected() {
    expect_err(
        "class L<T> { var h: T; new(h) { } }\n\
         def f<T>(x: T) { f(L.new(x)); }\n\
         def main() { f(1); }",
        "polymorphic recursion",
    );
}

#[test]
fn private_and_visibility() {
    expect_err(
        "class A { private def p() { } }\n\
         def main() { A.new().p(); }",
        "private",
    );
}

#[test]
fn diagnostics_carry_positions() {
    let err = Compiler::new()
        .compile("def main() {\n  var x: int = true;\n}")
        .expect_err("type error");
    // Rendered with file:line:col.
    assert!(err.to_string().contains("<input>:2:"), "{err}");
}
