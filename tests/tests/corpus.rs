//! Corpus tests: medium-sized applications written in Virgil, mirroring the
//! paper's §5 experience ("we also wrote a small number of applications...").
//! Each runs through interpreter and VM and must agree.

use vgl::Compiler;

fn both(src: &str) -> (String, String) {
    let c = Compiler::new().compile(src).unwrap_or_else(|e| panic!("compile:\n{e}"));
    let i = c.interpret();
    let v = c.execute();
    assert_eq!(i.result, v.result, "results differ");
    assert_eq!(i.output, v.output, "outputs differ");
    (v.result.expect("ok"), v.output)
}

/// An arithmetic-expression evaluator built with the §3.5 variant pattern:
/// expression nodes are `NodeOf<T>` specializations of a two-class scheme,
/// evaluation walks the tree through first-class functions.
#[test]
fn corpus_expression_evaluator() {
    let (r, out) = both(
        r#"
// The generic variant scheme (n1-n11 applied to AST nodes).
class Node {
    def eval() -> int;
}
class NodeOf<T> extends Node {
    def evalFunc: T -> int;
    def val: T;
    new(evalFunc, val) { }
    def eval() -> int { return evalFunc(val); }
}

def evalLit(v: int) -> int { return v; }
def evalAdd(ops: (Node, Node)) -> int { return ops.0.eval() + ops.1.eval(); }
def evalMul(ops: (Node, Node)) -> int { return ops.0.eval() * ops.1.eval(); }
def evalNeg(op: Node) -> int { return 0 - op.eval(); }

def lit(v: int) -> Node { return NodeOf.new(evalLit, v); }
def add(a: Node, b: Node) -> Node { return NodeOf.new(evalAdd, (a, b)); }
def mul(a: Node, b: Node) -> Node { return NodeOf.new(evalMul, (a, b)); }
def neg(a: Node) -> Node { return NodeOf.new(evalNeg, a); }

// Pattern-match node kinds via runtime type queries (n15-n20) to print.
def show(n: Node) {
    if (NodeOf<int>.?(n)) {
        System.puti(NodeOf<int>.!(n).val);
        return;
    }
    if (NodeOf<Node>.?(n)) {
        System.puts("-(");
        show(NodeOf<Node>.!(n).val);
        System.puts(")");
        return;
    }
    if (NodeOf<(Node, Node)>.?(n)) {
        var pair = NodeOf<(Node, Node)>.!(n).val;
        System.puts("(");
        show(pair.0);
        System.puts(" op ");
        show(pair.1);
        System.puts(")");
        return;
    }
}

def main() -> int {
    // (2 + 3) * (10 + -(4)) = 5 * 6 = 30
    var e = mul(add(lit(2), lit(3)), add(lit(10), neg(lit(4))));
    show(e);
    System.ln();
    return e.eval();
}
"#,
    );
    assert_eq!(r, "30");
    assert!(out.contains("op"));
}

/// A sorting + searching library over generic arrays with first-class
/// comparison functions — the "map, fold, zip" functional style of §3.6.
#[test]
fn corpus_sorting_library() {
    let (r, out) = both(
        r#"
def sort<T>(a: Array<T>, lt: (T, T) -> bool) {
    // Insertion sort.
    for (i = 1; i < a.length; i = i + 1) {
        var x = a[i];
        var j = i - 1;
        while (j >= 0 && lt(x, a[j])) {
            a[j + 1] = a[j];
            j = j - 1;
        }
        a[j + 1] = x;
    }
}

def binarySearch<T>(a: Array<T>, key: T, lt: (T, T) -> bool) -> int {
    var lo = 0, hi = a.length - 1;
    while (lo <= hi) {
        var mid = (lo + hi) / 2;
        if (lt(a[mid], key)) lo = mid + 1;
        else if (lt(key, a[mid])) hi = mid - 1;
        else return mid;
    }
    return 0 - 1;
}

def intLt(a: int, b: int) -> bool { return a < b; }
def intGt(a: int, b: int) -> bool { return a > b; }
// Sort pairs by first element, then second (tuple keys!).
def pairLt(a: (int, int), b: (int, int)) -> bool {
    return a.0 < b.0 || (a.0 == b.0 && a.1 < b.1);
}

def dumpi(a: Array<int>) {
    for (i = 0; i < a.length; i = i + 1) { System.puti(a[i]); System.putc(' '); }
    System.ln();
}

def main() -> int {
    var xs = [5, 3, 9, 1, 7, 3, 8];
    sort(xs, intLt);
    dumpi(xs);
    sort(xs, intGt);
    dumpi(xs);
    sort(xs, intLt);
    var found = binarySearch(xs, 7, intLt);

    // "the ability to quickly define a list of tuples and then sort them by,
    //  say, the first element, has been very convenient" (§5).
    var ps = Array<(int, int)>.new(4);
    ps[0] = (3, 1); ps[1] = (1, 9); ps[2] = (3, 0); ps[3] = (2, 2);
    sort(ps, pairLt);
    for (i = 0; i < ps.length; i = i + 1) {
        System.puts("("); System.puti(ps[i].0); System.putc(',');
        System.puti(ps[i].1); System.puts(") ");
    }
    System.ln();
    return found;
}
"#,
    );
    assert_eq!(r, "4"); // index of 7 in sorted [1 3 3 5 7 8 9]
    assert!(out.contains("1 3 3 5 7 8 9"));
    assert!(out.contains("(1,9) (2,2) (3,0) (3,1)"));
}

/// A string-processing utility: word counting and a tiny StringBuffer-like
/// builder class, exercising byte arrays, private methods, and growth.
#[test]
fn corpus_string_tools() {
    let (r, out) = both(
        r#"
class StringBuffer {
    var data: Array<byte>;
    var len: int;
    new() { data = Array<byte>.new(8); }
    private def grow(min: int) {
        var n = data.length;
        while (n < min) n = n * 2;
        var nd = Array<byte>.new(n);
        for (i = 0; i < len; i = i + 1) nd[i] = data[i];
        data = nd;
    }
    def putc(c: byte) -> StringBuffer {
        if (len + 1 > data.length) grow(len + 1);
        data[len] = c;
        len = len + 1;
        return this;
    }
    def puts(s: string) -> StringBuffer {
        for (i = 0; i < s.length; i = i + 1) putc(s[i]);
        return this;
    }
    def toString() -> string {
        var out = Array<byte>.new(len);
        for (i = 0; i < len; i = i + 1) out[i] = data[i];
        return out;
    }
}

def countWords(s: string) -> int {
    var words = 0;
    var inWord = false;
    for (i = 0; i < s.length; i = i + 1) {
        var isSpace = s[i] == ' ';
        if (!isSpace && !inWord) words = words + 1;
        inWord = !isSpace;
    }
    return words;
}

def main() -> int {
    var sb = StringBuffer.new();
    sb.puts("harmonizing").putc(' ').puts("classes functions tuples").putc(' ').puts("parameters");
    var text = sb.toString();
    System.puts(text);
    System.ln();
    return countWords(text);
}
"#,
    );
    assert_eq!(r, "5");
    assert!(out.contains("harmonizing classes functions tuples parameters"));
}

/// A graph reachability mini-app with adjacency lists built from the generic
/// List class — object graphs, loops, and worklists under GC.
#[test]
fn corpus_graph_reachability() {
    let (r, _) = both(
        r#"
class List<T> { def head: T; def tail: List<T>; new(head, tail) { } }
class Graph {
    var adj: Array<List<int>>;
    new(n: int) { adj = Array<List<int>>.new(n); }
    def edge(a: int, b: int) { adj[a] = List.new(b, adj[a]); }
    def reachable(start: int) -> int {
        var seen = Array<bool>.new(adj.length);
        var work: List<int> = List.new(start, null);
        var count = 0;
        while (work != null) {
            var node = work.head;
            work = work.tail;
            if (seen[node]) continue;
            seen[node] = true;
            count = count + 1;
            for (l = adj[node]; l != null; l = l.tail) {
                if (!seen[l.head]) work = List.new(l.head, work);
            }
        }
        return count;
    }
}
def main() -> int {
    var g = Graph.new(10);
    g.edge(0, 1); g.edge(1, 2); g.edge(2, 0);   // cycle
    g.edge(2, 3); g.edge(3, 4);
    g.edge(5, 6);                                 // disconnected
    g.edge(4, 4);                                 // self loop
    return g.reachable(0) * 10 + g.reachable(5);
}
"#,
    );
    assert_eq!(r, "52"); // 5 reachable from 0, 2 from 5
}

/// Deep recursion and many short-lived allocations under a small VM heap:
/// stresses the frame stack and the collector together.
#[test]
fn corpus_gc_and_recursion_stress() {
    let src = r#"
class Cell { def v: int; new(v) { } }
def deep(n: int) -> int {
    if (n == 0) return 0;
    var c = Cell.new(n);
    return c.v + deep(n - 1);
}
def churn(rounds: int) -> int {
    var keep = Cell.new(0);
    var acc = 0;
    for (i = 0; i < rounds; i = i + 1) {
        var tmp = Cell.new(i);
        if (i % 97 == 0) keep = tmp;
        acc = acc + tmp.v;
    }
    return acc + keep.v;
}
def main() -> int { return deep(500) + churn(20000); }
"#;
    // The tree-walking interpreter needs real stack for deep recursion
    // (the VM does not — its frames are explicit); give this test a big one.
    std::thread::Builder::new()
        .stack_size(64 << 20)
        .spawn(move || {
            let c = Compiler::new().compile(src).expect("compiles");
            let i = c.interpret();
            // Run the VM with a deliberately tiny heap to force collections.
            let mut vm = vgl::Vm::with_heap(&c.program, 2048);
            vm.set_fuel(1 << 30);
            let words = vm.run().expect("vm runs");
            assert_eq!(
                i.result.expect("interp ok"),
                vgl_vm::ret_as_int(&words).expect("int").to_string()
            );
            assert!(
                vm.stats.heap.collections > 5,
                "expected heavy GC, got {}",
                vm.stats.heap.collections
            );
            assert_eq!(vm.stats.heap.tuple_boxes, 0);
        })
        .expect("spawn")
        .join()
        .expect("no panic");
}
