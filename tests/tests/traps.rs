//! Trap equivalence across engines: a language-level runtime exception must
//! surface identically on the source interpreter, the compiled-module
//! interpreter, and the VM (optimizer on and off) — and fuel exhaustion must
//! never be conflated with a language exception, because engines count steps
//! differently.
//!
//! These are the hand-written counterparts to the randomized campaigns in
//! `differential_prop.rs`: one fixed program per trap class, checked through
//! the same five-engine oracle.

use vgl_fuzz::{check_source, describe, Outcome, OracleConfig, Verdict};

fn assert_agreed_trap(src: &str, expect_in_trap: &str) {
    let cfg = OracleConfig::default();
    let v = check_source(src, &cfg);
    assert!(
        matches!(v, Verdict::Pass { trapped: true }),
        "expected all engines to agree on a trap for:\n{src}\ngot: {}",
        describe(&v)
    );
    // The trap's display form is checked on one engine; the oracle already
    // proved all five agree on it.
    let mut i = {
        let mut d = vgl::Diagnostics::new();
        let ast = vgl_syntax::parse_program(src, &mut d);
        let m = vgl_sema::analyze(&ast, &mut d).expect("typechecks");
        vgl::Interp::new(&m).run().expect_err("traps").to_string()
    };
    i.make_ascii_lowercase();
    assert!(
        i.contains(&expect_in_trap.to_ascii_lowercase()),
        "trap {i:?} does not mention {expect_in_trap:?} for:\n{src}"
    );
}

#[test]
fn divide_by_zero_agrees() {
    assert_agreed_trap(
        "def main() -> int { var z = 0; return 7 / z; }",
        "DivideByZero",
    );
}

#[test]
fn null_dereference_agrees() {
    assert_agreed_trap(
        "class C { var x: int; new(x) { } }\n\
         def main() -> int { var c: C = null; return c.x; }",
        "NullCheck",
    );
}

#[test]
fn failed_cast_agrees() {
    assert_agreed_trap(
        "class A { def m() -> int { return 1; } }\n\
         class B extends A { def m() -> int { return 2; } }\n\
         def main() -> int { var a: A = A.new(); return B.!(a).m(); }",
        "TypeCheck",
    );
}

#[test]
fn bounds_check_agrees() {
    assert_agreed_trap(
        "def main() -> int { var xs = Array<int>.new(2); var i = 5; return xs[i]; }",
        "BoundsCheck",
    );
}

/// With a tiny budget every engine runs dry; the oracle must classify the
/// case as inconclusive, never as an agreed (or mismatched) trap.
#[test]
fn fuel_exhaustion_is_never_a_language_exception() {
    let cfg = OracleConfig { interp_fuel: 100, vm_fuel: 100, ..OracleConfig::default() };
    let v = check_source(
        "def main() -> int {\n\
             var i = 0;\n\
             while (i < 100000000) i = i + 1;\n\
             return i;\n\
         }",
        &cfg,
    );
    assert!(
        matches!(v, Verdict::Inconclusive { .. }),
        "fuel exhaustion misclassified as {}",
        describe(&v)
    );
    assert!(!v.is_failure(), "fuel exhaustion must not be reported as a bug");
}

/// The same looping program *with* enough fuel terminates normally — the
/// budget, not the program, caused the inconclusive verdict above.
#[test]
fn fuel_budget_only_gates_long_runs() {
    let v = check_source(
        "def main() -> int {\n\
             var i = 0;\n\
             while (i < 1000) i = i + 1;\n\
             return i;\n\
         }",
        &OracleConfig::default(),
    );
    assert!(matches!(v, Verdict::Pass { trapped: false }), "{}", describe(&v));
}

/// `OutOfFuel` is a distinct outcome variant, not a trap string: directly
/// compare the interpreter's classification.
#[test]
fn out_of_fuel_outcome_is_distinct_from_traps() {
    let src = "def main() -> int { var i = 0; while (i < 100000000) i = i + 1; return i; }";
    let mut d = vgl::Diagnostics::new();
    let ast = vgl_syntax::parse_program(src, &mut d);
    let m = vgl_sema::analyze(&ast, &mut d).expect("typechecks");
    let mut i = vgl::Interp::new(&m);
    i.set_fuel(50);
    let err = i.run().expect_err("runs dry");
    assert!(matches!(err, vgl::InterpError::OutOfFuel));
    // And the fuzz outcome model keeps it as its own variant.
    let o = Outcome::OutOfFuel;
    assert_ne!(o, Outcome::Trap("!Error: out of fuel".into()));
}
