//! Golden-output tests over `examples/v/*.v`: every example must compile,
//! produce exactly the recorded output and result on BOTH engines, and
//! produce a valid machine-readable stats report. Update the table below
//! when an example legitimately changes.

use std::path::PathBuf;

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../examples/v")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

/// `(file, expected result, expected output)`.
const GOLDEN: &[(&str, &str, &str)] = &[
    ("hello.v", "42", "hello, virgil\n"),
    ("generics.v", "42", "17 true\n"),
    ("tuples.v", "292", "7,0 6,3 6,5 9,4 \n"),
    ("classes.v", "1128", "0 103 1025 \n"),
    ("closures.v", "59", "24 11 24\n"),
    ("delegates.v", "177", "177 10\n"),
    ("wide_tuples.v", "180", "9 9 72\n108\n"),
    ("gc.v", "39564", "39564\n"),
    ("dispatch_chain.v", "7328", "7328\n"),
];

#[test]
fn examples_match_golden_output_on_both_engines() {
    for &(name, result, output) in GOLDEN {
        let c = vgl::Compiler::new()
            .compile(&example(name))
            .unwrap_or_else(|e| panic!("{name} failed to compile:\n{e}"));
        let i = c.interpret();
        let v = c.execute();
        assert_eq!(i.result.as_deref(), Ok(result), "{name}: interp result");
        assert_eq!(v.result.as_deref(), Ok(result), "{name}: vm result");
        assert_eq!(i.output, output, "{name}: interp output");
        assert_eq!(v.output, output, "{name}: vm output");
    }
}

#[test]
fn examples_trace_every_phase() {
    for &(name, _, _) in GOLDEN {
        let c = vgl::Compiler::new().compile(&example(name)).expect("compiles");
        let names: Vec<&str> = c.trace.phases.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            ["lex", "parse", "sema", "mono", "normalize", "optimize", "lower"],
            "{name}: phase list"
        );
        assert!(
            c.trace.phases.iter().all(|p| p.items_in > 0),
            "{name}: every phase consumed something"
        );
    }
}

#[test]
fn examples_produce_valid_stats_reports() {
    for &(name, result, _) in GOLDEN {
        let c = vgl::Compiler::new().compile(&example(name)).expect("compiles");
        let i = c.interpret();
        let (v, profile, hotness) = c.execute_profiled_full();
        let report =
            vgl::report::stats_json(&c, Some(&i), Some(&v), Some(&profile), Some(&hotness));
        let text = report.render();
        let back = vgl_obs::json::parse(&text)
            .unwrap_or_else(|e| panic!("{name}: report is not valid JSON: {e:?}"));
        for key in ["phases", "pipeline", "bytecode_instrs", "interp", "vm", "runtime"] {
            assert!(back.get(key).is_some(), "{name}: report missing {key:?}");
        }
        let vm_result = back
            .get("vm")
            .and_then(|v| v.get("result"))
            .and_then(vgl_obs::json::Json::as_str);
        assert_eq!(vm_result, Some(result), "{name}: report vm result");
    }
}

/// The bytecode back-end optimizer (fusion + inline caches) must be
/// observationally invisible: every example produces the identical result and
/// output with fusion forced on, and fused execution allocates exactly zero
/// tuple boxes (the §4.2 invariant, dynamically).
#[test]
fn examples_match_golden_output_with_fusion() {
    for &(name, result, output) in GOLDEN {
        let c = vgl::Compiler::new()
            .with_fuse()
            .compile(&example(name))
            .unwrap_or_else(|e| panic!("{name} failed to compile fused:\n{e}"));
        assert!(
            c.fuse.instrs_before >= c.fuse.instrs_after,
            "{name}: fusion must not grow code ({} -> {})",
            c.fuse.instrs_before,
            c.fuse.instrs_after
        );
        let v = c.execute();
        assert_eq!(v.result.as_deref(), Ok(result), "{name}: fused vm result");
        assert_eq!(v.output, output, "{name}: fused vm output");
        let stats = v.vm_stats.expect("vm stats");
        assert_eq!(stats.heap.tuple_boxes, 0, "{name}: fused run boxed a tuple");
    }
}

/// Golden disassembly: the side-by-side unfused/fused listing for
/// `dispatch_chain.v` is pinned to a checked-in file so any change to
/// lowering, fusion rules, or the disassembler shows up in review. Regenerate
/// with `VGL_UPDATE_GOLDEN=1 cargo test -p vgl-integration golden`.
#[test]
fn dispatch_chain_disasm_matches_golden() {
    let c = vgl::Compiler::new()
        .without_fuse()
        .compile(&example("dispatch_chain.v"))
        .expect("compiles");
    let mut fused = c.program.clone();
    vgl_vm::fuse(&mut fused);
    let got = vgl_vm::side_by_side(&c.program, &fused);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/dispatch_chain.disasm");
    if std::env::var_os("VGL_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write golden disasm");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("read {path:?}: {e}; regenerate with VGL_UPDATE_GOLDEN=1")
    });
    assert_eq!(
        got, want,
        "disassembly drifted from {path:?}; regenerate with VGL_UPDATE_GOLDEN=1 if intended"
    );
}

#[test]
fn gc_example_profiles_collections() {
    let c = vgl::Compiler::new().compile(&example("gc.v")).expect("compiles");
    let (out, profile) = c.execute_profiled();
    assert!(out.result.is_ok());
    assert!(
        !profile.gc_events.is_empty(),
        "gc.v should trigger at least one collection"
    );
    for e in &profile.gc_events {
        assert!(e.live_slots <= e.capacity_slots, "live fits in the semispace");
        assert!(e.at_instr > 0, "collections happen during execution");
    }
    assert!(profile.retired() > 0);
}

// ---- Malformed corpus: diagnostics are golden too --------------------------

fn bad_example_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../examples/v-bad")
}

/// Every file in `examples/v-bad`. Each must produce at least one error —
/// and exactly the recorded rendered diagnostics. Regenerate the snapshots
/// with `VGL_UPDATE_GOLDEN=1 cargo test -p tests`.
const BAD: &[&str] = &[
    "bad_class.v",
    "bad_escape.v",
    "deep_nesting.v",
    "missing_semi.v",
    "multi_error.v",
    "overflow_literal.v",
    "stray_shr.v",
    "type_errors.v",
    "unterminated_string.v",
];

#[test]
fn bad_examples_match_expected_diagnostics() {
    for &name in BAD {
        let dir = bad_example_dir();
        let src_path = dir.join(name);
        let src = std::fs::read_to_string(&src_path)
            .unwrap_or_else(|e| panic!("read {src_path:?}: {e}"));
        // Check with the bare file name so snapshots are machine-independent.
        let report = vgl::Compiler::new().check(name, &src);
        assert!(!report.ok(), "{name}: expected errors, found none");
        let got = report.rendered.concat();
        let expected_path = dir.join(format!("{name}.expected"));
        if std::env::var("VGL_UPDATE_GOLDEN").is_ok() {
            std::fs::write(&expected_path, &got)
                .unwrap_or_else(|e| panic!("write {expected_path:?}: {e}"));
            continue;
        }
        let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!("read {expected_path:?}: {e} (VGL_UPDATE_GOLDEN=1 to create)")
        });
        assert_eq!(
            got, want,
            "{name}: diagnostics drifted; rerun with VGL_UPDATE_GOLDEN=1 if intended"
        );
    }
}

#[test]
fn bad_examples_directory_is_fully_listed() {
    let mut on_disk: Vec<String> = std::fs::read_dir(bad_example_dir())
        .expect("examples/v-bad exists")
        .filter_map(|e| {
            let name = e.expect("dir entry").file_name().into_string().expect("utf-8");
            name.ends_with(".v").then_some(name)
        })
        .collect();
    on_disk.sort();
    assert_eq!(on_disk, BAD, "keep the BAD table in sync with examples/v-bad");
}

#[test]
fn good_examples_check_clean() {
    for &(name, _, _) in GOLDEN {
        let report = vgl::Compiler::new().check(name, &example(name));
        assert!(
            report.ok() && report.diagnostics.is_empty(),
            "{name}: expected a clean check, got {:?}",
            report.rendered
        );
    }
}

/// The acceptance bar for error recovery: a file with five independent
/// mistakes reports all five in one run.
#[test]
fn multi_error_reports_all_five() {
    let src = std::fs::read_to_string(bad_example_dir().join("multi_error.v"))
        .expect("multi_error.v");
    let report = vgl::Compiler::new().check("multi_error.v", &src);
    assert_eq!(
        report.error_count(),
        5,
        "recovery lost errors: {:?}",
        report.rendered
    );
}
